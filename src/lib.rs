//! TailBench-RS: a benchmark suite and evaluation methodology for latency-critical
//! applications, reproduced in Rust.
//!
//! This facade crate re-exports the whole suite so downstream users can depend on a
//! single crate:
//!
//! * [`experiment`] — the unified experiment layer: a declarative, JSON-round-tripping
//!   `ExperimentSpec`, the app registry, and the single `Experiment::run()` entrypoint
//!   (single server or cluster, all four harness modes, steady or scenario load, with
//!   sweeps, capacity probing and hedging) — also exposed as the `tailbench` CLI.
//! * [`core`] — the load-testing harness (traffic shaper, request queue, statistics
//!   collector, the integrated / loopback / networked configurations and the
//!   discrete-event simulation runner).
//! * [`apps`] — the eight latency-critical applications: xapian (search), masstree
//!   (key-value store), moses (machine translation), sphinx (speech recognition),
//!   img-dnn (image recognition), specjbb (business middleware), silo and shore (OLTP).
//! * [`simarch`] — the analytic microarchitecture cost model used by simulated runs.
//! * [`scenario`] — the scenario engine: phased load traces (bursts, ramps, diurnal
//!   waves), multi-class clients, deterministic interference injection and hedged
//!   requests.
//! * [`queueing`] — the M/G/1 and M/G/k models used by the paper's case study.
//! * [`histogram`] / [`workloads`] — the statistical and workload-generation substrates.
//!
//! # Quick start
//!
//! One declarative spec, one entrypoint — masstree under YCSB at 1k QPS:
//!
//! ```
//! use tailbench::experiment::{Experiment, ExperimentSpec, LoadSpec};
//!
//! let spec = ExperimentSpec::new("quickstart", "masstree")
//!     .with_load(LoadSpec::Qps(1_000.0))
//!     .with_requests(200)
//!     .with_warmup(20);
//! let output = Experiment::new(spec).run()?;
//! println!("{}", output.to_markdown());
//! assert!(output.points[0].report.headline().sojourn.p95_ns > 0);
//! # Ok::<(), tailbench::core::HarnessError>(())
//! ```
//!
//! The same spec serializes to JSON (`spec.to_json_string()`) and runs from disk with
//! the `tailbench` CLI: `cargo run --release --bin tailbench -- run spec.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The load-testing harness (re-export of [`tailbench_core`]).
pub use tailbench_core as core;
/// The unified experiment layer: declarative `ExperimentSpec`, app registry and the
/// single `Experiment::run()` entrypoint behind the `tailbench` CLI (re-export of
/// [`tailbench_experiment`]).
pub use tailbench_experiment as experiment;
/// HDR histograms and confidence intervals (re-export of [`tailbench_histogram`]).
pub use tailbench_histogram as histogram;
/// The in-tree static-analysis pass behind `tailbench lint` (re-export of
/// [`tailbench_lint`]).
pub use tailbench_lint as lint;
/// The M/G/1 and M/G/k queueing models (re-export of [`tailbench_queueing`]).
pub use tailbench_queueing as queueing;
/// The scenario engine: phased load traces, multi-class clients, interference
/// injection and hedged requests (re-export of [`tailbench_scenario`]).
pub use tailbench_scenario as scenario;
/// The analytic microarchitecture model (re-export of [`tailbench_simarch`]).
pub use tailbench_simarch as simarch;
/// Synthetic workload generators (re-export of [`tailbench_workloads`]).
pub use tailbench_workloads as workloads;

/// The eight TailBench applications.
pub mod apps {
    /// img-dnn: dense-network handwriting recognition.
    pub use tailbench_imgdnn as imgdnn;
    /// specjbb: three-tier business middleware.
    pub use tailbench_jbb as jbb;
    /// masstree: in-memory ordered key-value store.
    pub use tailbench_kvstore as kvstore;
    /// silo and shore: OLTP engines running TPC-C.
    pub use tailbench_oltp as oltp;
    /// xapian: full-text web-search leaf node.
    pub use tailbench_search as search;
    /// sphinx: GMM-HMM speech recognition.
    pub use tailbench_speech as speech;
    /// moses: phrase-based statistical machine translation.
    pub use tailbench_translate as translate;
}
