//! The `tailbench` CLI: one entrypoint for the whole suite.
//!
//! ```text
//! tailbench run <spec.json> [--json <out|->] [--quiet]    run a spec file
//! tailbench preset <name>   [--json <out|->] [--quiet]    run a named preset
//! tailbench export <name>                                 print a preset's spec JSON
//! tailbench presets                                       list preset names
//! tailbench validate <spec.json>                          check a spec without running
//! tailbench verify-output <out.json>                      check emitted JSON output
//! tailbench bench [--suite des|wall|all] [--baseline <f>] [--write <f|auto>]
//!                 [--check] [--strict]                    perf-trajectory suite
//! tailbench lint  [--root <dir>] [--check] [--json <out|->]
//!                 [--pragmas] [--explain <rule|all>]        static analysis
//! ```
//!
//! Global flags: `--scale smoke|quick|full` overrides `TAILBENCH_SCALE`.  Markdown
//! tables go to stdout (suppress with `--quiet`); `--json` writes the machine-readable
//! [`ExperimentOutput`](tailbench_experiment::ExperimentOutput) to a file (or stdout
//! with `-`).  Exit codes: 0 success, 1 runtime failure, 2 usage/spec errors.

use std::path::Path;
use std::process::ExitCode;
use tailbench_experiment::{
    bench, presets, verify_output_text, BenchRecord, Experiment, ExperimentSpec, Scale, SuiteFilter,
};

const USAGE: &str = "\
tailbench — unified TailBench-RS experiment runner

USAGE:
    tailbench run <spec.json>  [--scale smoke|quick|full] [--json <path|->] [--quiet]
    tailbench preset <name>    [--scale smoke|quick|full] [--json <path|->] [--quiet]
    tailbench export <name>    [--scale smoke|quick|full]
    tailbench presets
    tailbench validate <spec.json>
    tailbench verify-output <out.json>
    tailbench bench [--suite des|wall|all] [--baseline <file>] [--write <path|auto>]
                    [--check] [--strict]
    tailbench lint  [--root <dir>] [--check] [--json <path|->] [--pragmas]
                    [--explain <rule|all>]

A spec file is the JSON form of an ExperimentSpec (see `tailbench export fig9`
for a template).  Presets reproduce the paper figures: fig3, fig6, fig9, fig11,
fig12.

`bench` runs the pinned perf-trajectory suite (default `--suite des`, the
DES-deterministic subset).  `--write <path>` (or `auto` for the next free
BENCH_<n>.json) records the run; `--check` gates it against `--baseline <file>`
(default: the highest-numbered committed BENCH_<n>.json) and exits 1 on a hard
regression.  `--strict` promotes advisory wall-clock warnings to failures.

`lint` runs the in-tree static analysis (wall-clock use in DES modules, panics
on hot paths, unseeded RNG, unordered iteration in report paths, lock-order
cycles, guards held across blocking operations, lossy casts and unchecked
arithmetic in stats paths) over `--root` (default `.`).  Findings print as
`path:line:col: rule: message`; `--check` makes any finding exit 1, for CI
gating.  `--pragmas` prints the allow-pragma audit trail instead of findings
(the committed pragma budget diffs this).  `--explain <rule>` prints one rule's
full rationale; `--explain all` walks every rule.
";

struct Options {
    scale: Option<Scale>,
    json_out: Option<String>,
    quiet: bool,
    help: bool,
    suite: SuiteFilter,
    baseline: Option<String>,
    write: Option<String>,
    check: bool,
    strict: bool,
    root: Option<String>,
    pragmas: bool,
    explain: Option<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: None,
        json_out: None,
        quiet: false,
        help: false,
        suite: SuiteFilter::Des,
        baseline: None,
        write: None,
        check: false,
        strict: false,
        root: None,
        pragmas: false,
        explain: None,
        positional: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value")?;
                options.scale = Some(
                    Scale::parse(value)
                        .ok_or_else(|| format!("unknown scale '{value}' (smoke, quick, full)"))?,
                );
            }
            "--json" => {
                options.json_out = Some(iter.next().ok_or("--json needs a path")?.clone());
            }
            "--quiet" => options.quiet = true,
            "--help" | "-h" => options.help = true,
            "--suite" => {
                let value = iter.next().ok_or("--suite needs a value")?;
                options.suite = SuiteFilter::parse(value)
                    .ok_or_else(|| format!("unknown suite '{value}' (des, wall, all)"))?;
            }
            "--baseline" => {
                options.baseline = Some(iter.next().ok_or("--baseline needs a path")?.clone());
            }
            "--write" => {
                options.write = Some(iter.next().ok_or("--write needs a path or 'auto'")?.clone());
            }
            "--check" => options.check = true,
            "--strict" => options.strict = true,
            "--root" => {
                options.root = Some(iter.next().ok_or("--root needs a directory")?.clone());
            }
            "--pragmas" => options.pragmas = true,
            "--explain" => {
                options.explain = Some(
                    iter.next()
                        .ok_or("--explain needs a rule name or 'all'")?
                        .clone(),
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            positional => options.positional.push(positional.to_string()),
        }
    }
    Ok(options)
}

/// A CLI failure: the message plus which documented exit code it maps to
/// (1 = runtime failure, 2 = usage/spec error).
struct CliError {
    message: String,
    exit_code: u8,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            exit_code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            exit_code: 1,
        }
    }
}

fn run_spec(spec: ExperimentSpec, options: &Options) -> Result<(), CliError> {
    let spec = match options.scale {
        Some(scale) => spec.with_scale(scale),
        None => spec,
    };
    let output = Experiment::new(spec)
        .run()
        .map_err(|e| CliError::runtime(format!("experiment failed: {e}")))?;
    // `--json -` owns stdout: printing the Markdown table too would make the
    // machine-readable stream unparseable.
    let json_to_stdout = options.json_out.as_deref() == Some("-");
    if !options.quiet && !json_to_stdout {
        print!("{}", output.to_markdown());
    }
    if let Some(path) = &options.json_out {
        let text = output.to_json_string();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, &text).map_err(|e| {
                CliError::runtime(format!("cannot write JSON output to {path}: {e}"))
            })?;
            if !options.quiet {
                eprintln!("wrote JSON output to {path}");
            }
        }
    }
    Ok(())
}

fn load_spec(path: &str) -> Result<ExperimentSpec, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::usage(format!("cannot read spec file {path}: {e}")))?;
    ExperimentSpec::from_json_str(&text).map_err(|e| CliError::usage(e.to_string()))
}

fn resolve_preset(name: &str, scale: Scale) -> Result<ExperimentSpec, CliError> {
    presets::preset(name, scale).ok_or_else(|| {
        CliError::usage(format!(
            "unknown preset '{name}' (available: {})",
            presets::PRESET_NAMES.join(", ")
        ))
    })
}

/// `tailbench bench`: run the pinned suite, optionally record and/or gate it.
fn cmd_bench(options: &Options) -> Result<(), CliError> {
    if !options.quiet {
        eprintln!("running bench suite '{}'...", options.suite.name());
    }
    let results = bench::run_suite(options.suite)
        .map_err(|e| CliError::runtime(format!("bench suite failed: {e}")))?;
    let record = BenchRecord::capture(results);
    record
        .validate()
        .map_err(|e| CliError::runtime(format!("bench record failed validation: {e}")))?;

    if let Some(target) = &options.write {
        let path = if target == "auto" {
            bench::next_bench_path(Path::new("."))
        } else {
            Path::new(target).to_path_buf()
        };
        std::fs::write(&path, record.to_json_string())
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        if !options.quiet {
            eprintln!("wrote bench record to {}", path.display());
        }
    }

    if options.check {
        let baseline_path = match &options.baseline {
            Some(path) => Some(Path::new(path).to_path_buf()),
            None => bench::latest_baseline(Path::new(".")),
        };
        let baseline = match &baseline_path {
            Some(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| {
                    CliError::runtime(format!("cannot read baseline {}: {e}", path.display()))
                })?;
                let baseline = BenchRecord::from_json_str(&text).map_err(|e| {
                    CliError::runtime(format!("invalid baseline {}: {e}", path.display()))
                })?;
                baseline.validate().map_err(|e| {
                    CliError::runtime(format!("baseline {} is invalid: {e}", path.display()))
                })?;
                Some(baseline)
            }
            None => {
                eprintln!(
                    "warning: no BENCH_<n>.json baseline found; \
                     checking absolute thresholds only"
                );
                None
            }
        };
        let report = bench::evaluate(&record, baseline.as_ref());
        print!("{}", report.render_text());
        let failed = !report.passed() || (options.strict && report.warnings() > 0);
        if failed {
            return Err(CliError::runtime(format!(
                "bench gate failed: {} hard failure(s), {} warning(s){}",
                report.hard_failures(),
                report.warnings(),
                if options.strict { " (strict)" } else { "" }
            )));
        }
    } else if !options.check && options.write.is_none() {
        // Neither recording nor gating: print the record so the run is not silent.
        print!("{}", record.to_json_string());
    }
    Ok(())
}

/// One rule's `--explain` entry: the header line plus the full rationale.
fn explain_rule(rule: tailbench::lint::Rule) -> String {
    format!(
        "{} — {}\nscope: {}\n\n{}\n",
        rule.name(),
        rule.summary(),
        rule.scope_desc(),
        rule.explain()
    )
}

/// `tailbench lint`: run the static-analysis pass, print findings, optionally gate.
fn cmd_lint(options: &Options) -> Result<(), CliError> {
    if let Some(which) = &options.explain {
        if which == "all" {
            let texts: Vec<String> = tailbench::lint::ALL_RULES
                .into_iter()
                .map(explain_rule)
                .collect();
            print!("{}", texts.join("\n"));
            return Ok(());
        }
        let rule = tailbench::lint::Rule::from_name(which).ok_or_else(|| {
            CliError::usage(format!(
                "unknown rule '{which}' (try `tailbench lint --explain all`)"
            ))
        })?;
        print!("{}", explain_rule(rule));
        return Ok(());
    }
    let root = options.root.as_deref().unwrap_or(".");
    let report = tailbench::lint::lint_workspace(Path::new(root))
        .map_err(|e| CliError::runtime(format!("cannot lint {root}: {e}")))?;
    if options.pragmas {
        print!("{}", report.render_pragmas());
        return Ok(());
    }
    let json_to_stdout = options.json_out.as_deref() == Some("-");
    if !options.quiet && !json_to_stdout {
        print!("{}", report.render_text());
    }
    if let Some(path) = &options.json_out {
        let text = report.to_json_string();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, &text).map_err(|e| {
                CliError::runtime(format!("cannot write JSON report to {path}: {e}"))
            })?;
        }
    }
    if options.check && !report.is_clean() {
        return Err(CliError::runtime(format!(
            "lint failed: {} finding(s)",
            report.findings.len()
        )));
    }
    Ok(())
}

fn dispatch(command: &str, options: &Options) -> Result<(), CliError> {
    let arg = options.positional.get(1);
    match command {
        "run" => {
            let path = arg.ok_or_else(|| CliError::usage("run needs a spec file path"))?;
            let spec = load_spec(path)?;
            spec.validate()
                .map_err(|e| CliError::usage(e.to_string()))?;
            run_spec(spec, options)
        }
        "preset" => {
            let name = arg
                .ok_or_else(|| CliError::usage("preset needs a name (see `tailbench presets`)"))?;
            let scale = options.scale.unwrap_or_else(Scale::from_env);
            run_spec(resolve_preset(name, scale)?, options)
        }
        "export" => {
            let name = arg.ok_or_else(|| CliError::usage("export needs a preset name"))?;
            let scale = options.scale.unwrap_or_else(Scale::from_env);
            print!("{}", resolve_preset(name, scale)?.to_json_string());
            Ok(())
        }
        "presets" => {
            for name in presets::PRESET_NAMES {
                println!("{name}");
            }
            Ok(())
        }
        "validate" => {
            let path = arg.ok_or_else(|| CliError::usage("validate needs a spec file path"))?;
            let spec = load_spec(path)?;
            spec.validate()
                .map_err(|e| CliError::usage(e.to_string()))?;
            println!(
                "{path}: ok — '{}' on app '{}', {} point(s)",
                spec.name,
                spec.app,
                spec.grid_size()
            );
            Ok(())
        }
        "verify-output" => {
            let path =
                arg.ok_or_else(|| CliError::usage("verify-output needs an output JSON path"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
            let points = verify_output_text(&text).map_err(CliError::runtime)?;
            println!("{path}: ok — {points} point(s), p99 present");
            Ok(())
        }
        "bench" => cmd_bench(options),
        "lint" => cmd_lint(options),
        unknown => Err(CliError::usage(format!("unknown command '{unknown}'"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if options.help {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(command) = options.positional.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match dispatch(&command, &options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {}", error.message);
            ExitCode::from(error.exit_code)
        }
    }
}
