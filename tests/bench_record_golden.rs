//! Golden byte-pin of the `BENCH_<n>.json` record format.
//!
//! The DES subset of the bench suite is bit-exact for a fixed seed, and the in-tree
//! JSON codec is canonical (fixed key order, shortest-roundtrip floats), so a suite
//! run with pinned provenance serializes to *exactly* the committed fixture — every
//! byte.  This pins the record schema, the codec's rendering, the preset parameters
//! and the simulator's arithmetic in one assert: any accidental change to any of them
//! fails loudly here instead of silently shifting the perf trajectory.
//!
//! To refresh after an *intentional* change (new preset, schema bump, DES event-order
//! change), bless the fixture and re-commit it together with a DESIGN.md note:
//!
//! ```text
//! TAILBENCH_BLESS=1 cargo test --test bench_record_golden
//! ```

use tailbench::experiment::{bench, BenchRecord, EnvMeta, SuiteFilter};

const FIXTURE_PATH: &str = "tests/fixtures/bench_golden.json";
const FIXTURE: &str = include_str!("fixtures/bench_golden.json");

/// The DES suite with fully pinned provenance: fixed host metadata, commit tag and
/// timestamp, so the only inputs are the preset specs and the simulator.
fn golden_record() -> BenchRecord {
    let results = bench::run_suite(SuiteFilter::Des).expect("DES suite runs");
    BenchRecord::new(
        results,
        EnvMeta {
            host: "golden".to_string(),
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cores: 4,
        },
        "golden".to_string(),
        1_754_265_600, // 2025-08-04T00:00:00Z
    )
}

#[test]
fn des_suite_record_bytes_are_exact() {
    let text = golden_record().to_json_string();
    if std::env::var("TAILBENCH_BLESS").is_ok() {
        std::fs::write(FIXTURE_PATH, &text).expect("write blessed fixture");
        eprintln!("blessed {FIXTURE_PATH}");
        return;
    }
    assert_eq!(
        text, FIXTURE,
        "BENCH record bytes diverged from {FIXTURE_PATH}; if the change is \
         intentional, re-bless with TAILBENCH_BLESS=1 and note it in DESIGN.md"
    );
}

#[test]
fn golden_fixture_parses_validates_and_round_trips() {
    let record = BenchRecord::from_json_str(FIXTURE).expect("fixture parses");
    record.validate().expect("fixture is a valid record");
    assert_eq!(
        record.to_json_string(),
        FIXTURE,
        "fixture must already be in canonical serialization"
    );
    // And it matches what the committed BENCH_1.json pins for the same presets:
    // both were produced by the same simulator, so the DES numbers agree.
    assert_eq!(record.presets.len(), 3);
    assert!(record.presets.iter().all(|p| p.deterministic));
}
