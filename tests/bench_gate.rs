//! End-to-end `tailbench bench` gate test.
//!
//! Drives the real binary through the full trajectory workflow in a scratch
//! directory: record a baseline with `--write`, pass `--check` against it, then
//! doctor the baseline into a synthetically *better* past (lower p99, higher QPS) and
//! assert the zero-tolerance DES gate detects the "regression" with a nonzero exit
//! code and a per-preset FAIL report — the exact failure mode the CI job exists to
//! catch.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use tailbench::experiment::BenchRecord;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tailbench-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn bench(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tailbench"))
        .arg("bench")
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn tailbench")
}

#[test]
fn stale_baseline_regression_is_detected_with_nonzero_exit() {
    let dir = scratch_dir("regress");

    // 1. Record the baseline.
    let write = bench(
        &dir,
        &["--suite", "des", "--write", "BENCH_1.json", "--quiet"],
    );
    assert!(write.status.success(), "{write:?}");
    let baseline_path = dir.join("BENCH_1.json");
    let baseline =
        BenchRecord::from_json_str(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
    baseline.validate().unwrap();

    // 2. A fresh run checks clean against its own baseline (DES is bit-exact).
    let check = bench(&dir, &["--suite", "des", "--check"]);
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(check.status.success(), "{stdout}");
    assert!(stdout.contains("RESULT: PASS"), "{stdout}");
    assert!(stdout.contains("p99_vs_baseline"), "{stdout}");

    // 3. Doctor the baseline into a better past: halve one preset's p99 and double
    //    its throughput.  Zero DES tolerance means the (unchanged) current run now
    //    reads as a regression against it.
    let mut stale = baseline.clone();
    {
        let preset = stale
            .presets
            .iter_mut()
            .find(|p| p.name == "des-xapian-single")
            .expect("suite preset present");
        preset.p50_ns /= 2;
        preset.p95_ns /= 2;
        preset.p99_ns /= 2;
        preset.achieved_qps *= 2.0;
    }
    // Higher index: `--check` must auto-discover BENCH_2.json over BENCH_1.json.
    std::fs::write(dir.join("BENCH_2.json"), stale.to_json_string()).unwrap();

    let check = bench(&dir, &["--suite", "des", "--check"]);
    let stdout = String::from_utf8_lossy(&check.stdout);
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(!check.status.success(), "gate must fail:\n{stdout}");
    assert_eq!(check.status.code(), Some(1), "runtime-failure exit code");
    assert!(
        stdout.contains("FAIL des-xapian-single") && stdout.contains("p99_vs_baseline"),
        "report must name the regressed preset and metric:\n{stdout}"
    );
    assert!(
        stdout.contains("FAIL des-xapian-single") && stdout.contains("qps_vs_baseline"),
        "throughput drop must be reported too:\n{stdout}"
    );
    assert!(stdout.contains("RESULT: FAIL"), "{stdout}");
    assert!(stderr.contains("bench gate failed"), "{stderr}");

    // 4. Pointing --baseline at the honest record explicitly passes again.
    let check = bench(
        &dir,
        &["--suite", "des", "--check", "--baseline", "BENCH_1.json"],
    );
    assert!(
        check.status.success(),
        "{}",
        String::from_utf8_lossy(&check.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_without_any_baseline_warns_and_uses_absolute_thresholds() {
    let dir = scratch_dir("nobase");
    let check = bench(&dir, &["--suite", "des", "--check"]);
    let stdout = String::from_utf8_lossy(&check.stdout);
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(check.status.success(), "{stdout}\n{stderr}");
    assert!(stderr.contains("no BENCH_"), "{stderr}");
    assert!(stdout.contains("absolute thresholds only"), "{stdout}");
    assert!(stdout.contains("RESULT: PASS"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_baseline_is_a_loud_runtime_error() {
    let dir = scratch_dir("corrupt");
    std::fs::write(dir.join("BENCH_1.json"), "{\"schema_version\": 999}").unwrap();
    let check = bench(&dir, &["--suite", "des", "--check"]);
    assert_eq!(check.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(
        stderr.contains("invalid baseline") && stderr.contains("schema version"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
