//! Integration tests of the evaluation methodology: simulated runs agree qualitatively
//! with real-time runs, the repeated-run controller converges, and the queueing model is
//! consistent with the discrete-event harness.

use std::sync::Arc;
use tailbench::core::config::{BenchmarkConfig, HarnessMode};
use tailbench::core::{runner, RepeatPolicy, RequestFactory, ServerApp};
use tailbench::simarch::{MachineConfig, SystemModel};

fn masstree() -> (Arc<dyn ServerApp>, impl Fn(u64) -> Box<dyn RequestFactory>) {
    use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench::workloads::ycsb::YcsbConfig;
    let workload = YcsbConfig::small();
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&workload));
    (app, move |seed| {
        Box::new(YcsbRequestFactory::new(&workload, seed)) as Box<dyn RequestFactory>
    })
}

#[test]
fn simulated_latency_grows_with_load_like_the_real_system() {
    let (app, make_factory) = masstree();
    let model = SystemModel::new(MachineConfig::table_ii());

    let run = |mode: HarnessMode, qps: f64| {
        let mut factory = make_factory(1);
        runner::execute(
            &app,
            factory.as_mut(),
            &BenchmarkConfig::new(qps, 1_500)
                .with_warmup(150)
                .with_mode(mode)
                .with_seed(11),
            Some(&model),
        )
        .expect("run")
    };

    // Find the simulated capacity from a low-load run's mean service time, then compare
    // a ~2% load point against a ~85% load point.
    let sim_probe = run(HarnessMode::Simulated, 10_000.0);
    let sim_capacity_qps = 1e9 / sim_probe.service.mean_ns.max(1.0);
    let sim_low = run(HarnessMode::Simulated, sim_capacity_qps * 0.02);
    let sim_high = run(HarnessMode::Simulated, sim_capacity_qps * 0.85);
    assert!(
        sim_high.sojourn.p95_ns > sim_low.sojourn.p95_ns,
        "simulated p95 must grow with load ({} -> {} at capacity {sim_capacity_qps:.0})",
        sim_low.sojourn.p95_ns,
        sim_high.sojourn.p95_ns
    );

    let real_low = run(HarnessMode::Integrated, 2_000.0);
    let real_high = run(HarnessMode::Integrated, 100_000.0);
    assert!(real_high.sojourn.p95_ns >= real_low.sojourn.p95_ns);
}

#[test]
fn idealized_memory_never_slows_a_simulated_run() {
    let (app, make_factory) = masstree();
    let realistic = SystemModel::new(MachineConfig::table_ii());
    let idealized = SystemModel::idealized_memory(MachineConfig::table_ii());
    let config = BenchmarkConfig::new(20_000.0, 1_000)
        .with_warmup(100)
        .with_mode(HarnessMode::Simulated)
        .with_seed(13);

    let mut factory = make_factory(2);
    let real = runner::execute(&app, factory.as_mut(), &config, Some(&realistic)).unwrap();
    let mut factory = make_factory(2);
    let ideal = runner::execute(&app, factory.as_mut(), &config, Some(&idealized)).unwrap();
    assert!(ideal.service.mean_ns <= real.service.mean_ns);
}

#[test]
fn repeated_runs_converge_and_report_confidence_intervals() {
    let (app, make_factory) = masstree();
    let multi = runner::run_repeated(
        &app,
        |seed| make_factory(seed),
        &BenchmarkConfig::new(2_000.0, 400).with_warmup(40),
        RepeatPolicy {
            min_runs: 3,
            max_runs: 6,
            target_fraction: 0.25,
        },
        None,
    )
    .expect("repeated runs");
    assert!(multi.runs.len() >= 3);
    assert!(multi.p95_ci.mean > 0.0);
    assert!(multi.representative_run().is_some());
}

#[test]
fn queueing_model_matches_the_simulated_harness_for_constant_service() {
    // For near-deterministic service times the DES harness and the M/G/1 model must
    // agree on the mean sojourn time at moderate load.
    use tailbench::core::app::{EchoApp, InstructionRateModel};
    use tailbench::queueing::{EmpiricalDistribution, MgkSimulation};

    let app: Arc<dyn ServerApp> = Arc::new(EchoApp {
        spin_iters: 100_000,
    });
    let model = InstructionRateModel {
        ns_per_instruction: 1.0,
    }; // ~100 us per request
    let mut factory = || vec![0u8];
    let report = runner::execute(
        &app,
        &mut factory,
        &BenchmarkConfig::new(5_000.0, 4_000)
            .with_warmup(400)
            .with_mode(HarnessMode::Simulated)
            .with_seed(3),
        Some(&model),
    )
    .unwrap();

    let queue_model = MgkSimulation::new(EmpiricalDistribution::new(vec![100_010; 100]), 1);
    let predicted = queue_model.run(5_000.0, 100_000, 3);
    let ratio = report.sojourn.mean_ns / predicted.mean_ns();
    assert!(
        (0.7..1.3).contains(&ratio),
        "harness mean {} vs model mean {} (ratio {ratio})",
        report.sojourn.mean_ns,
        predicted.mean_ns()
    );
}

#[test]
fn closed_loop_underestimates_tail_latency() {
    use tailbench::core::LoadMode;
    let (app, make_factory) = masstree();

    // Push the open-loop system to a high load; the closed-loop client at the same
    // average think rate cannot observe the queuing it causes.
    let mut factory = make_factory(4);
    let capacity = runner::measure_capacity(&app, factory.as_mut(), 1, 2_000);
    let qps = capacity * 0.9;

    let mut factory = make_factory(4);
    let open = runner::execute(
        &app,
        factory.as_mut(),
        &BenchmarkConfig::new(qps, 2_000)
            .with_warmup(200)
            .with_seed(5),
        None,
    )
    .unwrap();
    let mut factory = make_factory(4);
    let closed = runner::execute(
        &app,
        factory.as_mut(),
        &BenchmarkConfig::new(qps, 2_000)
            .with_warmup(200)
            .with_seed(5)
            .with_load(LoadMode::Closed {
                think_ns: (1e9 / qps) as u64,
            }),
        None,
    )
    .unwrap();
    assert!(
        open.sojourn.p95_ns > closed.sojourn.p95_ns,
        "open-loop p95 {} must exceed closed-loop p95 {}",
        open.sojourn.p95_ns,
        closed.sojourn.p95_ns
    );
}
