//! Integration tests of the cluster harness and of cross-configuration consistency.
//!
//! DESIGN.md's configuration table claims the four harness configurations measure the
//! same application work and differ only in the transport around it: integrated adds
//! nothing, loopback adds the kernel network stack, networked adds propagation delay.
//! The cross-mode test here guards the invariant that *service time* — the part inside
//! the application — agrees between integrated and loopback runs of the same
//! workload/seed (queuing and sojourn may differ, that's the point of the modes).
//! The cluster tests exercise the partition-aggregate fan-out path end to end across
//! runners and applications.

use std::sync::Arc;
use tailbench::core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench::core::{runner, RequestFactory, ServerApp};

fn masstree() -> (Arc<dyn ServerApp>, impl Fn(u64) -> Box<dyn RequestFactory>) {
    use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench::workloads::ycsb::YcsbConfig;
    let workload = YcsbConfig::small();
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&workload));
    (app, move |seed| {
        Box::new(YcsbRequestFactory::new(&workload, seed)) as Box<dyn RequestFactory>
    })
}

#[test]
fn integrated_and_loopback_agree_on_service_time() {
    let (app, make_factory) = masstree();
    // Light load so neither run saturates; both modes execute the same handler on the
    // same request stream (same seed), so the in-application service time must agree.
    let config = BenchmarkConfig::new(800.0, 500)
        .with_warmup(50)
        .with_seed(31);

    let mut factory = make_factory(1);
    let integrated = runner::execute(&app, factory.as_mut(), &config, None).unwrap();
    let mut factory = make_factory(1);
    let loopback = runner::execute(
        &app,
        factory.as_mut(),
        &config
            .clone()
            .with_mode(HarnessMode::Loopback { connections: 2 }),
        None,
    )
    .unwrap();

    assert!(integrated.requests > 400);
    assert!(loopback.requests > 400);
    let mean_ratio = loopback.service.mean_ns / integrated.service.mean_ns.max(1.0);
    assert!(
        (0.4..2.5).contains(&mean_ratio),
        "mean service time must agree across modes: integrated {} vs loopback {} (ratio {mean_ratio})",
        integrated.service.mean_ns,
        loopback.service.mean_ns
    );
    let p95_ratio = loopback.service.p95_ns as f64 / integrated.service.p95_ns.max(1) as f64;
    assert!(
        (0.3..3.0).contains(&p95_ratio),
        "p95 service time must agree across modes: integrated {} vs loopback {} (ratio {p95_ratio})",
        integrated.service.p95_ns,
        loopback.service.p95_ns
    );
    // Loopback's sojourn includes the network stack, so it can only add latency on top
    // of queue + service.
    assert!(loopback.overhead.mean_ns >= 0.0);
}

#[test]
fn sharded_masstree_cluster_routes_by_key_in_every_real_mode() {
    use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench::workloads::ycsb::YcsbConfig;
    let workload = YcsbConfig::small();
    // Every shard holds the full (small) keyspace; hash routing decides who serves what.
    let shards = 2;
    let apps: Vec<Arc<dyn ServerApp>> = (0..shards)
        .map(|_| Arc::new(MasstreeApp::new(&workload)) as Arc<dyn ServerApp>)
        .collect();
    let cluster = ClusterConfig::new(shards, FanoutPolicy::ycsb());

    for mode in [
        HarnessMode::Integrated,
        HarnessMode::Loopback { connections: 1 },
    ] {
        let mut factory = YcsbRequestFactory::new(&workload, 9);
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_seed(13)
            .with_mode(mode);
        let report = runner::execute_cluster(&apps, &mut factory, &config, &cluster, None).unwrap();
        // Single-key requests are served exactly once, split across shards.
        let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
        assert_eq!(shard_total, report.cluster.requests);
        for shard in &report.per_shard {
            assert!(
                shard.requests > 0,
                "both shards must see traffic in {}",
                report.cluster.configuration
            );
        }
    }
}

#[test]
fn tpcc_cluster_partitions_by_warehouse() {
    use tailbench::apps::oltp::{OltpApp, TpccRequestFactory};
    use tailbench::workloads::tpcc::TpccConfig;
    let config = TpccConfig {
        warehouses: 4,
        items: 2_000,
        customers_per_district: 100,
        remote_line_fraction: 0.01,
    };
    let shards = 2;
    // Each shard runs a full silo instance; the router assigns warehouses w to shard
    // w % 2, so transactions stay single-shard (classic warehouse partitioning).
    let apps: Vec<Arc<dyn ServerApp>> = (0..shards)
        .map(|_| Arc::new(OltpApp::silo(config.clone())) as Arc<dyn ServerApp>)
        .collect();
    let cluster = ClusterConfig::new(shards, FanoutPolicy::tpcc());
    let mut factory = TpccRequestFactory::new(&config, 5);
    let bench = BenchmarkConfig::new(1_000.0, 300)
        .with_warmup(30)
        .with_seed(7);
    let report = runner::execute_cluster(&apps, &mut factory, &bench, &cluster, None).unwrap();

    let shard_total: u64 = report.per_shard.iter().map(|r| r.requests).sum();
    assert_eq!(shard_total, report.cluster.requests);
    for shard in &report.per_shard {
        assert!(shard.requests > 50, "warehouse load should spread: {shard}");
    }
}

#[test]
fn simulated_and_integrated_cluster_share_structure() {
    use tailbench::core::app::{EchoApp, InstructionRateModel};
    let apps: Vec<Arc<dyn ServerApp>> = (0..3)
        .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
        .collect();
    let cluster = ClusterConfig::new(3, FanoutPolicy::Broadcast);
    let model = InstructionRateModel {
        ns_per_instruction: 1.0,
    };
    for mode in [HarnessMode::Integrated, HarnessMode::Simulated] {
        let mut factory = || b"x".to_vec();
        let config = BenchmarkConfig::new(1_000.0, 300)
            .with_warmup(30)
            .with_seed(3)
            .with_mode(mode);
        let report =
            runner::execute_cluster(&apps, &mut factory, &config, &cluster, Some(&model)).unwrap();
        // Broadcast: every shard serves every request; the end-to-end tail can never
        // undercut the slowest shard's tail (last-response-wins).
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
        assert!(report.p99_amplification() >= 1.0);
    }
}
