//! Golden determinism regression tests.
//!
//! A `Simulated` run advances a virtual clock through a discrete-event loop, so for a
//! fixed seed its percentiles are *exact* constants — independent of host speed, core
//! count and OS scheduling.  These tests pin those constants for a single-server run
//! and for two 4-shard cluster runs (broadcast and hash-routed): any accidental change
//! to the virtual-clock event ordering (tie-breaking, queue discipline, routing, the
//! fan-out merge) fails loudly here instead of silently shifting every simulated
//! result.
//!
//! The same constants are additionally pinned **through the unified experiment
//! layer**: an `ExperimentSpec` with no sweep and one repeat must reproduce the direct
//! `runner::execute`/`execute_cluster` call bit for bit — including when the spec
//! first round-trips through its JSON form (the path the `tailbench` CLI takes).
//!
//! If you change the event ordering *on purpose*, re-derive the constants by printing
//! the asserted fields from a release run and update them together with a DESIGN.md
//! note.

use std::sync::Arc;
use tailbench::core::app::{CostModel, EchoApp, InstructionRateModel};
use tailbench::core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench::core::{runner, ServerApp};
use tailbench::experiment::{
    AppBuilder, BenchApp, ClusterApp, Experiment, ExperimentSpec, FanoutSpec, LoadSpec, ModeSpec,
    Registry, Scale, TopologySpec,
};

/// The shared fixed-seed configuration: 5k QPS Poisson arrivals, 1000 measured
/// requests after 100 warmup, seed 0x601D.
fn golden_config() -> BenchmarkConfig {
    BenchmarkConfig::new(5_000.0, 1_000)
        .with_warmup(100)
        .with_seed(0x601D)
        .with_mode(HarnessMode::Simulated)
}

/// EchoApp reports `10 + spin_iters` instructions, so at 1 ns/instruction the service
/// time is exactly `spin_iters + 10` ns — all remaining variation comes from the
/// seeded Poisson arrival process.
fn cost_model() -> InstructionRateModel {
    InstructionRateModel {
        ns_per_instruction: 1.0,
    }
}

#[test]
fn single_server_simulated_percentiles_are_exact() {
    let app: Arc<dyn ServerApp> = Arc::new(EchoApp {
        spin_iters: 100_000,
    });
    let mut factory = || b"golden".to_vec();
    let report =
        runner::execute(&app, &mut factory, &golden_config(), Some(&cost_model())).unwrap();
    assert_eq!(report.requests, 1_000);
    assert_eq!(report.sojourn.p50_ns, 100_010);
    assert_eq!(report.sojourn.p95_ns, 294_185);
    assert_eq!(report.sojourn.p99_ns, 451_793);
}

/// Four heterogeneous shards (shard `i` costs `100_000 + 15_000 * i` ns) under
/// broadcast fan-out: per-shard and end-to-end percentiles are all pinned, and the
/// end-to-end distribution must equal the slowest-leg merge.
#[test]
fn four_shard_broadcast_cluster_percentiles_are_exact() {
    let apps: Vec<Arc<dyn ServerApp>> = (0..4)
        .map(|i| {
            Arc::new(EchoApp {
                spin_iters: 100_000 + 15_000 * i,
            }) as Arc<dyn ServerApp>
        })
        .collect();
    let cluster = ClusterConfig::new(4, FanoutPolicy::Broadcast);
    let mut factory = || b"golden".to_vec();
    let report = runner::execute_cluster(
        &apps,
        &mut factory,
        &golden_config(),
        &cluster,
        Some(&cost_model()),
    )
    .unwrap();

    assert_eq!(report.cluster.requests, 1_000);
    assert_eq!(report.cluster.sojourn.p50_ns, 252_115);
    assert_eq!(report.cluster.sojourn.p95_ns, 757_913);
    assert_eq!(report.cluster.sojourn.p99_ns, 1_150_870);

    let shard_p99 = [451_793u64, 606_360, 766_184, 1_150_870];
    for (shard, &expected) in report.per_shard.iter().zip(shard_p99.iter()) {
        assert_eq!(shard.requests, 1_000);
        assert_eq!(shard.sojourn.p99_ns, expected);
    }
    // The union-of-legs view flows through the histogram merge path.
    assert_eq!(report.shard_union_sojourn.p99_ns, 851_492);
    // With the slowest shard dominating, the end-to-end p99 equals shard 3's p99.
    assert_eq!(report.cluster.sojourn.p99_ns, report.max_shard_p99_ns());
}

/// The same four shards behind hash-by-key routing: the FNV-1a router must keep
/// splitting a sequential key stream into the same per-shard loads, and the routed
/// percentiles stay exact.
#[test]
fn four_shard_hash_routed_cluster_percentiles_are_exact() {
    let apps: Vec<Arc<dyn ServerApp>> = (0..4)
        .map(|i| {
            Arc::new(EchoApp {
                spin_iters: 100_000 + 15_000 * i,
            }) as Arc<dyn ServerApp>
        })
        .collect();
    let cluster = ClusterConfig::new(4, FanoutPolicy::HashKey { offset: 0, len: 8 });
    let mut key = 0u64;
    let mut factory = move || {
        key += 1;
        key.to_le_bytes().to_vec()
    };
    let report = runner::execute_cluster(
        &apps,
        &mut factory,
        &golden_config(),
        &cluster,
        Some(&cost_model()),
    )
    .unwrap();

    assert_eq!(report.cluster.requests, 1_000);
    assert_eq!(
        report
            .per_shard
            .iter()
            .map(|s| s.requests)
            .collect::<Vec<_>>(),
        vec![250, 250, 250, 250],
        "FNV-1a routing of sequential keys must stay stable"
    );
    assert_eq!(report.cluster.sojourn.p50_ns, 130_010);
    assert_eq!(report.cluster.sojourn.p95_ns, 145_010);
    assert_eq!(report.cluster.sojourn.p99_ns, 145_010);
}

// ---------------------------------------------------------------------------
// The same constants through Experiment::run().
// ---------------------------------------------------------------------------

/// The golden echo workload as a registry entry: fixed `b"golden"` payloads, the exact
/// 1 ns/instruction cost model, and the heterogeneous 4-shard cluster layout.
struct GoldenEcho;

impl AppBuilder for GoldenEcho {
    fn name(&self) -> &str {
        "golden-echo"
    }
    fn build(&self, _scale: Scale) -> BenchApp {
        BenchApp::new(
            "golden-echo",
            Arc::new(EchoApp {
                spin_iters: 100_000,
            }),
            |_| Box::new(|| b"golden".to_vec()),
        )
    }
    fn build_cluster(&self, shards: usize, replication: usize, _scale: Scale) -> ClusterApp {
        assert_eq!(replication, 1, "the golden cluster is unreplicated");
        let instances = (0..shards as u64)
            .map(|i| {
                Arc::new(EchoApp {
                    spin_iters: 100_000 + 15_000 * i,
                }) as Arc<dyn ServerApp>
            })
            .collect();
        ClusterApp::new("golden-echo", instances, |_| {
            Box::new(|| b"golden".to_vec())
        })
    }
    fn cost_model(&self) -> Box<dyn CostModel> {
        Box::new(cost_model())
    }
}

fn golden_registry() -> Registry {
    let mut registry = Registry::empty();
    registry.register(Box::new(GoldenEcho));
    registry
}

/// The spec equivalent of [`golden_config`].
fn golden_spec() -> ExperimentSpec {
    ExperimentSpec::new("golden", "golden-echo")
        .with_mode(ModeSpec::Simulated)
        .with_load(LoadSpec::Qps(5_000.0))
        .with_requests(1_000)
        .with_warmup(100)
        .with_seed(0x601D)
}

#[test]
fn experiment_single_server_path_reproduces_the_golden_percentiles() {
    let output = Experiment::new(golden_spec())
        .with_registry(golden_registry())
        .run()
        .unwrap();
    assert_eq!(output.points.len(), 1);
    let report = output.points[0].report.headline();
    assert_eq!(report.requests, 1_000);
    assert_eq!(report.sojourn.p50_ns, 100_010);
    assert_eq!(report.sojourn.p95_ns, 294_185);
    assert_eq!(report.sojourn.p99_ns, 451_793);
}

#[test]
fn experiment_cluster_path_reproduces_the_golden_percentiles() {
    let spec =
        golden_spec().with_topology(TopologySpec::sharded(4).with_fanout(FanoutSpec::Broadcast));
    let output = Experiment::new(spec)
        .with_registry(golden_registry())
        .run()
        .unwrap();
    let report = output.points[0].report.cluster().expect("cluster report");
    assert_eq!(report.cluster.requests, 1_000);
    assert_eq!(report.cluster.sojourn.p50_ns, 252_115);
    assert_eq!(report.cluster.sojourn.p95_ns, 757_913);
    assert_eq!(report.cluster.sojourn.p99_ns, 1_150_870);
    assert_eq!(report.shard_union_sojourn.p99_ns, 851_492);
}

#[test]
fn experiment_json_round_trip_reproduces_the_golden_percentiles() {
    // Serialize the golden spec, parse it back (the CLI's spec-file path), run it,
    // and compare the full JSON output against the builder-constructed run.
    let spec =
        golden_spec().with_topology(TopologySpec::sharded(4).with_fanout(FanoutSpec::Broadcast));
    let reparsed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
    assert_eq!(reparsed, spec);

    let from_builder = Experiment::new(spec)
        .with_registry(golden_registry())
        .run()
        .unwrap();
    let from_json = Experiment::new(reparsed)
        .with_registry(golden_registry())
        .run()
        .unwrap();
    assert_eq!(
        from_builder.to_json_string(),
        from_json.to_json_string(),
        "spec-file and builder paths must produce byte-identical output"
    );
    let report = from_json.points[0].report.cluster().unwrap();
    assert_eq!(report.cluster.sojourn.p99_ns, 1_150_870);
}
