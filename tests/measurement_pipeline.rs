//! Measurement-pipeline regression tests.
//!
//! The low-overhead measurement pipeline rearranges *where* statistics are maintained
//! (per-worker/per-connection collector shards merged at run end), *what* the queue
//! does at capacity (explicit admission policies with depth accounting), and *what the
//! harness admits about itself* (pacing-error and queue summaries in every report).
//! These tests pin the properties that rearrangement must preserve:
//!
//! 1. A sharded collector merged across real threads is statistically identical to a
//!    single collector that recorded the same stream.
//! 2. Bounded-queue overload is reported (drop counts, peak depth, depth timeline) and
//!    is bit-for-bit deterministic in DES mode.
//! 3. The unified experiment layer carries the new fields end to end.

use std::sync::Arc;
use tailbench::core::app::{EchoApp, InstructionRateModel};
use tailbench::core::collector::StatsCollector;
use tailbench::core::config::BenchmarkConfig;
use tailbench::core::queue::AdmissionPolicy;
use tailbench::core::request::{RequestId, RequestRecord};
use tailbench::core::sim::run_simulated;
use tailbench::core::ServerApp;
use tailbench::experiment::{
    Experiment, ExperimentSpec, LoadSpec, ModeSpec, QueuePolicySpec, Registry, Scale,
};

fn record(id: u64, issued: u64, service: u64) -> RequestRecord {
    RequestRecord {
        id: RequestId(id),
        issued_ns: issued,
        enqueued_ns: issued + 10,
        started_ns: issued + 50 + (id % 13) * 7,
        completed_ns: issued + 50 + (id % 13) * 7 + service,
        client_received_ns: issued + 60 + (id % 13) * 7 + service,
    }
}

/// A deterministic stream of 40k records with spread-out latencies.
fn stream() -> Vec<RequestRecord> {
    (0..40_000u64)
        .map(|i| record(i, i * 2_500, 1_000 + (i * 97) % 400_000))
        .collect()
}

#[test]
fn sharded_collector_merge_equals_single_threaded_recording_under_threads() {
    let records = stream();
    // Reference: one collector records everything on one thread.
    let mut single = StatsCollector::new(500);
    for r in &records {
        single.record(r);
    }

    // Stress: 8 real threads each record a deterministic interleaved slice into their
    // own shard, concurrently; the shards merge at join.
    let shared = Arc::new(records);
    let threads = 8usize;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let records = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut shard = StatsCollector::new(500);
                for r in records.iter().skip(t).step_by(threads) {
                    shard.record(r);
                }
                shard
            })
        })
        .collect();
    let mut merged = StatsCollector::new(500);
    for handle in handles {
        merged.merge(&handle.join().expect("shard thread panicked"));
    }

    assert_eq!(merged.measured(), single.measured());
    assert_eq!(merged.warmup_seen(), single.warmup_seen());
    assert_eq!(merged.span_ns(), single.span_ns());
    assert_eq!(merged.sojourn_stats(), single.sojourn_stats());
    assert_eq!(merged.service_stats(), single.service_stats());
    assert_eq!(merged.queue_stats(), single.queue_stats());
    assert_eq!(merged.overhead_stats(), single.overhead_stats());
    assert!((merged.achieved_qps() - single.achieved_qps()).abs() < 1e-9);
}

#[test]
fn bounded_queue_overload_is_reported_and_deterministic_in_des() {
    // EchoApp reports ~100k+10 instructions; at 1 ns/instruction the service time is
    // ~100 us, so capacity is ~10k QPS on one simulated server.  Offering 40k QPS with
    // a 32-deep Drop queue must shed most of the load — deterministically.
    let app: Arc<dyn ServerApp> = Arc::new(EchoApp {
        spin_iters: 100_000,
    });
    let model = InstructionRateModel {
        ns_per_instruction: 1.0,
    };
    let config = BenchmarkConfig::new(40_000.0, 4_000)
        .with_warmup(0)
        .with_seed(0xD20B)
        .with_admission(AdmissionPolicy::Drop { capacity: 32 });
    let mut factory = || b"shed".to_vec();
    let a = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");
    let mut factory = || b"shed".to_vec();
    let b = run_simulated(&app, &mut factory, &config, &model).expect("simulated run");

    assert_eq!(a.queue_depth.policy, "drop(32)");
    assert!(a.queue_depth.dropped > 0, "overload must shed");
    assert!(a.queue_depth.accepted > 0);
    assert_eq!(a.queue_depth.accepted + a.queue_depth.dropped, 4_000);
    assert!(a.queue_depth.peak_depth <= 32);
    assert!(!a.queue_depth.depth_timeline.is_empty());
    assert!(a
        .queue_depth
        .depth_timeline
        .windows(2)
        .all(|w| w[0].0 < w[1].0));
    // Only admitted requests are measured; the sojourn tail stays bounded by the cap.
    assert_eq!(a.requests, a.queue_depth.accepted);
    assert!(a.sojourn.max_ns < 34 * 110_000);
    // Virtual-time pacing is exact, so the DES reports no pacing error.
    assert_eq!(a.pacing.count, 0);

    // Bit-for-bit deterministic, including the new accounting.
    assert_eq!(a.queue_depth, b.queue_depth);
    assert_eq!(a.sojourn, b.sojourn);
    assert_eq!(a.requests, b.requests);

    // The default (unbounded) queue under the same load drops nothing and reports the
    // same offered count; the backlog shows up as depth instead.
    let unbounded_config = BenchmarkConfig::new(40_000.0, 4_000)
        .with_warmup(0)
        .with_seed(0xD20B);
    let mut factory = || b"shed".to_vec();
    let u = run_simulated(&app, &mut factory, &unbounded_config, &model).expect("simulated run");
    assert_eq!(u.queue_depth.policy, "unbounded");
    assert_eq!(u.queue_depth.dropped, 0);
    assert_eq!(u.queue_depth.accepted, 4_000);
    assert!(u.queue_depth.peak_depth > 32, "the backlog must be visible");
    assert!(u.sojourn.max_ns > a.sojourn.max_ns);
}

/// The golden-echo registry used by the experiment-layer checks below.
struct Echo;

impl tailbench::experiment::AppBuilder for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn build(&self, _scale: Scale) -> tailbench::experiment::BenchApp {
        tailbench::experiment::BenchApp::new(
            "echo",
            Arc::new(EchoApp {
                spin_iters: 100_000,
            }),
            |_| Box::new(|| b"pipe".to_vec()),
        )
    }
    fn cost_model(&self) -> Box<dyn tailbench::core::CostModel> {
        Box::new(InstructionRateModel {
            ns_per_instruction: 1.0,
        })
    }
}

fn echo_registry() -> Registry {
    let mut registry = Registry::empty();
    registry.register(Box::new(Echo));
    registry
}

#[test]
fn experiment_layer_carries_queue_and_pacing_fields_end_to_end() {
    let spec = ExperimentSpec::new("pipeline", "echo")
        .with_mode(ModeSpec::Simulated)
        .with_load(LoadSpec::Qps(40_000.0))
        .with_requests(2_000)
        .with_warmup(0)
        .with_seed(0xD20B)
        .with_queue(QueuePolicySpec::Drop { capacity: 32 });
    // The queue policy survives the JSON spec round trip (the CLI path).
    let reparsed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
    assert_eq!(reparsed, spec);

    let output = Experiment::new(reparsed)
        .with_registry(echo_registry())
        .run()
        .unwrap();
    let report = output.points[0].report.headline();
    assert_eq!(report.queue_depth.policy, "drop(32)");
    assert!(report.queue_depth.dropped > 0);
    let text = output.to_json_string();
    assert!(text.contains("\"queue_depth\""), "{text}");
    assert!(text.contains("\"dropped\""), "{text}");
    assert!(text.contains("\"pacing\""), "{text}");
    assert!(text.contains("\"queue\""), "{text}");
    // And the emitted JSON still passes the CI verification gate.
    assert!(tailbench::experiment::verify_output_text(&text).is_ok());
}
