//! Scenario-engine regression tests.
//!
//! Two kinds of guard live here:
//!
//! * **Golden fixed-seed DES pins.**  A simulated scenario run advances a virtual
//!   clock, so for a fixed seed its percentiles are *exact* constants.  The burst
//!   scenario pins per-class p50/p95/p99 and shows the burst phase amplifying the p99
//!   over the steady phase; the hedging scenario pins the 4-shard × 2-replica broadcast
//!   p99 with and without hedging and asserts the mitigation wins.  If you change the
//!   event ordering, trace compiler or jitter hash *on purpose*, re-derive the
//!   constants from a release run and update them together with a DESIGN.md note.
//!
//! * **Coordinated-omission regression** (§II-B): under a square-wave burst, a
//!   closed-loop client slows its own arrival process down whenever the server stalls,
//!   so it reports a far lower sojourn than the open-loop client replaying the same
//!   offered schedule.  This pins the paper's core methodological claim in the regime
//!   where it matters most — bursts.

use std::sync::Arc;
use std::time::Duration;
use tailbench::core::app::{EchoApp, InstructionRateModel};
use tailbench::core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench::core::interference::InterferencePlan;
use tailbench::core::traffic::LoadMode;
use tailbench::core::{runner, HedgePolicy, RequestFactory, ServerApp};
use tailbench::scenario::{
    execute_cluster_scenario, execute_scenario, ClientClass, LoadPhase, Scenario,
};

/// EchoApp reports `10 + spin_iters` instructions, so at 1 ns/instruction the service
/// time is exactly `spin_iters + 10` ns; all remaining variation comes from the seeded
/// trace compiler.
fn cost_model() -> InstructionRateModel {
    InstructionRateModel {
        ns_per_instruction: 1.0,
    }
}

/// The golden burst scenario: 0.2 s steady at half capacity, 0.2 s of square-wave
/// bursts to 2x capacity, 0.1 s recovery; 70/30 interactive/batch split; seed 0x601D.
fn golden_scenario() -> Scenario {
    Scenario::new(
        "golden-burst",
        vec![
            LoadPhase::constant(5_000.0, Duration::from_millis(200)),
            LoadPhase::burst(
                5_000.0,
                20_000.0,
                Duration::from_millis(50),
                0.5,
                Duration::from_millis(200),
            ),
            LoadPhase::constant(5_000.0, Duration::from_millis(100)),
        ],
    )
    .with_classes(vec![
        ClientClass::new("interactive", 0.7),
        ClientClass::new("batch", 0.3),
    ])
    .with_warmup_fraction(0.05)
}

fn golden_factories() -> Vec<Box<dyn RequestFactory>> {
    vec![
        Box::new(|| b"interactive".to_vec()),
        Box::new(|| b"batch".to_vec()) as Box<dyn RequestFactory>,
    ]
}

#[test]
fn golden_burst_scenario_percentiles_are_exact() {
    let app: Arc<dyn ServerApp> = Arc::new(EchoApp {
        spin_iters: 100_000, // 100 us service => capacity 10k QPS
    });
    let report = execute_scenario(
        &app,
        golden_factories(),
        &golden_scenario(),
        HarnessMode::Simulated,
        1,
        0x601D,
        Some(&cost_model()),
    )
    .unwrap();

    assert_eq!(report.requests, 3_776);

    // Exact per-class percentiles (the golden pin of the acceptance criteria).
    let interactive = &report.per_class[0];
    assert_eq!(interactive.name, "interactive");
    assert_eq!(interactive.sojourn.count, 2_701);
    assert_eq!(interactive.sojourn.p50_ns, 26_949_052);
    assert_eq!(interactive.sojourn.p95_ns, 55_577_294);
    assert_eq!(interactive.sojourn.p99_ns, 60_605_108);
    let batch = &report.per_class[1];
    assert_eq!(batch.name, "batch");
    assert_eq!(batch.sojourn.count, 1_075);
    assert_eq!(batch.sojourn.p50_ns, 26_679_615);
    assert_eq!(batch.sojourn.p95_ns, 56_042_710);
    assert_eq!(batch.sojourn.p99_ns, 60_249_666);

    // Exact per-phase percentiles: the burst phase amplifies the steady phase's p99 by
    // two orders of magnitude (2x-capacity bursts build a queue the recovery phase is
    // still draining).
    let steady = &report.per_phase[0];
    assert_eq!(steady.name, "0:constant");
    assert_eq!(steady.sojourn.count, 793);
    assert_eq!(steady.sojourn.p50_ns, 100_010);
    assert_eq!(steady.sojourn.p99_ns, 569_261);
    let burst = &report.per_phase[1];
    assert_eq!(burst.name, "1:burst");
    assert_eq!(burst.sojourn.count, 2_500);
    assert_eq!(burst.sojourn.p99_ns, 61_079_325);
    assert_eq!(report.per_phase[2].sojourn.p99_ns, 49_851_342);
    assert!(
        burst.sojourn.p99_ns > 50 * steady.sojourn.p99_ns,
        "burst-phase p99 must dwarf the steady phase's"
    );
}

#[test]
fn golden_hedging_cuts_the_broadcast_tail_at_four_shards() {
    let make_apps = || -> Vec<Arc<dyn ServerApp>> {
        (0..8)
            .map(|_| {
                Arc::new(EchoApp {
                    spin_iters: 100_000,
                }) as Arc<dyn ServerApp>
            })
            .collect()
    };
    // 4 shards x 2 replicas under broadcast at ~40% per-instance load, with replica 1
    // of shard 0 slowed 3x for the middle of the run — enough to back that replica up
    // (3x service at 40% load is transient overload) without drowning the healthy
    // replica in hedge copies.
    let scenario = |hedge: Option<HedgePolicy>| {
        let mut s = Scenario::new(
            "golden-hedge",
            vec![LoadPhase::constant(8_000.0, Duration::from_millis(300))],
        )
        .with_warmup_fraction(0.05)
        .with_interference(InterferencePlan::none().slow_instance(
            1,
            100_000_000,
            200_000_000,
            3.0,
        ));
        if let Some(policy) = hedge {
            s = s.with_hedge(policy);
        }
        s
    };
    let cluster = ClusterConfig::new(4, FanoutPolicy::Broadcast).with_replication(2);
    let run = |hedge: Option<HedgePolicy>| {
        execute_cluster_scenario(
            &make_apps(),
            vec![Box::new(|| b"g".to_vec()) as Box<dyn RequestFactory>],
            &scenario(hedge),
            &cluster,
            HarnessMode::Simulated,
            1,
            0x601D,
            Some(&cost_model()),
        )
        .unwrap()
    };

    let unhedged = run(None);
    assert_eq!(unhedged.cluster.requests, 2_304);
    assert_eq!(unhedged.hedge, None);
    assert_eq!(unhedged.cluster.sojourn.p50_ns, 100_010);
    assert_eq!(unhedged.cluster.sojourn.p99_ns, 23_099_893);

    let hedged = run(Some(HedgePolicy::after_ns(400_000)));
    assert_eq!(hedged.cluster.requests, 2_304);
    assert_eq!(hedged.cluster.sojourn.p50_ns, 122_822);
    assert_eq!(hedged.cluster.sojourn.p99_ns, 1_296_361);
    let stats = hedged.hedge.expect("hedged run must report hedge stats");
    assert_eq!(stats.issued, 694);
    assert_eq!(stats.wins, 555);

    // The acceptance inequality: at >= 4 shards of broadcast fan-out, hedging slashes
    // the end-to-end p99 relative to the unhedged run (here ~18x).
    assert!(
        hedged.cluster.sojourn.p99_ns * 10 < unhedged.cluster.sojourn.p99_ns,
        "hedged p99 {} must be at least 10x below unhedged p99 {}",
        hedged.cluster.sojourn.p99_ns,
        unhedged.cluster.sojourn.p99_ns
    );
}

/// The wall-clock hedge engine (integrated and TCP cluster paths): an aggressive 1 µs
/// trigger forces hedges on essentially every leg, and first-response-wins dedup must
/// still deliver exactly one record per request — no double counting, no losses.
#[test]
fn wall_clock_cluster_hedging_completes_and_dedups() {
    for mode in [
        HarnessMode::Integrated,
        HarnessMode::Loopback { connections: 1 },
    ] {
        let apps: Vec<Arc<dyn ServerApp>> = (0..4)
            .map(|_| Arc::new(EchoApp::with_service_us(20)) as Arc<dyn ServerApp>)
            .collect();
        let scenario = Scenario::new(
            "wall-hedge",
            vec![LoadPhase::constant(1_500.0, Duration::from_millis(150))],
        )
        .with_warmup_fraction(0.1)
        .with_hedge(HedgePolicy::after_ns(1_000));
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(2);
        let report = execute_cluster_scenario(
            &apps,
            vec![Box::new(|| b"wh".to_vec()) as Box<dyn RequestFactory>],
            &scenario,
            &cluster,
            mode.clone(),
            1,
            0x3D,
            None,
        )
        .unwrap();
        let stats = report.hedge.expect("hedge stats must be reported");
        assert!(
            stats.issued > 0,
            "{}: a 1 us trigger must hedge",
            mode.name()
        );
        assert!(stats.wins <= stats.issued);
        // Every measured request is recorded exactly once end-to-end, and each shard
        // records exactly one winning leg per request.
        assert!(report.cluster.requests > 100, "{}", report.cluster.requests);
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests, "{}", mode.name());
        }
    }
}

/// §II-B coordinated-omission guard, in the bursty regime where it bites hardest: the
/// open-loop client replays the compiled square-wave schedule even while the server
/// drowns, so queueing delay lands in its sojourn; the closed-loop ablation client
/// waits for each response before issuing the next request, silently thinning the
/// offered load during exactly the overloaded windows and reporting a dramatically
/// lower tail.  Seeds are fixed; the assertion leaves a wide margin because the
/// integrated harness runs in real time.
#[test]
fn closed_loop_under_reports_burst_sojourn_vs_open_loop() {
    let app: Arc<dyn ServerApp> = Arc::new(EchoApp::with_service_us(20));
    // Bursts far beyond a single worker's capacity: ~10 us gaps against a ~10+ us
    // service time.
    let scenario = Scenario::new(
        "co-burst",
        vec![
            LoadPhase::constant(2_000.0, Duration::from_millis(100)),
            LoadPhase::burst(
                2_000.0,
                100_000.0,
                Duration::from_millis(40),
                0.5,
                Duration::from_millis(200),
            ),
            LoadPhase::constant(2_000.0, Duration::from_millis(100)),
        ],
    )
    .with_warmup_fraction(0.05);
    let open = execute_scenario(
        &app,
        vec![Box::new(|| b"co".to_vec()) as Box<dyn RequestFactory>],
        &scenario,
        HarnessMode::Integrated,
        1,
        0xC0,
        None,
    )
    .unwrap();

    // The closed-loop ablation issues the same number of requests with a think time
    // equal to the open-loop schedule's mean gap, so its *intended* load matches; what
    // it cannot do is keep issuing during the bursts it stalls in.
    let compiled = scenario.compile(0xC0);
    let span_ns = compiled.times.last().copied().unwrap_or(1);
    let think_ns = span_ns / compiled.times.len().max(1) as u64;
    let closed_config = BenchmarkConfig::new(1.0, compiled.times.len() - compiled.warmup)
        .with_warmup(compiled.warmup)
        .with_seed(0xC0)
        .with_load(LoadMode::Closed { think_ns })
        .with_max_duration(Duration::from_secs(60));
    let mut closed_factory = || b"co".to_vec();
    let closed = runner::execute(&app, &mut closed_factory, &closed_config, None).unwrap();

    assert!(
        open.requests > 1_000,
        "open-loop measured {}",
        open.requests
    );
    assert!(
        closed.requests > 1_000,
        "closed-loop measured {}",
        closed.requests
    );
    assert!(
        open.sojourn.p95_ns > 3 * closed.sojourn.p95_ns,
        "open-loop burst p95 ({} ns) must dwarf the closed-loop ablation's ({} ns): \
         coordinated omission hides the queueing the bursts create",
        open.sojourn.p95_ns,
        closed.sojourn.p95_ns
    );
}
