//! Golden tests for report *ordering* determinism.
//!
//! The report paths must never depend on hash-map iteration order: per-class rows
//! follow the tag table's declaration order, per-shard rows follow shard index, and
//! the serialized JSON for a fixed-seed simulated run is byte-identical across
//! repeats.  A `ClusterCollector` built from partials must also be independent of the
//! order the partials are merged in — receiver threads hand their partials back in a
//! nondeterministic order on real runs.
//!
//! These tests exist because the collectors and experiment caches were migrated from
//! `HashMap` to ordered containers; a regression back to unordered iteration in any
//! report-emitting path fails here (and in the `no-unordered-iteration-in-reports`
//! lint rule) instead of surfacing as flaky report diffs.

use std::sync::Arc;
use tailbench::core::app::{EchoApp, InstructionRateModel};
use tailbench::core::collector::{ClusterCollector, RequestTags};
use tailbench::core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy};
use tailbench::core::request::{RequestId, RequestRecord};
use tailbench::core::sim::{run_cluster_simulated, run_simulated};
use tailbench::core::ServerApp;
use tailbench::experiment::output::{cluster_report_to_json, run_report_to_json};

fn app() -> Arc<dyn ServerApp> {
    Arc::new(EchoApp { spin_iters: 100 })
}

fn model() -> InstructionRateModel {
    InstructionRateModel {
        ns_per_instruction: 1.0,
    }
}

/// Class names deliberately *not* in alphabetical order, so a sorted-by-name
/// regression is distinguishable from declaration order.
fn tagged_config() -> BenchmarkConfig {
    let total = 1_100usize;
    let classes: Vec<u16> = (0..total).map(|i| (i % 3) as u16).collect();
    let tags = Arc::new(RequestTags::new(
        vec!["zeta".into(), "alpha".into(), "mid".into()],
        vec!["steady".into()],
        classes,
        vec![0; total],
    ));
    BenchmarkConfig::new(5_000.0, 1_000)
        .with_warmup(100)
        .with_seed(0x601D)
        .with_tags(tags)
}

#[test]
fn per_class_rows_follow_tag_declaration_order() {
    let app = app();
    let mut factory = || b"x".to_vec();
    let report =
        run_simulated(&app, &mut factory, &tagged_config(), &model()).expect("simulated run");
    let names: Vec<&str> = report.per_class.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["zeta", "alpha", "mid"],
        "per-class rows must follow tag declaration order, not name or hash order"
    );
    assert!(
        report.per_class.iter().all(|c| c.sojourn.count > 0),
        "every declared class saw traffic in this config"
    );
}

#[test]
fn tagged_report_json_is_byte_identical_across_repeats() {
    let app = app();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut factory = || b"x".to_vec();
        let report =
            run_simulated(&app, &mut factory, &tagged_config(), &model()).expect("simulated run");
        runs.push(run_report_to_json(&report).to_text());
    }
    assert_eq!(
        runs[0], runs[1],
        "fixed-seed tagged report must serialize byte-identically across repeats"
    );
}

#[test]
fn per_shard_rows_follow_shard_index_and_serialize_identically() {
    let apps: Vec<Arc<dyn ServerApp>> = (0..3).map(|_| app()).collect();
    let config = BenchmarkConfig::new(5_000.0, 1_000)
        .with_warmup(100)
        .with_seed(0x601D);
    let cluster = ClusterConfig::new(3, FanoutPolicy::Broadcast);
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut factory = || b"x".to_vec();
        let report = run_cluster_simulated(&apps, &mut factory, &config, &cluster, &model())
            .expect("cluster run");
        assert_eq!(report.per_shard.len(), 3, "one row per shard, by index");
        // Broadcast fan-out: every shard serves every measured request.
        for (i, shard) in report.per_shard.iter().enumerate() {
            assert_eq!(
                shard.requests, report.cluster.requests,
                "shard {i} must report the full broadcast leg count"
            );
        }
        runs.push(cluster_report_to_json(&report).to_text());
    }
    assert_eq!(
        runs[0], runs[1],
        "fixed-seed cluster report must serialize byte-identically across repeats"
    );
}

/// A fan-out leg record for request `id` landing on `shard` at time `t`.
fn leg(id: u64, shard: u64, t: u64) -> RequestRecord {
    RequestRecord {
        id: RequestId(id),
        issued_ns: t,
        enqueued_ns: t + 10,
        started_ns: t + 20,
        completed_ns: t + 100 + shard, // distinct per-leg completion times
        client_received_ns: t + 110 + shard,
    }
}

#[test]
fn cluster_partial_merge_is_order_independent() {
    // Two receiver threads each saw one leg of every 2-way fan-out request; the
    // end-to-end record only materializes at merge time.  Merging a <- b must give
    // the same statistics as b <- a.
    let build = |legs: &[(u64, u64)]| {
        let mut c = ClusterCollector::new(2, 0);
        for &(id, shard) in legs {
            c.record_leg(shard as usize, leg(id, shard, id * 1_000), 2);
        }
        c
    };
    let a_legs: Vec<(u64, u64)> = (0..50).map(|id| (id, id % 2)).collect();
    let b_legs: Vec<(u64, u64)> = (0..50).map(|id| (id, (id + 1) % 2)).collect();

    let mut ab = build(&a_legs);
    ab.merge(build(&b_legs));
    let mut ba = build(&b_legs);
    ba.merge(build(&a_legs));

    for (label, merged) in [("a<-b", &ab), ("b<-a", &ba)] {
        assert_eq!(merged.unmerged(), 0, "{label}: all fan-outs complete");
        assert_eq!(merged.cluster_stats().measured(), 50, "{label}");
    }
    assert_eq!(
        ab.cluster_stats().sojourn_stats(),
        ba.cluster_stats().sojourn_stats(),
        "end-to-end distribution must not depend on merge order"
    );
    for shard in 0..2 {
        assert_eq!(
            ab.shard_stats()[shard].sojourn_stats(),
            ba.shard_stats()[shard].sojourn_stats(),
            "shard {shard} distribution must not depend on merge order"
        );
    }
    assert_eq!(
        ab.merged_shard_sojourn().value_at_quantile(0.99),
        ba.merged_shard_sojourn().value_at_quantile(0.99),
        "shard-union distribution must not depend on merge order"
    );
}
