//! Cross-crate integration tests: every application runs end-to-end through the harness
//! in the integrated configuration, and the latency accounting is internally consistent.

use std::sync::Arc;
use tailbench::core::config::BenchmarkConfig;
use tailbench::core::report::RunReport;
use tailbench::core::{runner, RequestFactory, ServerApp};

fn check_report_sanity(report: &RunReport, min_requests: u64) {
    assert!(
        report.requests >= min_requests,
        "{}: only {} requests measured",
        report.app,
        report.requests
    );
    assert!(report.achieved_qps > 0.0);
    assert!(report.sojourn.p50_ns <= report.sojourn.p95_ns);
    assert!(report.sojourn.p95_ns <= report.sojourn.p99_ns);
    assert!(report.sojourn.min_ns <= report.sojourn.p50_ns);
    assert!(report.sojourn.p999_ns <= report.sojourn.max_ns);
    // Sojourn includes queuing and service.
    assert!(report.sojourn.mean_ns + 1.0 >= report.service.mean_ns);
}

fn run_integrated(
    app: Arc<dyn ServerApp>,
    factory: &mut dyn RequestFactory,
    qps: f64,
    requests: usize,
) -> RunReport {
    runner::execute(
        &app,
        factory,
        &BenchmarkConfig::new(qps, requests).with_warmup(requests / 10),
        None,
    )
    .expect("integrated run")
}

#[test]
fn masstree_and_specjbb_run_through_the_harness() {
    use tailbench::apps::jbb::{JbbRequestFactory, SpecJbbApp};
    use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench::workloads::ycsb::YcsbConfig;

    let workload = YcsbConfig::small();
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&workload));
    let mut factory = YcsbRequestFactory::new(&workload, 5);
    check_report_sanity(&run_integrated(app, &mut factory, 3_000.0, 400), 300);

    let jbb = SpecJbbApp::small();
    let mut factory = JbbRequestFactory::new(jbb.company(), 5);
    let app: Arc<dyn ServerApp> = Arc::new(jbb);
    check_report_sanity(&run_integrated(app, &mut factory, 2_000.0, 400), 300);
}

#[test]
fn search_translation_and_vision_run_through_the_harness() {
    use tailbench::apps::imgdnn::{ImageRequestFactory, ImgDnnApp};
    use tailbench::apps::search::{SearchRequestFactory, XapianApp};
    use tailbench::apps::translate::{MosesApp, TranslateRequestFactory};
    use tailbench::workloads::text::{CorpusConfig, SyntheticCorpus};

    let corpus = SyntheticCorpus::generate(CorpusConfig::small());
    let app: Arc<dyn ServerApp> = Arc::new(XapianApp::from_corpus(&corpus));
    let mut factory = SearchRequestFactory::new(&corpus, 6);
    check_report_sanity(&run_integrated(app, &mut factory, 600.0, 250), 200);

    let app: Arc<dyn ServerApp> = Arc::new(MosesApp::small());
    let model = tailbench::apps::translate::ModelConfig::small();
    let mut factory = TranslateRequestFactory::new(&model, 6);
    check_report_sanity(&run_integrated(app, &mut factory, 300.0, 150), 120);

    let app: Arc<dyn ServerApp> = Arc::new(ImgDnnApp::small());
    let mut factory = ImageRequestFactory::new(6);
    check_report_sanity(&run_integrated(app, &mut factory, 500.0, 200), 160);
}

#[test]
fn oltp_engines_run_through_the_harness() {
    use tailbench::apps::oltp::{OltpApp, TpccRequestFactory};
    use tailbench::workloads::tpcc::TpccConfig;

    let workload = TpccConfig::small();
    let silo: Arc<dyn ServerApp> = Arc::new(OltpApp::silo(workload.clone()));
    let mut factory = TpccRequestFactory::new(&workload, 7);
    check_report_sanity(&run_integrated(silo, &mut factory, 2_000.0, 400), 300);

    let shore: Arc<dyn ServerApp> = Arc::new(OltpApp::shore(workload.clone(), 256));
    let mut factory = TpccRequestFactory::new(&workload, 7);
    check_report_sanity(&run_integrated(shore, &mut factory, 1_000.0, 300), 240);
}

#[test]
fn speech_runs_through_the_harness() {
    use tailbench::apps::speech::{SpeechRequestFactory, SphinxApp};

    let app: Arc<dyn ServerApp> = Arc::new(SphinxApp::small());
    let mut factory = SpeechRequestFactory::new(20, 8);
    check_report_sanity(&run_integrated(app, &mut factory, 40.0, 60), 45);
}

#[test]
fn loopback_configuration_measures_the_same_application() {
    use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench::core::config::HarnessMode;
    use tailbench::workloads::ycsb::YcsbConfig;

    let workload = YcsbConfig::small();
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&workload));
    let mut factory = YcsbRequestFactory::new(&workload, 9);
    let report = runner::execute(
        &app,
        &mut factory,
        &BenchmarkConfig::new(1_500.0, 300)
            .with_warmup(30)
            .with_mode(HarnessMode::loopback()),
        None,
    )
    .expect("loopback run");
    check_report_sanity(&report, 250);
    assert_eq!(report.configuration, "loopback");
    // At this light load the loopback run must keep up with the offered rate.
    assert!(!report.is_saturated(0.2));
}
