//! Partition-aggregate fan-out and the tail-at-scale effect.
//!
//! A web-search query does not hit one server: the index is document-partitioned across
//! N leaves, the root broadcasts the query to every leaf and can only answer once the
//! *slowest* leaf responds.  Even if every leaf keeps an excellent p99, the end-to-end
//! p99 of an N-way fan-out tracks the leaves' p99.9 and beyond — which is why
//! cluster-level tail SLOs force per-leaf tails orders of magnitude tighter.
//!
//! This example sweeps the shard count from 1 to 16 under the discrete-event simulated
//! harness (deterministic and host-independent) and prints how the cluster p99 pulls
//! away from the per-shard p99.
//!
//! ```text
//! cargo run --release --example cluster_fanout
//! ```

use std::sync::Arc;
use tailbench::apps::search::{SearchRequestFactory, XapianApp};
use tailbench::core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench::core::{runner, HarnessError, ServerApp};
use tailbench::simarch::SystemModel;
use tailbench::workloads::text::{CorpusConfig, SyntheticCorpus};

fn main() -> Result<(), HarnessError> {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        documents: 4_000,
        vocabulary: 12_000,
        ..CorpusConfig::default()
    });
    let model = SystemModel::default();

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>8}",
        "shards", "shard p99", "cluster p99", "cluster p50", "amp"
    );
    for shards in [1usize, 2, 4, 8, 16] {
        let leaves: Vec<Arc<dyn ServerApp>> = (0..shards)
            .map(|s| Arc::new(XapianApp::leaf(&corpus, s, shards)) as Arc<dyn ServerApp>)
            .collect();

        // Probe the per-leaf simulated capacity, then offer 50% of it.  Every leaf sees
        // the full broadcast rate, so one leaf's capacity bounds the cluster sweep.
        let cluster = ClusterConfig::new(shards, FanoutPolicy::Broadcast);
        let probe_config = BenchmarkConfig::new(200.0, 300)
            .with_mode(HarnessMode::Simulated)
            .with_warmup(30);
        let mut factory = SearchRequestFactory::new(&corpus, 7);
        let probe =
            runner::execute_cluster(&leaves, &mut factory, &probe_config, &cluster, Some(&model))?;
        // Per-leaf capacity from the mean of the *per-shard* service means — the
        // cluster-level service time is the slowest leg's, which would understate
        // capacity more and more as the fan-out grows.
        let shard_service_mean = probe
            .per_shard
            .iter()
            .map(|s| s.service.mean_ns)
            .sum::<f64>()
            / probe.per_shard.len().max(1) as f64;
        let capacity = 1e9 / shard_service_mean.max(1.0);

        let config = BenchmarkConfig::new(capacity * 0.5, 2_000)
            .with_mode(HarnessMode::Simulated)
            .with_warmup(200)
            .with_seed(17);
        let mut factory = SearchRequestFactory::new(&corpus, 7);
        let report =
            runner::execute_cluster(&leaves, &mut factory, &config, &cluster, Some(&model))?;
        println!(
            "{:>6} {:>11.3} ms {:>11.3} ms {:>11.3} ms {:>7.2}x",
            shards,
            report.mean_shard_p99_ns() / 1e6,
            report.cluster.sojourn.p99_ms(),
            report.cluster.sojourn.p50_ns as f64 / 1e6,
            report.p99_amplification(),
        );
    }

    println!(
        "\nThe cluster p99 waits for the slowest of N shards, so it can only sit above\n\
         the per-shard p99.  In this noise-free simulation the legs decorrelate only\n\
         through partition skew and queue divergence, so the amplification shown is a\n\
         lower bound that grows with load and fan-out; on real hosts independent\n\
         per-leaf noise amplifies the effect (compare fig9_fanout_tail's integrated\n\
         rows, which reach 1.5x and beyond)."
    );
    Ok(())
}
