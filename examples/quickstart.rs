//! Quickstart: load-test the masstree key-value store in the integrated configuration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
use tailbench::core::config::BenchmarkConfig;
use tailbench::core::{runner, HarnessError, ServerApp};
use tailbench::workloads::ycsb::YcsbConfig;

fn main() -> Result<(), HarnessError> {
    // 1. Build the application (the server side): an in-memory ordered KV store
    //    preloaded with 100k records.
    let workload = YcsbConfig {
        records: 100_000,
        ..YcsbConfig::default()
    };
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&workload));

    // 2. Build the client side: the mycsb-a request mix (50% GETs / 50% PUTs, Zipfian keys).
    let mut clients = YcsbRequestFactory::new(&workload, 42);

    // 3. Describe the measurement: open-loop Poisson arrivals at 20k QPS, one worker
    //    thread, 2 000 measured requests after a 200-request warmup.
    let config = BenchmarkConfig::new(20_000.0, 2_000).with_warmup(200);

    // 4. Run and print the report.
    let report = runner::execute(&app, &mut clients, &config, None)?;
    println!("{report}");
    println!(
        "\nqueuing made up {:.0}% of the mean sojourn time at this load",
        100.0 * report.queue.mean_ns / report.sojourn.mean_ns.max(1.0)
    );
    Ok(())
}
