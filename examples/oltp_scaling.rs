//! Why doesn't silo scale? — the paper's §VII case study as a runnable example.
//!
//! silo's tail latency improves less than expected when worker threads are added.  This
//! example reproduces the diagnosis: it measures silo's 95th-percentile latency with 1
//! and 4 threads in the discrete-event simulator, first with a realistic memory system
//! and then with an idealized one (zero-latency DRAM).  Because idealizing the memory
//! system barely helps, the bottleneck must be synchronization — exactly the paper's
//! conclusion for silo.
//!
//! ```text
//! cargo run --release --example oltp_scaling
//! ```

use std::sync::Arc;
use tailbench::apps::oltp::{OltpApp, TpccRequestFactory};
use tailbench::core::config::{BenchmarkConfig, HarnessMode};
use tailbench::core::{runner, HarnessError, ServerApp};
use tailbench::simarch::{MachineConfig, SystemModel};
use tailbench::workloads::tpcc::TpccConfig;

fn main() -> Result<(), HarnessError> {
    let workload = TpccConfig {
        warehouses: 1,
        items: 10_000,
        customers_per_district: 300,
        remote_line_fraction: 0.01,
    };
    let app: Arc<dyn ServerApp> = Arc::new(OltpApp::silo(workload.clone()));

    let mut factory = TpccRequestFactory::new(&workload, 3);
    let capacity = runner::measure_capacity(&app, &mut factory, 1, 1_000);
    println!("silo single-thread capacity: {capacity:.0} txns/s");

    let realistic = SystemModel::new(MachineConfig::table_ii());
    let idealized = SystemModel::idealized_memory(MachineConfig::table_ii());

    println!(
        "\n{:>22} {:>10} {:>14} {:>14}",
        "memory system", "threads", "offered QPS", "p95"
    );
    for (label, model) in [
        ("realistic", &realistic),
        ("idealized (0-cycle DRAM)", &idealized),
    ] {
        for threads in [1usize, 4] {
            // Keep the per-thread load at 70% of single-thread capacity.
            let qps = capacity * 0.7 * threads as f64;
            let mut factory = TpccRequestFactory::new(&workload, 3);
            let report = runner::execute(
                &app,
                &mut factory,
                &BenchmarkConfig::new(qps, 3_000)
                    .with_warmup(300)
                    .with_threads(threads)
                    .with_mode(HarnessMode::Simulated),
                Some(model),
            )?;
            println!(
                "{:>22} {:>10} {:>14.0} {:>11.2} ms",
                label,
                threads,
                qps,
                report.sojourn.p95_ms()
            );
        }
    }
    println!(
        "\nIdealizing the memory system barely changes silo's 4-thread tail latency, so its\n\
         sublinear scaling is caused by synchronization in the commit protocol, not by\n\
         cache or memory-bandwidth contention (paper Fig. 8, right)."
    );
    Ok(())
}
