//! A web-search leaf node under increasing load.
//!
//! This is the scenario the paper's introduction motivates: a search leaf node must keep
//! its 99th-percentile latency at a few milliseconds, which forces it to run well below
//! saturation.  The example sweeps offered load from 10% to 90% of capacity and shows how
//! the tail grows much faster than the mean, then repeats one point over loopback TCP to
//! show the network stack's contribution.
//!
//! ```text
//! cargo run --release --example websearch_leaf
//! ```

use std::sync::Arc;
use tailbench::apps::search::{SearchRequestFactory, XapianApp};
use tailbench::core::config::{BenchmarkConfig, HarnessMode};
use tailbench::core::{runner, HarnessError, ServerApp};
use tailbench::workloads::text::{CorpusConfig, SyntheticCorpus};

fn main() -> Result<(), HarnessError> {
    let corpus = SyntheticCorpus::generate(CorpusConfig {
        documents: 5_000,
        vocabulary: 15_000,
        ..CorpusConfig::default()
    });
    let app: Arc<dyn ServerApp> = Arc::new(XapianApp::from_corpus(&corpus));

    // Estimate the leaf's capacity with one worker thread.
    let mut factory = SearchRequestFactory::new(&corpus, 7);
    let capacity = runner::measure_capacity(&app, &mut factory, 1, 500);
    println!("estimated single-thread capacity: {capacity:.0} queries/s\n");
    println!("{:>6} {:>12} {:>12} {:>12}", "load", "mean", "p95", "p99");

    for fraction in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut factory = SearchRequestFactory::new(&corpus, 7);
        let report = runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(capacity * fraction, 1_000).with_warmup(100),
            None,
        )?;
        println!(
            "{:>5.0}% {:>9.2} ms {:>9.2} ms {:>9.2} ms",
            fraction * 100.0,
            report.sojourn.mean_ms(),
            report.sojourn.p95_ms(),
            report.sojourn.p99_ms()
        );
    }

    // The same 50%-load point measured over loopback TCP: the network stack's overhead
    // is visible but small relative to xapian's millisecond-scale requests (paper §VI-B).
    let mut factory = SearchRequestFactory::new(&corpus, 7);
    let loopback = runner::execute(
        &app,
        &mut factory,
        &BenchmarkConfig::new(capacity * 0.5, 1_000)
            .with_warmup(100)
            .with_mode(HarnessMode::loopback()),
        None,
    )?;
    println!(
        "\nloopback TCP at 50% load: p95 = {:.2} ms (integrated measurement above: compare the 50% row)",
        loopback.sojourn.p95_ms()
    );
    Ok(())
}
