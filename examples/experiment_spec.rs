//! Builder → spec-file → CLI equivalence for the fig9 fan-out sweep.
//!
//! The same experiment can be expressed three ways, and all three are the *same
//! object*:
//!
//! 1. **builder** — fluent `ExperimentSpec` construction in Rust (this example);
//! 2. **spec file** — `spec.to_json_string()` written to disk (round-trips exactly);
//! 3. **CLI** — `tailbench run <file>` / `tailbench preset fig9`.
//!
//! Run with `cargo run --release --example experiment_spec`.

use tailbench::experiment::{
    Experiment, ExperimentSpec, FanoutSpec, LoadSpec, ModeSpec, Scale, SweepAxis, TopologySpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Builder: a broadcast xapian cluster swept over shard counts — the fig9
    //    experiment, scaled down to run in seconds.
    let spec = ExperimentSpec::new("fanout-sweep", "xapian")
        .with_scale(Scale::Smoke)
        .with_mode(ModeSpec::Simulated)
        .with_topology(TopologySpec::sharded(1).with_fanout(FanoutSpec::Broadcast))
        .with_load(LoadSpec::FractionOfCapacity(0.7))
        .with_requests(150)
        .with_axis(SweepAxis::Shards(vec![1, 2, 4]));

    // 2. Spec file: serialize, reload, and check it is the identical experiment.
    let text = spec.to_json_string();
    let path = std::env::temp_dir().join("tailbench_fanout_sweep.json");
    std::fs::write(&path, &text)?;
    let reloaded = ExperimentSpec::from_json_str(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded, spec, "a spec file round-trips exactly");
    println!("spec written to {} :\n{text}", path.display());

    // 3. Run it (the CLI would do exactly this for `tailbench run <file>`).
    let output = Experiment::new(reloaded).run()?;
    print!("{}", output.to_markdown());
    for point in &output.points {
        let cluster = point.report.cluster().expect("topology => cluster report");
        println!(
            "shards={:2}  cluster p99 = {:9} ns  amplification = {:.2}x",
            cluster.shards,
            cluster.cluster.sojourn.p99_ns,
            cluster.p99_amplification(),
        );
    }

    println!(
        "\nSame experiment from the shell:\n  \
         cargo run --release --bin tailbench -- run {}\n  \
         cargo run --release --bin tailbench -- preset fig9   # the full-size version",
        path.display()
    );
    Ok(())
}
