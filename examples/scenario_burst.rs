//! A scenario-engine walkthrough: bursty multi-tenant load plus a transient fault.
//!
//! Builds a declarative `Scenario` — steady load, then square-wave bursts, then
//! recovery, shared by an interactive tenant (YCSB-B point reads, 75% of the rate) and
//! a batch tenant (YCSB-E scans, 25%) — injects a 5x slowdown window in the middle of
//! the run, and plays it against masstree under the discrete-event simulated harness.
//! The report breaks the sojourn tail down per phase and per class, so you can see the
//! burst amplify the tail and the batch tenant ride on the interactive tenant's p99.
//!
//! ```text
//! cargo run --release --example scenario_burst
//! ```

use std::sync::Arc;
use std::time::Duration;
use tailbench::apps::kvstore::{MasstreeApp, YcsbRequestFactory};
use tailbench::core::app::RequestFactory;
use tailbench::core::config::HarnessMode;
use tailbench::core::interference::InterferencePlan;
use tailbench::core::{HarnessError, ServerApp};
use tailbench::scenario::{execute_scenario, ClientClass, LoadPhase, Scenario};
use tailbench::simarch::SystemModel;
use tailbench::workloads::ycsb::{OpMix, YcsbConfig};

fn main() -> Result<(), HarnessError> {
    let interactive = YcsbConfig {
        records: 100_000,
        mix: OpMix::YCSB_B,
        ..YcsbConfig::default()
    };
    let batch = YcsbConfig {
        records: 100_000,
        mix: OpMix::YCSB_E,
        ..YcsbConfig::default()
    };
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&interactive));
    let model = SystemModel::default();

    // ~0.9 s of virtual time: 0.3 s steady, 0.3 s of 5x bursts, 0.3 s recovery, with a
    // 5x service-time slowdown injected between 0.45 s and 0.55 s.
    let steady = 120_000.0;
    let scenario = Scenario::new(
        "burst-with-fault",
        vec![
            LoadPhase::constant(steady, Duration::from_millis(300)),
            LoadPhase::burst(
                steady,
                5.0 * steady,
                Duration::from_millis(60),
                0.4,
                Duration::from_millis(300),
            ),
            LoadPhase::constant(steady, Duration::from_millis(300)),
        ],
    )
    .with_classes(vec![
        ClientClass::new("interactive", 0.75),
        ClientClass::new("batch", 0.25),
    ])
    .with_interference(InterferencePlan::none().slow_instance(0, 450_000_000, 550_000_000, 5.0));

    let factories: Vec<Box<dyn RequestFactory>> = vec![
        Box::new(YcsbRequestFactory::new(&interactive, 42)),
        Box::new(YcsbRequestFactory::new(&batch, 43)),
    ];
    let report = execute_scenario(
        &app,
        factories,
        &scenario,
        HarnessMode::Simulated,
        1,
        42,
        Some(&model),
    )?;

    println!("{report}");
    println!("\nPer-class and per-phase breakdown:\n");
    print!("{}", report.breakdown_markdown());
    println!(
        "The burst phase (and the fault window inside it) carries the whole tail; the\n\
         steady phases barely register.  Swap `HarnessMode::Simulated` for `Integrated`\n\
         or `Loopback {{ connections: 8 }}` to replay the identical schedule in real time."
    );
    Ok(())
}
