//! Offline shim of the `rand` 0.8 API surface used by TailBench-RS.
//!
//! The build environment has no access to crates.io, so this in-tree crate provides the
//! subset of `rand` the suite actually calls: [`rngs::StdRng`] (a deterministic
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`.  The streams are *not* bit-compatible with
//! upstream `rand`; the suite only requires determinism for a fixed seed, which this
//! shim guarantees.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be instantiated from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64, used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Commonly used pre-packaged generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The suite's standard generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Fast, 256 bits of state, passes BigCrush; more than adequate for workload
    /// generation.  Deterministic for a given seed, but not stream-compatible with
    /// upstream `rand::rngs::StdRng` (which is ChaCha12-based).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = widening_reduce(rng.next_u64(), span);
                (low as i128 + offset as i128) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = widening_reduce(rng.next_u64(), span);
                (low as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` via 128-bit multiply-shift (Lemire reduction
/// without the rejection step; bias is < 2^-64 per draw, irrelevant for benchmarking).
fn widening_reduce(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for u64/i64 ranges wider than 2^64 - 1 items.
        return word as u128 % span;
    }
    (word as u128 * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($ty:ty => $unit:path),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + $unit(rng) * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                low + $unit(rng) * (high - low)
            }
        }
    )*};
}

/// Uniform `f64` in `[0, 1)` from the high 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` from the high 24 bits.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_sample_uniform_float!(f64 => unit_f64, f32 => unit_f32);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] from the standard distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution (`f64`/`f32` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_extremes_of_inclusive_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..=3);
            seen[v] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let fraction = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
