//! Offline shim of the `parking_lot` API surface used by TailBench-RS.
//!
//! Backed by `std::sync` primitives with parking_lot's ergonomics: `lock()`, `read()`
//! and `write()` return guards directly instead of `Result`s.  Poisoning is unwound by
//! recovering the inner guard — parking_lot locks are not poisonable, and the suite's
//! critical sections hold plain data, so continuing after a panicked holder matches
//! upstream semantics.  Performance differs from real parking_lot (no adaptive spinning)
//! but every use in the suite is correctness-, not throughput-, critical; swap the real
//! crate back in when the build environment regains registry access.

#![deny(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()`/`write()` signatures.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8_000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let lock = RwLock::new(7);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *lock.write() = 9;
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }
}
