//! Offline shim of the Criterion benchmarking API used by TailBench-RS.
//!
//! Mirrors the upstream behaviours the suite relies on:
//!
//! * `cargo bench` (cargo passes `--bench` to the target) runs a warm-up followed by a
//!   timed measurement and prints mean time per iteration;
//! * `cargo test` (no `--bench` flag) runs every benchmark closure **once** so bench
//!   targets are continuously compile- and smoke-checked without paying measurement
//!   time, exactly like upstream Criterion's test mode.
//!
//! No statistics, plotting or comparison machinery — swap the real crate back in when
//! the build environment regains registry access.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement, the Criterion default.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Top-level benchmark driver, handed to every function registered with
/// [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench` under `cargo bench`; under
        // `cargo test` the flag is absent and we only smoke-run each closure once.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("group: {name}");
        let measure = self.measure;
        BenchmarkGroup {
            _criterion: self,
            measure,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            _strategy: measurement::WallTime,
        }
    }
}

/// A group of benchmarks sharing sample-count and timing settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    measure: bool,
    warm_up: Duration,
    measurement: Duration,
    _strategy: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the target number of samples (accepted for API compatibility; the shim
    /// sizes its measurement by time, not sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets how long to measure for.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: if self.measure {
                Mode::Measure {
                    warm_up: self.warm_up,
                    measurement: self.measurement,
                }
            } else {
                Mode::TestOnce
            },
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!("  {id}: {per_iter:.1} ns/iter ({iters} iterations)");
            }
            None => println!("  {id}: ok (test mode, 1 iteration)"),
        }
        self
    }

    /// Finishes the group (upstream emits summary artifacts here; the shim prints
    /// everything inline).
    pub fn finish(self) {}
}

enum Mode {
    TestOnce,
    Measure {
        warm_up: Duration,
        measurement: Duration,
    },
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean wall-clock time per call.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::TestOnce => {
                std::hint::black_box(routine());
            }
            Mode::Measure {
                warm_up,
                measurement,
            } => {
                // Warm-up: establish caches/branch predictors and estimate cost.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warm_up {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                let target_iters =
                    ((measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 50_000_000);

                let start = Instant::now();
                for _ in 0..target_iters {
                    std::hint::black_box(routine());
                }
                self.report = Some((target_iters, start.elapsed()));
            }
        }
    }
}

/// Expands to a function running each listed benchmark against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs every listed [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_closure_once() {
        let mut criterion = Criterion { measure: false };
        let mut group = criterion.benchmark_group("shim");
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_reports_iterations() {
        let mut criterion = Criterion { measure: true };
        let mut group = criterion.benchmark_group("shim");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 1, "measurement mode must iterate ({calls})");
    }
}
