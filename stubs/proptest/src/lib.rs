//! Offline shim of the `proptest` API surface used by TailBench-RS property tests.
//!
//! Provides deterministic random-input testing with the upstream macro syntax
//! (`proptest!`, `prop_assert!`, `prop_oneof!`, `prop::collection::vec`, `any::<T>()`,
//! ranges and tuples as strategies, `.prop_map`).  Differences from upstream:
//!
//! * generation is seeded deterministically per test function — failures reproduce on
//!   every run without persistence files;
//! * **no shrinking**: a failing case reports the failed assertion but not a minimal
//!   counterexample;
//! * the default case count is 64 (upstream: 256) to keep debug-mode `cargo test` fast;
//!   `ProptestConfig::with_cases` overrides it as usual.

#![deny(missing_docs)]

// The `proptest!` macro expands inside caller crates that need not depend on `rand`
// themselves; route every rand path in macro output through this re-export.
#[doc(hidden)]
pub use rand as __rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives, built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `branches` (must be non-empty).
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let pick = rng.gen_range(0..self.branches.len());
            self.branches[pick].generate(rng)
        }
    }

    impl<T: rand::SampleUniform + 'static> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + 'static> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Values generatable by [`any`](crate::arbitrary::any).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    let word: u64 = rng.gen();
                    word as $ty
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn any_strategy<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `any::<T>()` entry point.
pub mod arbitrary {
    use super::strategy::{any_strategy, Any, Arbitrary};

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        any_strategy::<T>()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s with length drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "proptest::collection::vec: empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Subset of upstream `ProptestConfig`: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps debug-mode `cargo test` quick while
            // still exercising each property broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Alias letting tests write `prop::collection::vec(...)` as with upstream.
    pub use crate as prop;
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) { body } }`.
///
/// Each property runs `ProptestConfig::default().cases` times (or the count given via
/// `#![proptest_config(...)]`) with deterministically seeded inputs.  `prop_assert!`
/// family macros abort the *case* with a message; any failure panics the test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed: the property name hashed via FNV-1a.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in stringify!($name).bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            let mut rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {case} of {} failed: {message}", stringify!($name));
                }
            }
        }
    )*};
}

/// Fails the current proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current proptest case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            ));
        }
    }};
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_inputs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = prop::collection::vec(0u64..100, 1..10);
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #[test]
        fn generated_values_respect_strategies(
            x in 10u32..20,
            v in prop::collection::vec(any::<u8>(), 2..5),
            flag in any::<bool>(),
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(matches!(v.len(), 2..=4));
            prop_assert!([true, false].contains(&flag));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_override_is_accepted(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v % 2 == 0 && v < 20 || (101..=110).contains(&v));
        }
    }
}
