//! Derive-macro half of the in-tree serde shim.
//!
//! The suite derives `Serialize`/`Deserialize` on plain data structs so that reports can
//! one day be exported; nothing in-tree serializes yet, so these derives expand to empty
//! marker impls of the shim traits in `stubs/serde`.  No `syn`/`quote` — the environment
//! is offline, so the type name is recovered with a small hand-rolled token scan.

#![deny(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct`/`enum`/`union` a derive was applied to.
///
/// Returns `None` (derive expands to nothing) when the item is generic — the suite only
/// derives on concrete types, and a marker impl for a generic item would need the full
/// generics machinery.
fn item_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            // Skip outer attributes (`#[...]`, including doc comments).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _bracket_group = tokens.next();
            }
            TokenTree::Ident(ident) => {
                let kw = ident.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        let generic = matches!(
                            tokens.peek(),
                            Some(TokenTree::Punct(p)) if p.as_char() == '<'
                        );
                        if generic {
                            return None;
                        }
                        return Some(name.to_string());
                    }
                    return None;
                }
                // `pub`, `pub(crate)`-style visibility idents fall through.
            }
            _ => {}
        }
    }
    None
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .expect("marker impl must parse"),
        None => TokenStream::new(),
    }
}

/// Shim `#[derive(Serialize)]`: expands to `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Shim `#[derive(Deserialize)]`: expands to `impl ::serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
