//! Offline shim of the `crossbeam::channel` API surface used by TailBench-RS.
//!
//! Provides an unbounded MPMC channel with cloneable senders *and* receivers (the part
//! of crossbeam the std `mpsc` channel cannot substitute for: the harness hands one
//! receiver to every worker thread).  Backed by a `Mutex<VecDeque>` + `Condvar`; this is
//! slower than crossbeam's lock-free queue under heavy contention, but the harness
//! measures the application around the channel, not the channel itself, and the
//! `queue_push_pop` Criterion bench tracks exactly this overhead so the real crate can
//! be swapped back in with evidence when registry access returns.

#![deny(missing_docs)]

/// Multi-producer multi-consumer channels (shim of `crossbeam-channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every [`Receiver`] has been dropped.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and every
    /// [`Sender`] has been dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver.
        ///
        /// Fails only when every receiver has been dropped, handing the value back.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered in the channel.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the channel currently buffers no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so recv() can observe
                // disconnection.  Taking the queue lock first serializes with a
                // receiver that is between its sender-count check and parking in
                // wait(); without it the notification could fire in that window and
                // be lost, leaving the receiver asleep forever.
                drop(self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()));
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty.
        ///
        /// Fails once the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered in the channel.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the channel currently buffers no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that yields until every sender has been dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_within_a_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let waiter = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(waiter.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_partition_the_stream() {
        let (tx, rx_a) = unbounded();
        let rx_b = rx_a.clone();
        let consume =
            |rx: super::channel::Receiver<u64>| thread::spawn(move || rx.iter().sum::<u64>());
        let a = consume(rx_a);
        let b = consume(rx_b);
        let total: u64 = (1..=1_000).sum();
        for i in 1..=1_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(a.join().unwrap() + b.join().unwrap(), total);
    }

    #[test]
    fn sender_drop_wakeup_is_not_lost() {
        // Regression: notify_all in Sender::drop must serialize with a receiver that
        // is between its sender-count check and parking, or the receiver sleeps
        // forever.  Race many drop-vs-recv pairs and require every receiver to wake.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        for _ in 0..200 {
            let (tx, rx) = unbounded::<u8>();
            let done = done_tx.clone();
            thread::spawn(move || {
                let _ = rx.recv();
                done.send(()).unwrap();
            });
            drop(tx);
        }
        for _ in 0..200 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("receiver woke after last sender dropped");
        }
    }

    #[test]
    fn send_fails_once_all_receivers_are_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
