//! Offline shim of the `serde` names used by TailBench-RS.
//!
//! The suite derives `Serialize`/`Deserialize` on its report and configuration structs;
//! nothing in-tree performs serialization yet.  This crate supplies marker traits and
//! re-exports the shim derives so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged, and the real `serde` can be
//! swapped back in (it is API-compatible for everything the suite uses) the moment the
//! build environment regains registry access.

#![deny(missing_docs)]

/// Marker for types that would be serializable with upstream serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with upstream serde.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
