//! The concurrent key-value store.
//!
//! masstree serves GET/PUT/SCAN operations from many cores concurrently.  Our substitute
//! partitions the key space into range shards, each protected by a reader-writer lock
//! over a [`BPlusTree`](crate::bptree::BPlusTree): reads proceed concurrently within and
//! across shards, writes serialize only within their shard.  Range partitioning (rather
//! than hash partitioning) keeps scans ordered and mostly shard-local.

use crate::bptree::BPlusTree;
use parking_lot::RwLock;

/// A sharded, ordered, concurrent key-value store mapping `u64` keys to byte values.
#[derive(Debug)]
pub struct KvStore {
    shards: Vec<RwLock<BPlusTree<u64, Vec<u8>>>>,
    /// Size of each contiguous key range assigned to one shard.
    range_per_shard: u64,
}

impl KvStore {
    /// Creates a store with `shards` range-partitions covering keys `0..capacity_hint`.
    /// Keys at or beyond `capacity_hint` all land in the last shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: usize, capacity_hint: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        let range_per_shard = (capacity_hint / shards as u64).max(1);
        KvStore {
            shards: (0..shards).map(|_| RwLock::new(BPlusTree::new())).collect(),
            range_per_shard,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: u64) -> usize {
        ((key / self.range_per_shard) as usize).min(self.shards.len() - 1)
    }

    /// Inserts or overwrites a key. Returns `true` if the key already existed.
    pub fn put(&self, key: u64, value: Vec<u8>) -> bool {
        self.shards[self.shard_for(key)]
            .write()
            .insert(key, value)
            .is_some()
    }

    /// Reads a key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.shards[self.shard_for(key)].read().get(&key).cloned()
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&self, key: u64) -> Option<Vec<u8>> {
        self.shards[self.shard_for(key)].write().remove(&key)
    }

    /// Returns up to `limit` entries with keys `>= start` in ascending order, possibly
    /// spanning multiple shards.
    #[must_use]
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::with_capacity(limit.min(128));
        let mut shard = self.shard_for(start);
        let mut cursor = start;
        while out.len() < limit && shard < self.shards.len() {
            let chunk = self.shards[shard].read().scan(&cursor, limit - out.len());
            out.extend(chunk);
            shard += 1;
            cursor = (shard as u64) * self.range_per_shard;
        }
        out
    }

    /// Total number of entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` if the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum B+-tree depth across shards (a proxy for per-request pointer chases).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().depth())
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_remove_across_shards() {
        let store = KvStore::new(8, 1_000);
        for k in 0..1_000u64 {
            assert!(!store.put(k, vec![k as u8]));
        }
        assert_eq!(store.len(), 1_000);
        assert_eq!(store.get(999), Some(vec![231]));
        assert!(store.put(999, vec![1, 2, 3]));
        assert_eq!(store.get(999), Some(vec![1, 2, 3]));
        assert_eq!(store.remove(500), Some(vec![244]));
        assert_eq!(store.get(500), None);
        assert_eq!(store.len(), 999);
    }

    #[test]
    fn scan_crosses_shard_boundaries_in_order() {
        let store = KvStore::new(4, 400);
        for k in 0..400u64 {
            store.put(k, vec![(k % 251) as u8]);
        }
        // A scan starting near the end of shard 0 (keys 0..100) must continue into shard 1.
        let result = store.scan(95, 20);
        assert_eq!(result.len(), 20);
        let keys: Vec<u64> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (95..115).collect::<Vec<u64>>());
    }

    #[test]
    fn keys_beyond_capacity_hint_land_in_last_shard() {
        let store = KvStore::new(4, 100);
        store.put(1_000_000, vec![9]);
        assert_eq!(store.get(1_000_000), Some(vec![9]));
        assert_eq!(store.shard_for(1_000_000), 3);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let store = Arc::new(KvStore::new(16, 10_000));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        let key = t * 2_500 + i;
                        store.put(key, key.to_le_bytes().to_vec());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(store.len(), 10_000);
        for key in [0u64, 2_499, 2_500, 9_999] {
            assert_eq!(store.get(key), Some(key.to_le_bytes().to_vec()));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = KvStore::new(0, 100);
    }
}
