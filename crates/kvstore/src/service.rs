//! masstree as a TailBench application.
//!
//! [`MasstreeApp`] wires the concurrent store into the harness' [`ServerApp`] interface,
//! and [`YcsbRequestFactory`] produces the mycsb-a request stream (50% GETs / 50% PUTs
//! with Zipfian key popularity, paper Table I).  Requests and responses use a compact
//! binary encoding so the same payloads flow unchanged through the integrated, loopback
//! and networked configurations.

use crate::store::KvStore;
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};
use tailbench_workloads::ycsb::{KvOp, YcsbConfig, YcsbGenerator};

/// Wire encoding of key-value operations.
pub mod codec {
    use tailbench_workloads::ycsb::KvOp;

    /// Operation tags.
    const OP_GET: u8 = 0;
    const OP_PUT: u8 = 1;
    const OP_SCAN: u8 = 2;

    /// Encodes an operation into a request payload.
    #[must_use]
    pub fn encode(op: &KvOp) -> Vec<u8> {
        match op {
            KvOp::Get { key } => {
                let mut out = Vec::with_capacity(9);
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
                out
            }
            KvOp::Put { key, value } => {
                let mut out = Vec::with_capacity(13 + value.len());
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
                out
            }
            KvOp::Scan { key, count } => {
                let mut out = Vec::with_capacity(13);
                out.push(OP_SCAN);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(*count as u32).to_le_bytes());
                out
            }
        }
    }

    /// Decodes a request payload. Returns `None` for malformed payloads.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<KvOp> {
        let (&tag, rest) = payload.split_first()?;
        if rest.len() < 8 {
            return None;
        }
        let key = u64::from_le_bytes(rest[..8].try_into().ok()?);
        let rest = &rest[8..];
        match tag {
            OP_GET => Some(KvOp::Get { key }),
            OP_PUT => {
                if rest.len() < 4 {
                    return None;
                }
                let len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                let value = rest.get(4..4 + len)?.to_vec();
                Some(KvOp::Put { key, value })
            }
            OP_SCAN => {
                if rest.len() < 4 {
                    return None;
                }
                let count = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
                Some(KvOp::Scan { key, count })
            }
            _ => None,
        }
    }
}

/// The masstree-substitute server application.
#[derive(Debug)]
pub struct MasstreeApp {
    store: KvStore,
    value_size: usize,
}

impl MasstreeApp {
    /// Builds the store and preloads it with the workload's records.
    #[must_use]
    pub fn new(config: &YcsbConfig) -> Self {
        let store = KvStore::new(16, config.records);
        let generator = YcsbGenerator::new(config.clone());
        for (key, value) in generator.load_keys() {
            store.put(key, value);
        }
        MasstreeApp {
            store,
            value_size: config.value_size,
        }
    }

    /// Direct access to the underlying store (used by tests and examples).
    #[must_use]
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    fn work_profile(&self, op: &KvOp, touched: usize) -> WorkProfile {
        let depth = self.store.max_depth() as u64;
        // Each tree level costs a node search (~32 key comparisons) plus a couple of
        // cache lines; values add copy work.
        let (instructions, bytes) = match op {
            KvOp::Get { .. } => (800 + 120 * depth, 64 * depth + self.value_size as u64),
            KvOp::Put { .. } => (1_100 + 140 * depth, 128 * depth + self.value_size as u64),
            KvOp::Scan { .. } => (
                800 + 300 * touched as u64,
                64 * depth + (touched * self.value_size) as u64,
            ),
        };
        WorkProfile {
            instructions,
            mem_reads: bytes / 16,
            mem_writes: if matches!(op, KvOp::Put { .. }) {
                bytes / 32
            } else {
                bytes / 128
            },
            footprint_bytes: bytes,
            locality: 0.75,
            // masstree scales near-linearly: only the brief per-shard write lock is a
            // critical section.
            critical_fraction: if matches!(op, KvOp::Put { .. }) {
                0.04
            } else {
                0.01
            },
        }
    }
}

impl ServerApp for MasstreeApp {
    fn name(&self) -> &str {
        "masstree"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(op) = codec::decode(payload) else {
            return Response::new(vec![0xFF]);
        };
        let (result, touched) = match &op {
            KvOp::Get { key } => match self.store.get(*key) {
                Some(value) => {
                    let mut out = vec![1u8];
                    out.extend_from_slice(&value);
                    (out, 1)
                }
                None => (vec![0u8], 1),
            },
            KvOp::Put { key, value } => {
                let existed = self.store.put(*key, value.clone());
                (vec![u8::from(existed)], 1)
            }
            KvOp::Scan { key, count } => {
                let entries = self.store.scan(*key, *count);
                let mut out = Vec::with_capacity(4 + entries.len() * 8);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, _) in &entries {
                    out.extend_from_slice(&k.to_le_bytes());
                }
                let n = entries.len().max(1);
                (out, n)
            }
        };
        let work = self.work_profile(&op, touched);
        Response::with_work(result, work)
    }
}

/// Produces the mycsb-a request stream.
#[derive(Debug)]
pub struct YcsbRequestFactory {
    generator: YcsbGenerator,
    rng: SuiteRng,
}

impl YcsbRequestFactory {
    /// Creates a factory for the given workload configuration and seed.
    #[must_use]
    pub fn new(config: &YcsbConfig, seed: u64) -> Self {
        YcsbRequestFactory {
            generator: YcsbGenerator::new(config.clone()),
            rng: seeded_rng(seed, 100),
        }
    }
}

impl RequestFactory for YcsbRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode(&self.generator.next_op(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_app() -> MasstreeApp {
        MasstreeApp::new(&YcsbConfig::small())
    }

    #[test]
    fn codec_round_trips_all_ops() {
        let ops = [
            KvOp::Get { key: 42 },
            KvOp::Put {
                key: 7,
                value: vec![1, 2, 3],
            },
            KvOp::Scan {
                key: 100,
                count: 25,
            },
        ];
        for op in ops {
            assert_eq!(codec::decode(&codec::encode(&op)), Some(op));
        }
        assert_eq!(codec::decode(&[]), None);
        assert_eq!(codec::decode(&[9, 0, 0]), None);
    }

    #[test]
    fn app_serves_gets_for_preloaded_keys() {
        let app = small_app();
        let resp = app.handle(&codec::encode(&KvOp::Get { key: 5 }));
        assert_eq!(resp.payload[0], 1, "preloaded key must be found");
        assert!(resp.payload.len() > 1);
        assert!(resp.work.instructions > 0);
    }

    #[test]
    fn app_applies_puts() {
        let app = small_app();
        let put = KvOp::Put {
            key: 3,
            value: vec![9, 9, 9],
        };
        let resp = app.handle(&codec::encode(&put));
        assert_eq!(
            resp.payload,
            vec![1],
            "key 3 was preloaded, so put overwrites"
        );
        let get = app.handle(&codec::encode(&KvOp::Get { key: 3 }));
        assert_eq!(&get.payload[1..], &[9, 9, 9]);
    }

    #[test]
    fn app_serves_scans() {
        let app = small_app();
        let resp = app.handle(&codec::encode(&KvOp::Scan { key: 0, count: 10 }));
        let n = u32::from_le_bytes(resp.payload[..4].try_into().unwrap());
        assert_eq!(n, 10);
    }

    #[test]
    fn malformed_payload_is_rejected_gracefully() {
        let app = small_app();
        let resp = app.handle(&[42, 1, 2]);
        assert_eq!(resp.payload, vec![0xFF]);
    }

    #[test]
    fn factory_produces_decodable_requests() {
        let mut f = YcsbRequestFactory::new(&YcsbConfig::small(), 11);
        for _ in 0..200 {
            let payload = f.next_request();
            assert!(codec::decode(&payload).is_some());
        }
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let config = YcsbConfig::small();
        let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&config));
        let mut factory = YcsbRequestFactory::new(&config, 3);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(2_000.0, 300).with_warmup(30),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "masstree");
        assert!(report.requests > 250);
        assert!(report.service.p95_ns > 0);
    }
}
