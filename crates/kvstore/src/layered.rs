//! A Masstree-style layered index for byte-string keys.
//!
//! Masstree's key organization is a *trie of B+-trees*: each layer indexes an 8-byte
//! slice of the key, and keys longer than 8 bytes descend into a child tree for the next
//! slice.  This keeps comparisons cheap (fixed-width integer compares) regardless of key
//! length.  [`LayeredTree`] reproduces that structure on top of
//! [`BPlusTree`](crate::bptree::BPlusTree).

use crate::bptree::BPlusTree;

/// One entry of a layer: either a value whose key ends at this layer, or a child layer
/// for keys that continue, or both (a key can be a strict prefix of another).
#[derive(Debug, Clone)]
struct LayerEntry<V> {
    value: Option<V>,
    child: Option<Box<LayeredTree<V>>>,
}

impl<V> Default for LayerEntry<V> {
    fn default() -> Self {
        LayerEntry {
            value: None,
            child: None,
        }
    }
}

/// A trie of B+-trees keyed by 8-byte key slices, as in Masstree.
///
/// Each layer is keyed by `(slice, slice_len)` so that keys which are zero-padded
/// prefixes of each other (e.g. `""`, `"\0"`, `"\0\0"`) remain distinct, mirroring
/// Masstree's per-slice key-length tracking.
#[derive(Debug, Clone, Default)]
pub struct LayeredTree<V> {
    layer: BPlusTree<(u64, u8), LayerEntry<V>>,
    len: usize,
}

/// Splits a byte key into its first 8-byte slice (big-endian padded with zeros, tagged
/// with the number of meaningful bytes) and the remaining suffix.
fn split_key(key: &[u8]) -> ((u64, u8), &[u8]) {
    let mut slice = [0u8; 8];
    let take = key.len().min(8);
    slice[..take].copy_from_slice(&key[..take]);
    ((u64::from_be_bytes(slice), take as u8), &key[take..])
}

impl<V: Clone> LayeredTree<V> {
    /// Creates an empty layered tree.
    #[must_use]
    pub fn new() -> Self {
        LayeredTree {
            layer: BPlusTree::new(),
            len: 0,
        }
    }

    /// Number of keys stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no keys are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a key/value pair, returning the previous value for the key if any.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let (slice, rest) = split_key(key);
        // Fetch-or-create the entry for this slice.
        let mut entry = self.layer.get(&slice).cloned().unwrap_or_default();
        let old = if rest.is_empty() && key.len() <= 8 {
            entry.value.replace(value)
        } else {
            let child = entry
                .child
                .get_or_insert_with(|| Box::new(LayeredTree::new()));
            child.insert(rest, value)
        };
        self.layer.insert(slice, entry);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<V> {
        let (slice, rest) = split_key(key);
        let entry = self.layer.get(&slice)?;
        if rest.is_empty() && key.len() <= 8 {
            entry.value.clone()
        } else {
            entry.child.as_ref()?.get(rest)
        }
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let (slice, rest) = split_key(key);
        let mut entry = self.layer.get(&slice)?.clone();
        let old = if rest.is_empty() && key.len() <= 8 {
            entry.value.take()
        } else {
            entry.child.as_mut()?.remove(rest)
        };
        if old.is_some() {
            self.len -= 1;
            self.layer.insert(slice, entry);
        }
        old
    }

    /// Number of trie layers along the path of `key` (1 for short keys).
    #[must_use]
    pub fn layers_for(&self, key: &[u8]) -> usize {
        1 + key.len().saturating_sub(1) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_keys_round_trip() {
        let mut t = LayeredTree::new();
        assert!(t.insert(b"alpha", 1).is_none());
        assert!(t.insert(b"beta", 2).is_none());
        assert_eq!(t.get(b"alpha"), Some(1));
        assert_eq!(t.get(b"beta"), Some(2));
        assert_eq!(t.get(b"gamma"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn long_keys_descend_into_child_layers() {
        let mut t = LayeredTree::new();
        let key = b"0123456789abcdefXYZ"; // 19 bytes -> 3 layers of 8 bytes
        assert_eq!(t.layers_for(key), 3);
        assert!(t.insert(key, 99).is_none());
        assert_eq!(t.get(key), Some(99));
        // A key sharing the first 8 bytes but diverging later is distinct.
        let other = b"a-very-lXng-key";
        assert!(t.insert(other, 7).is_none());
        assert_eq!(t.get(other), Some(7));
        assert_eq!(t.get(key), Some(99));
        assert_eq!(t.len(), 2);
        // Zero-padded prefixes stay distinct thanks to per-slice length tagging.
        let mut p = LayeredTree::new();
        p.insert(b"", 0);
        p.insert(&[0u8], 1);
        p.insert(&[0u8, 0u8], 2);
        assert_eq!(p.get(b""), Some(0));
        assert_eq!(p.get(&[0u8]), Some(1));
        assert_eq!(p.get(&[0u8, 0u8]), Some(2));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut t = LayeredTree::new();
        t.insert(b"12345678", 1); // exactly one slice
        t.insert(b"1234567890", 2); // same first slice, continues
        assert_eq!(t.get(b"12345678"), Some(1));
        assert_eq!(t.get(b"1234567890"), Some(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_and_remove() {
        let mut t = LayeredTree::new();
        assert_eq!(t.insert(b"key-number-one", 1), None);
        assert_eq!(t.insert(b"key-number-one", 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(b"key-number-one"), Some(2));
        assert_eq!(t.remove(b"key-number-one"), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(b"key-number-one"), None);
    }

    #[test]
    fn empty_key_is_storable() {
        let mut t = LayeredTree::new();
        t.insert(b"", 42);
        assert_eq!(t.get(b""), Some(42));
        assert_eq!(t.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #[test]
        fn behaves_like_hashmap(
            ops in prop::collection::vec(
                (prop::collection::vec(any::<u8>(), 0..24), any::<u32>(), any::<bool>()),
                1..200
            )
        ) {
            let mut tree = LayeredTree::new();
            let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
            for (key, value, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(tree.insert(&key, value), model.insert(key.clone(), value));
                } else {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                }
                prop_assert_eq!(tree.get(&key), model.get(&key).copied());
                prop_assert_eq!(tree.len(), model.len());
            }
        }
    }
}
