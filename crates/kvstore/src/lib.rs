//! The masstree substitute: a fast in-memory ordered key-value store.
//!
//! TailBench's `masstree` benchmark is a highly optimized in-memory key-value store
//! driven by a 50% GET / 50% PUT YCSB mix (paper §III, Table I).  This crate provides a
//! from-scratch Rust substitute with the same architectural ingredients:
//!
//! * [`bptree`] — a wide-node B+-tree, the ordered index at the heart of the store;
//! * [`layered`] — a Masstree-style trie-of-B+-trees for byte-string keys;
//! * [`store`] — a range-sharded, reader-writer-locked concurrent store;
//! * [`service`] — the [`ServerApp`](tailbench_core::app::ServerApp) adapter and the
//!   mycsb-a request factory that plug the store into the TailBench harness.
//!
//! # Example
//!
//! ```
//! use tailbench_kvstore::store::KvStore;
//!
//! let store = KvStore::new(4, 1_000);
//! store.put(17, b"value".to_vec());
//! assert_eq!(store.get(17), Some(b"value".to_vec()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bptree;
pub mod layered;
pub mod service;
pub mod store;

pub use bptree::BPlusTree;
pub use layered::LayeredTree;
pub use service::{MasstreeApp, YcsbRequestFactory};
pub use store::KvStore;
