//! An in-memory B+-tree.
//!
//! masstree's core is a cache-optimized ordered index; this module provides the ordered
//! index underlying our substitute store: a B+-tree with wide nodes (to keep the tree
//! shallow and cache-friendly) and ordered range scans.  Deletions are *lazy*: keys are
//! removed from their leaf without rebalancing, which keeps the implementation simple at
//! the cost of occasionally under-full leaves — a deliberate trade-off documented in
//! DESIGN.md (YCSB-style workloads never shrink the tree).

use std::fmt::Debug;

/// Maximum number of keys a node holds before it splits.
const MAX_KEYS: usize = 31;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Inserts `key`/`value`; returns the previous value if the key existed, and a split
    /// (separator key + new right sibling) if this node overflowed.
    #[allow(clippy::type_complexity)]
    fn insert(&mut self, key: K, value: V) -> (Option<V>, Option<(K, Node<K, V>)>) {
        match self {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut values[i], value);
                    (Some(old), None)
                }
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_values = values.split_off(mid);
                        let sep = right_keys[0].clone();
                        (
                            None,
                            Some((
                                sep,
                                Node::Leaf {
                                    keys: right_keys,
                                    values: right_values,
                                },
                            )),
                        )
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let (old, split) = children[idx].insert(key, value);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // the separator moves up, it does not stay in either node
                        let right_children = children.split_off(mid + 1);
                        return (
                            old,
                            Some((
                                sep_up,
                                Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            )),
                        );
                    }
                }
                (old, None)
            }
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        match self {
            Node::Leaf { keys, values } => keys.binary_search(key).ok().map(|i| &values[i]),
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                children[idx].get(key)
            }
        }
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        match self {
            Node::Leaf { keys, values } => keys.binary_search(key).ok().map(|i| {
                keys.remove(i);
                values.remove(i)
            }),
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                children[idx].remove(key)
            }
        }
    }

    /// Appends up to `limit - out.len()` entries with key >= `start` in key order.
    fn scan_into(&self, start: &K, limit: usize, out: &mut Vec<(K, V)>)
    where
        V: Clone,
    {
        if out.len() >= limit {
            return;
        }
        match self {
            Node::Leaf { keys, values } => {
                let begin = match keys.binary_search(start) {
                    Ok(i) | Err(i) => i,
                };
                for i in begin..keys.len() {
                    if out.len() >= limit {
                        return;
                    }
                    out.push((keys[i].clone(), values[i].clone()));
                }
            }
            Node::Internal { keys, children } => {
                let begin = match keys.binary_search(start) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                for child in &children[begin..] {
                    if out.len() >= limit {
                        return;
                    }
                    child.scan_into(start, limit, out);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { children, .. } => 1 + children[0].depth(),
        }
    }
}

/// An ordered map implemented as a B+-tree.
///
/// # Example
///
/// ```
/// use tailbench_kvstore::bptree::BPlusTree;
///
/// let mut tree = BPlusTree::new();
/// tree.insert(3u64, "three");
/// tree.insert(1, "one");
/// assert_eq!(tree.get(&1), Some(&"one"));
/// assert_eq!(tree.len(), 2);
/// let entries = tree.scan(&0, 10);
/// assert_eq!(entries[0].0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        BPlusTree {
            root: Node::new_leaf(),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Inserts a key/value pair, returning the previous value for the key if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (old, split) = self.root.insert(key, value);
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let old_root = std::mem::replace(&mut self.root, Node::new_leaf());
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
        old
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.root.get(key)
    }

    /// Returns `true` if the key is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.root.remove(key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Returns up to `limit` entries with keys `>= start`, in ascending key order.
    #[must_use]
    pub fn scan(&self, start: &K, limit: usize) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(limit.min(128));
        self.root.scan_into(start, limit, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        // 7 and 1000 are coprime, so i*7 mod 1000 enumerates every key exactly once.
        for i in 0..1000u64 {
            assert!(t.insert(i * 7 % 1000, i).is_none());
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            let key = i * 7 % 1000;
            assert_eq!(t.get(&key), Some(&i));
        }
        assert!(t.contains_key(&500));
        assert!(!t.contains_key(&1000));
    }

    #[test]
    fn overwrites_return_previous_value() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(1u64, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn large_insert_keeps_tree_shallow() {
        let mut t = BPlusTree::new();
        for i in 0..100_000u64 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.len(), 100_000);
        // With 31-key nodes, 100k entries needs only a handful of levels.
        assert!(t.depth() <= 5, "depth = {}", t.depth());
        assert_eq!(t.get(&99_999), Some(&199_998));
    }

    #[test]
    fn scan_returns_sorted_prefix() {
        let mut t = BPlusTree::new();
        for i in (0..500u64).rev() {
            t.insert(i, i);
        }
        let s = t.scan(&100, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].0, 100);
        assert_eq!(s[9].0, 109);
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0));
        // Scan past the end.
        let tail = t.scan(&495, 100);
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn remove_deletes_entries() {
        let mut t = BPlusTree::new();
        for i in 0..2_000u64 {
            t.insert(i, i);
        }
        for i in (0..2_000u64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.remove(&0), None);
        assert_eq!(t.get(&1), Some(&1));
        assert_eq!(t.get(&2), None);
    }

    #[test]
    fn mass_delete_never_shrinks_the_tree_and_len_stays_exact() {
        // The documented no-shrink invariant (DESIGN.md): deletions are lazy, leaves are
        // never merged and the structure is monotonically non-decreasing — but `len()`
        // counts live keys exactly, and lookups/scans skip the emptied leaves.
        let mut t = BPlusTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        let depth_full = t.depth();
        for i in 0..10_000u64 {
            assert_eq!(t.remove(&i), Some(i));
            assert_eq!(t.len() as u64, 10_000 - i - 1, "len must stay exact");
        }
        assert!(t.is_empty());
        assert_eq!(
            t.depth(),
            depth_full,
            "lazy deletion must not restructure the tree"
        );
        // Every leaf is now under-full (empty); queries must still be correct.
        assert_eq!(t.get(&5_000), None);
        assert!(!t.contains_key(&0));
        assert!(t.scan(&0, 100).is_empty());
    }

    #[test]
    fn delete_then_reinsert_round_trips_through_underfull_leaves() {
        let mut t = BPlusTree::new();
        for i in 0..4_000u64 {
            t.insert(i, i);
        }
        let depth_before = t.depth();
        for i in 0..4_000u64 {
            t.remove(&i);
        }
        // Reinsert a different (overlapping) key set into the hollowed-out tree.
        for i in (0..8_000u64).step_by(2) {
            assert_eq!(
                t.insert(i, i * 10),
                None,
                "tree was emptied, key {i} is new"
            );
        }
        assert_eq!(t.len(), 4_000);
        assert!(t.depth() >= depth_before, "the tree never shrinks");
        for i in (0..8_000u64).step_by(2) {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.get(&1), None);
        // Ordered iteration over reused and fresh leaves stays sorted and complete.
        let all = t.scan(&0, 10_000);
        assert_eq!(all.len(), 4_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn interleaved_delete_reinsert_matches_btreemap() {
        use std::collections::BTreeMap;
        let mut t = BPlusTree::new();
        let mut model = BTreeMap::new();
        // Three waves of insert-everything / delete-most / reinsert-some, checking the
        // full map equivalence after each wave.
        for wave in 0..3u64 {
            for i in 0..2_000u64 {
                let k = i * 3 + wave;
                assert_eq!(t.insert(k, wave), model.insert(k, wave));
            }
            for i in (0..2_000u64).filter(|i| i % 4 != 0) {
                let k = i * 3 + wave;
                assert_eq!(t.remove(&k), model.remove(&k));
            }
            assert_eq!(t.len(), model.len());
            for (k, v) in &model {
                assert_eq!(t.get(k), Some(v));
            }
            let scan = t.scan(&0, usize::MAX / 2);
            let want: Vec<(u64, u64)> = model.iter().map(|(a, b)| (*a, *b)).collect();
            assert_eq!(scan, want);
        }
    }

    #[test]
    fn reverse_and_random_order_inserts_agree_with_btreemap() {
        use std::collections::BTreeMap;
        let mut model = BTreeMap::new();
        let mut t = BPlusTree::new();
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x >> 40;
            model.insert(k, x);
            t.insert(k, x);
        }
        assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k), Some(v));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u16, u32),
        Remove(u16),
        Scan(u16, u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u16>().prop_map(Op::Remove),
            (any::<u16>(), 1u8..50).prop_map(|(k, n)| Op::Scan(k, n)),
        ]
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
            let mut tree = BPlusTree::new();
            let mut model: BTreeMap<u16, u32> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(tree.remove(&k), model.remove(&k));
                    }
                    Op::Scan(k, n) => {
                        let got = tree.scan(&k, n as usize);
                        let want: Vec<(u16, u32)> = model
                            .range(k..)
                            .take(n as usize)
                            .map(|(a, b)| (*a, *b))
                            .collect();
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
        }

        /// Delete-heavy sequences (3:1 removes over inserts from a small key range)
        /// drive many leaves to empty and back — the regime the no-shrink invariant
        /// trades off — and must still match `BTreeMap` exactly.
        #[test]
        fn delete_heavy_workload_behaves_like_btreemap(
            // The remove branch is repeated to weight deletions 3:1 over inserts (the
            // offline proptest shim has no weighted prop_oneof syntax).
            ops in prop::collection::vec(
                prop_oneof![
                    (0u16..256, any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
                    (0u16..256).prop_map(Op::Remove),
                    (0u16..256).prop_map(Op::Remove),
                    (0u16..256).prop_map(Op::Remove),
                    (0u16..256, 1u8..50).prop_map(|(k, n)| Op::Scan(k, n)),
                ],
                1..600,
            )
        ) {
            let mut tree = BPlusTree::new();
            let mut model: BTreeMap<u16, u32> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(tree.remove(&k), model.remove(&k));
                    }
                    Op::Scan(k, n) => {
                        let got = tree.scan(&k, n as usize);
                        let want: Vec<(u16, u32)> = model
                            .range(k..)
                            .take(n as usize)
                            .map(|(a, b)| (*a, *b))
                            .collect();
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(tree.len(), model.len());
            }
        }
    }
}
