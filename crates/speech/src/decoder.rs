//! Token-passing Viterbi decoder with beam pruning.
//!
//! The recognizer builds a flat decoding graph: every word's phone HMM states laid out
//! left-to-right, with word-exit transitions looping back to every word's entry state
//! (plus a word-insertion penalty).  Each frame, tokens are propagated along self-loops
//! and forward transitions, scored against the acoustic model, and pruned to a beam
//! around the best token — exactly the shape of sphinx's search, whose cost per frame is
//! proportional to the number of active states.

use crate::model::{AcousticModel, Frame, Lexicon, STATES_PER_PHONE};

/// Decoder tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct DecoderConfig {
    /// Beam width in log-likelihood units: states scoring below `best - beam` are pruned.
    pub beam: f32,
    /// Log-score penalty for starting a new word.
    pub word_insertion_penalty: f32,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            beam: 60.0,
            word_insertion_penalty: -2.0,
        }
    }
}

/// The result of decoding one utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// Recognized word sequence.
    pub words: Vec<u32>,
    /// Viterbi score of the best path.
    pub score: f32,
    /// Total number of (frame, state) evaluations performed — the decoder's work measure.
    pub state_evaluations: u64,
}

/// Flattened decoding-graph state.
#[derive(Debug, Clone, Copy)]
struct GraphState {
    phone: usize,
    /// Sub-state within the phone HMM.
    state: usize,
    /// Whether this is the last state of its word.
    is_word_end: bool,
}

/// The speech recognizer.
#[derive(Debug)]
pub struct Recognizer {
    acoustic: AcousticModel,
    states: Vec<GraphState>,
    /// First state index of each word.
    word_entry: Vec<usize>,
    config: DecoderConfig,
}

impl Recognizer {
    /// Builds the decoding graph for a lexicon.
    #[must_use]
    pub fn new(acoustic: AcousticModel, lexicon: &Lexicon, config: DecoderConfig) -> Self {
        let mut states = Vec::with_capacity(lexicon.total_states());
        let mut word_entry = Vec::with_capacity(lexicon.len());
        for word in 0..lexicon.len() {
            word_entry.push(states.len());
            let phones = lexicon.pronunciation(word);
            for (pi, &phone) in phones.iter().enumerate() {
                for s in 0..STATES_PER_PHONE {
                    states.push(GraphState {
                        phone,
                        state: s,
                        is_word_end: pi == phones.len() - 1 && s == STATES_PER_PHONE - 1,
                    });
                }
            }
        }
        Recognizer {
            acoustic,
            states,
            word_entry,
            config,
        }
    }

    /// Number of states in the decoding graph.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Decodes an utterance into its most likely word sequence.
    #[must_use]
    pub fn recognize(&self, frames: &[Frame]) -> Recognition {
        if frames.is_empty() {
            return Recognition {
                words: Vec::new(),
                score: 0.0,
                state_evaluations: 0,
            };
        }
        let n = self.states.len();
        const NEG: f32 = f32::NEG_INFINITY;
        // History arena: (parent history, word emitted).
        let mut histories: Vec<(usize, u32)> = vec![(0, u32::MAX)];
        let mut scores = vec![NEG; n];
        let mut hist = vec![0usize; n];
        let mut evaluations = 0u64;

        // Initialize: a token may start at the entry state of any word.
        for (word, &entry) in self.word_entry.iter().enumerate() {
            let s = &self.states[entry];
            scores[entry] = self.config.word_insertion_penalty
                + self.acoustic.log_likelihood(s.phone, s.state, &frames[0]);
            histories[0].1 = u32::MAX;
            hist[entry] = push_history(&mut histories, 0, word as u32);
            evaluations += 1;
        }

        for frame in &frames[1..] {
            let best = scores.iter().copied().fold(NEG, f32::max);
            let threshold = best - self.config.beam;
            let mut next_scores = vec![NEG; n];
            let mut next_hist = vec![0usize; n];
            // Best word-end token this frame (for cross-word transitions).
            let mut best_exit: Option<(f32, usize)> = None;

            for idx in 0..n {
                let score = scores[idx];
                if score < threshold {
                    continue;
                }
                let state = self.states[idx];
                // Self-loop.
                relax(&mut next_scores, &mut next_hist, idx, score, hist[idx]);
                // Forward transition within the word.
                if !state.is_word_end {
                    relax(&mut next_scores, &mut next_hist, idx + 1, score, hist[idx]);
                } else if best_exit.is_none_or(|(s, _)| score > s) {
                    best_exit = Some((score, hist[idx]));
                }
            }

            // Cross-word transitions from the best exiting token.
            if let Some((exit_score, exit_hist)) = best_exit {
                let entry_score = exit_score + self.config.word_insertion_penalty;
                for (word, &entry) in self.word_entry.iter().enumerate() {
                    if entry_score > next_scores[entry] {
                        next_scores[entry] = entry_score;
                        next_hist[entry] = push_history(&mut histories, exit_hist, word as u32);
                    }
                }
            }

            // Apply acoustic scores.
            for (score, s) in next_scores.iter_mut().zip(self.states.iter()) {
                if *score > NEG {
                    *score += self.acoustic.log_likelihood(s.phone, s.state, frame);
                    evaluations += 1;
                }
            }
            scores = next_scores;
            hist = next_hist;
        }

        // Pick the best word-end state (falling back to the global best).
        let mut best_idx = 0;
        let mut best_score = NEG;
        for (idx, (&score, state)) in scores.iter().zip(self.states.iter()).enumerate() {
            let bonus_ok = state.is_word_end;
            if score > best_score && (bonus_ok || best_score == NEG) {
                best_score = score;
                best_idx = idx;
            }
        }
        let words = unwind_history(&histories, hist[best_idx]);
        Recognition {
            words,
            score: best_score,
            state_evaluations: evaluations,
        }
    }
}

fn push_history(histories: &mut Vec<(usize, u32)>, parent: usize, word: u32) -> usize {
    histories.push((parent, word));
    histories.len() - 1
}

fn unwind_history(histories: &[(usize, u32)], mut id: usize) -> Vec<u32> {
    let mut words = Vec::new();
    while id != 0 {
        let (parent, word) = histories[id];
        if word != u32::MAX {
            words.push(word);
        }
        id = parent;
    }
    words.reverse();
    words
}

fn relax(scores: &mut [f32], hist: &mut [usize], idx: usize, score: f32, history: usize) {
    if score > scores[idx] {
        scores[idx] = score;
        hist[idx] = history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AcousticModel, Lexicon, UtteranceGenerator};
    use tailbench_workloads::rng::seeded_rng;

    fn recognizer(vocab: usize) -> Recognizer {
        Recognizer::new(
            AcousticModel::new(),
            &Lexicon::synthetic(vocab),
            DecoderConfig::default(),
        )
    }

    #[test]
    fn graph_has_expected_state_count() {
        let lex = Lexicon::synthetic(30);
        let rec = Recognizer::new(AcousticModel::new(), &lex, DecoderConfig::default());
        assert_eq!(rec.num_states(), lex.total_states());
    }

    #[test]
    fn empty_utterance_decodes_to_nothing() {
        let rec = recognizer(10);
        let r = rec.recognize(&[]);
        assert!(r.words.is_empty());
        assert_eq!(r.state_evaluations, 0);
    }

    #[test]
    fn recognizes_clean_synthetic_utterances_reasonably() {
        let vocab = 15;
        let gen = UtteranceGenerator::an4_like(vocab);
        let rec = recognizer(vocab);
        let mut rng = seeded_rng(5, 0);
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..10 {
            let u = gen.next_utterance(&mut rng);
            let r = rec.recognize(&u.frames);
            assert!(!r.words.is_empty());
            assert!(r.score.is_finite());
            // Count word overlap (order-insensitive) as a weak accuracy signal — the
            // decoder has no trained language model, so we only require that it is far
            // better than chance.
            let truth: std::collections::HashSet<u32> = u.transcript.iter().copied().collect();
            correct += r.words.iter().filter(|w| truth.contains(w)).count();
            total += r.words.len().max(u.transcript.len());
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.3, "word overlap accuracy = {accuracy}");
    }

    #[test]
    fn work_scales_with_utterance_length() {
        let rec = recognizer(20);
        let gen = UtteranceGenerator::an4_like(20);
        let mut rng = seeded_rng(6, 0);
        let u = gen.next_utterance(&mut rng);
        let half = rec.recognize(&u.frames[..u.frames.len() / 2]);
        let full = rec.recognize(&u.frames);
        assert!(full.state_evaluations > half.state_evaluations);
    }

    #[test]
    fn tighter_beam_does_less_work() {
        let lex = Lexicon::synthetic(20);
        let narrow = Recognizer::new(
            AcousticModel::new(),
            &lex,
            DecoderConfig {
                beam: 5.0,
                ..DecoderConfig::default()
            },
        );
        let wide = Recognizer::new(
            AcousticModel::new(),
            &lex,
            DecoderConfig {
                beam: 200.0,
                ..DecoderConfig::default()
            },
        );
        let gen = UtteranceGenerator::an4_like(20);
        let mut rng = seeded_rng(7, 0);
        let u = gen.next_utterance(&mut rng);
        assert!(
            narrow.recognize(&u.frames).state_evaluations
                <= wide.recognize(&u.frames).state_evaluations
        );
    }
}
