//! The sphinx substitute: GMM-HMM speech recognition.
//!
//! TailBench drives sphinx with utterances from the CMU AN4 corpus; recognition is a
//! compute-intensive beam search over a large HMM state space (paper §III).  This crate
//! implements the equivalent pipeline from scratch:
//!
//! * [`model`] — a synthetic phone set, diagonal-Gaussian acoustic model, lexicon, and an
//!   utterance generator that emits frames from the same model;
//! * [`decoder`] — a token-passing Viterbi decoder with beam pruning and cross-word
//!   transitions;
//! * [`service`] — the harness adapter ([`SphinxApp`]) and request factory.
//!
//! sphinx is the slowest application of the suite — its per-request work is several
//! orders of magnitude larger than masstree's — which is exactly the role it plays in the
//! paper's latency-spectrum argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod model;
pub mod service;

pub use decoder::{DecoderConfig, Recognition, Recognizer};
pub use model::{AcousticModel, Frame, Lexicon, Utterance, UtteranceGenerator, FEATURE_DIM};
pub use service::{SpeechRequestFactory, SphinxApp, DEFAULT_VOCABULARY};
