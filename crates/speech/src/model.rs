//! Acoustic and lexical models, plus synthetic utterance generation.
//!
//! sphinx decodes speech by scoring acoustic feature frames (MFCC vectors) against
//! Gaussian-mixture observation densities attached to the states of phone HMMs, strung
//! together by a lexicon into word models (paper §III).  We cannot ship the CMU AN4
//! corpus, so this module defines a synthetic phone set, a lexicon over it, a diagonal-
//! Gaussian acoustic model, and an utterance generator that emits frames from the same
//! model (plus noise) — which makes the recognition task well-posed and the decoder's
//! work profile realistic: cost scales with frames × active HMM states.

use rand::Rng;
use tailbench_workloads::rng::SuiteRng;

/// Dimensionality of the acoustic feature vectors (MFCC-like).
pub const FEATURE_DIM: usize = 13;
/// Number of HMM states per phone (standard 3-state left-to-right topology).
pub const STATES_PER_PHONE: usize = 3;
/// Number of phones in the synthetic phone set.
pub const NUM_PHONES: usize = 32;

/// One acoustic feature frame.
pub type Frame = [f32; FEATURE_DIM];

/// The acoustic model: a diagonal Gaussian per (phone, state).
#[derive(Debug, Clone)]
pub struct AcousticModel {
    /// Mean vectors indexed by `phone * STATES_PER_PHONE + state`.
    means: Vec<Frame>,
    /// Shared diagonal variance.
    variance: f32,
}

impl Default for AcousticModel {
    fn default() -> Self {
        Self::new()
    }
}

impl AcousticModel {
    /// Builds the deterministic synthetic acoustic model.
    #[must_use]
    pub fn new() -> Self {
        let mut means = Vec::with_capacity(NUM_PHONES * STATES_PER_PHONE);
        for phone in 0..NUM_PHONES {
            for state in 0..STATES_PER_PHONE {
                let mut mean = [0.0f32; FEATURE_DIM];
                for (d, m) in mean.iter_mut().enumerate() {
                    // A deterministic, well-separated constellation of means.
                    let x = (phone * 31 + state * 7 + d * 13) as f32;
                    *m = (x * 0.37).sin() * 3.0 + (x * 0.11).cos() * 2.0;
                }
                means.push(mean);
            }
        }
        AcousticModel {
            means,
            variance: 0.35,
        }
    }

    /// Number of distinct emission densities.
    #[must_use]
    pub fn num_densities(&self) -> usize {
        self.means.len()
    }

    /// Mean vector of a (phone, state) density.
    ///
    /// # Panics
    ///
    /// Panics if `phone` or `state` is out of range.
    #[must_use]
    pub fn mean(&self, phone: usize, state: usize) -> &Frame {
        assert!(phone < NUM_PHONES && state < STATES_PER_PHONE);
        &self.means[phone * STATES_PER_PHONE + state]
    }

    /// Log-likelihood (up to a constant) of a frame under a (phone, state) density.
    #[must_use]
    pub fn log_likelihood(&self, phone: usize, state: usize, frame: &Frame) -> f32 {
        let mean = self.mean(phone, state);
        let mut acc = 0.0f32;
        for d in 0..FEATURE_DIM {
            let diff = frame[d] - mean[d];
            acc += diff * diff;
        }
        -acc / (2.0 * self.variance)
    }
}

/// The lexicon: each word is a phone sequence.
#[derive(Debug, Clone)]
pub struct Lexicon {
    pronunciations: Vec<Vec<usize>>,
}

impl Lexicon {
    /// Builds a deterministic synthetic lexicon of `vocabulary` words, each 2–5 phones.
    ///
    /// # Panics
    ///
    /// Panics if `vocabulary == 0`.
    #[must_use]
    pub fn synthetic(vocabulary: usize) -> Self {
        assert!(vocabulary > 0, "lexicon needs at least one word");
        let pronunciations = (0..vocabulary)
            .map(|w| {
                let len = 2 + (w * 2_654_435_761) % 4; // 2..=5 phones
                (0..len)
                    .map(|i| (w * 31 + i * 17 + (w >> 3)) % NUM_PHONES)
                    .collect()
            })
            .collect();
        Lexicon { pronunciations }
    }

    /// Number of words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pronunciations.len()
    }

    /// Returns `true` if the lexicon is empty (never for synthetic lexicons).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pronunciations.is_empty()
    }

    /// Phone sequence of a word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    #[must_use]
    pub fn pronunciation(&self, word: usize) -> &[usize] {
        &self.pronunciations[word]
    }

    /// Total number of HMM states across all words.
    #[must_use]
    pub fn total_states(&self) -> usize {
        self.pronunciations
            .iter()
            .map(|p| p.len() * STATES_PER_PHONE)
            .sum()
    }
}

/// A synthetic utterance: its frames and the ground-truth word sequence.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Acoustic frames.
    pub frames: Vec<Frame>,
    /// Ground-truth transcript (word ids).
    pub transcript: Vec<u32>,
}

/// Generates synthetic utterances consistent with an acoustic model and lexicon.
#[derive(Debug, Clone)]
pub struct UtteranceGenerator {
    model: AcousticModel,
    lexicon: Lexicon,
    min_words: usize,
    max_words: usize,
    noise: f32,
}

impl UtteranceGenerator {
    /// Creates a generator of utterances of `min_words..=max_words` words with the given
    /// per-dimension noise amplitude.
    #[must_use]
    pub fn new(model: AcousticModel, lexicon: Lexicon, min_words: usize, max_words: usize) -> Self {
        UtteranceGenerator {
            model,
            lexicon,
            min_words: min_words.max(1),
            max_words: max_words.max(min_words.max(1)),
            noise: 0.3,
        }
    }

    /// AN4-like defaults: short alphanumeric-style utterances of 2–8 words.
    #[must_use]
    pub fn an4_like(vocabulary: usize) -> Self {
        Self::new(AcousticModel::new(), Lexicon::synthetic(vocabulary), 2, 8)
    }

    /// The lexicon used by this generator.
    #[must_use]
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Draws one utterance.
    pub fn next_utterance(&self, rng: &mut SuiteRng) -> Utterance {
        let n_words = rng.gen_range(self.min_words..=self.max_words);
        let mut transcript = Vec::with_capacity(n_words);
        let mut frames = Vec::new();
        for _ in 0..n_words {
            let word = rng.gen_range(0..self.lexicon.len());
            transcript.push(word as u32);
            for &phone in self.lexicon.pronunciation(word) {
                for state in 0..STATES_PER_PHONE {
                    let dwell = rng.gen_range(2..=5);
                    for _ in 0..dwell {
                        let mut frame = *self.model.mean(phone, state);
                        for value in &mut frame {
                            *value += rng.gen_range(-self.noise..=self.noise);
                        }
                        frames.push(frame);
                    }
                }
            }
        }
        Utterance { frames, transcript }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_workloads::rng::seeded_rng;

    #[test]
    fn acoustic_model_prefers_its_own_mean() {
        let am = AcousticModel::new();
        assert_eq!(am.num_densities(), NUM_PHONES * STATES_PER_PHONE);
        let frame = *am.mean(5, 1);
        let own = am.log_likelihood(5, 1, &frame);
        let other = am.log_likelihood(20, 0, &frame);
        assert!(own > other);
        assert_eq!(own, 0.0);
    }

    #[test]
    fn lexicon_pronunciations_are_valid() {
        let lex = Lexicon::synthetic(100);
        assert_eq!(lex.len(), 100);
        assert!(!lex.is_empty());
        for w in 0..100 {
            let p = lex.pronunciation(w);
            assert!((2..=5).contains(&p.len()));
            assert!(p.iter().all(|&ph| ph < NUM_PHONES));
        }
        assert!(lex.total_states() >= 100 * 2 * STATES_PER_PHONE);
    }

    #[test]
    fn utterances_have_frames_matching_transcript_length() {
        let gen = UtteranceGenerator::an4_like(50);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..20 {
            let u = gen.next_utterance(&mut rng);
            assert!((2..=8).contains(&u.transcript.len()));
            // Each word contributes at least 2 phones x 3 states x 2 frames = 12 frames.
            assert!(u.frames.len() >= u.transcript.len() * 12);
            assert!(u.transcript.iter().all(|&w| (w as usize) < 50));
        }
    }

    #[test]
    fn utterance_frames_are_recognizably_close_to_their_densities() {
        let gen = UtteranceGenerator::an4_like(20);
        let mut rng = seeded_rng(2, 0);
        let u = gen.next_utterance(&mut rng);
        let am = AcousticModel::new();
        let lex = Lexicon::synthetic(20);
        // The first frame belongs to the first phone/state of the first word; its
        // likelihood under that density must beat a random other density.
        let first_word = u.transcript[0] as usize;
        let first_phone = lex.pronunciation(first_word)[0];
        let own = am.log_likelihood(first_phone, 0, &u.frames[0]);
        let other = am.log_likelihood((first_phone + 11) % NUM_PHONES, 2, &u.frames[0]);
        assert!(own > other);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_lexicon_panics() {
        let _ = Lexicon::synthetic(0);
    }
}
