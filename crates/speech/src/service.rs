//! sphinx as a TailBench application.

use crate::decoder::{DecoderConfig, Recognition, Recognizer};
use crate::model::{AcousticModel, Frame, Lexicon, UtteranceGenerator, FEATURE_DIM};
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// Wire encoding of utterances (frame count + packed little-endian `f32`s).
pub mod codec {
    use super::{Frame, FEATURE_DIM};

    /// Encodes an utterance's frames.
    #[must_use]
    pub fn encode_frames(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + frames.len() * FEATURE_DIM * 4);
        out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
        for frame in frames {
            for value in frame {
                out.extend_from_slice(&value.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an utterance's frames; `None` if malformed.
    #[must_use]
    pub fn decode_frames(payload: &[u8]) -> Option<Vec<Frame>> {
        if payload.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(payload[..4].try_into().ok()?) as usize;
        let body = payload.get(4..4 + n * FEATURE_DIM * 4)?;
        let mut frames = Vec::with_capacity(n);
        for f in 0..n {
            let mut frame = [0.0f32; FEATURE_DIM];
            for (d, value) in frame.iter_mut().enumerate() {
                let off = (f * FEATURE_DIM + d) * 4;
                *value = f32::from_le_bytes(body[off..off + 4].try_into().ok()?);
            }
            frames.push(frame);
        }
        Some(frames)
    }
}

/// Default vocabulary size of the standard configuration.
pub const DEFAULT_VOCABULARY: usize = 300;

/// The sphinx-substitute speech recognition application.
#[derive(Debug)]
pub struct SphinxApp {
    recognizer: Recognizer,
}

impl SphinxApp {
    /// Builds the recognizer for a vocabulary of the given size.
    #[must_use]
    pub fn new(vocabulary: usize) -> Self {
        let lexicon = Lexicon::synthetic(vocabulary.max(1));
        SphinxApp {
            recognizer: Recognizer::new(AcousticModel::new(), &lexicon, DecoderConfig::default()),
        }
    }

    /// Standard configuration (300-word vocabulary, AN4-like).
    #[must_use]
    pub fn standard() -> Self {
        Self::new(DEFAULT_VOCABULARY)
    }

    /// Reduced configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        Self::new(20)
    }

    fn work_profile(&self, recognition: &Recognition) -> WorkProfile {
        // Each state evaluation is a 13-dimensional Gaussian score (a real recognizer
        // evaluates a mixture of such Gaussians, ~100+ instructions) plus token
        // bookkeeping; the search sweeps large score arrays every frame.
        let e = recognition.state_evaluations;
        WorkProfile {
            instructions: 20_000 + 120 * e,
            mem_reads: 500 + 6 * e,
            mem_writes: 200 + e,
            footprint_bytes: 256 * 1024 + 8 * e,
            locality: 0.45,
            critical_fraction: 0.0,
        }
    }
}

impl ServerApp for SphinxApp {
    fn name(&self) -> &str {
        "sphinx"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(frames) = codec::decode_frames(payload) else {
            return Response::new(vec![0xFF]);
        };
        let recognition = self.recognizer.recognize(&frames);
        let mut out = Vec::with_capacity(2 + recognition.words.len() * 4);
        out.extend_from_slice(&(recognition.words.len() as u16).to_le_bytes());
        for w in &recognition.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let work = self.work_profile(&recognition);
        Response::with_work(out, work)
    }
}

/// Generates synthetic utterance requests.
#[derive(Debug)]
pub struct SpeechRequestFactory {
    generator: UtteranceGenerator,
    rng: SuiteRng,
}

impl SpeechRequestFactory {
    /// Creates a factory matching the application's vocabulary size.
    #[must_use]
    pub fn new(vocabulary: usize, seed: u64) -> Self {
        SpeechRequestFactory {
            generator: UtteranceGenerator::an4_like(vocabulary.max(1)),
            rng: seeded_rng(seed, 400),
        }
    }
}

impl RequestFactory for SpeechRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode_frames(&self.generator.next_utterance(&mut self.rng).frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let frames = vec![[1.5f32; FEATURE_DIM], [-2.25f32; FEATURE_DIM]];
        assert_eq!(
            codec::decode_frames(&codec::encode_frames(&frames)),
            Some(frames)
        );
        assert_eq!(codec::decode_frames(&[0, 0]), None);
    }

    #[test]
    fn app_recognizes_utterances() {
        let app = SphinxApp::small();
        let mut factory = SpeechRequestFactory::new(20, 1);
        let payload = factory.next_request();
        let resp = app.handle(&payload);
        let n = u16::from_le_bytes(resp.payload[..2].try_into().unwrap());
        assert!(n > 0);
        assert!(resp.work.instructions > 50_000);
    }

    #[test]
    fn sphinx_is_much_heavier_than_a_kv_lookup() {
        // Compared against a masstree GET (a few thousand instructions), even the
        // reduced-vocabulary sphinx request must report well over an order of magnitude
        // more work — the paper's Table I shows a spread of several orders of magnitude
        // at full scale.
        let app = SphinxApp::small();
        let mut factory = SpeechRequestFactory::new(20, 2);
        let resp = app.handle(&factory.next_request());
        assert!(
            resp.work.instructions > 20 * 3_000,
            "work = {}",
            resp.work.instructions
        );
    }

    #[test]
    fn malformed_request_is_rejected() {
        let app = SphinxApp::small();
        assert_eq!(app.handle(&[1]).payload, vec![0xFF]);
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let app: Arc<dyn ServerApp> = Arc::new(SphinxApp::small());
        let mut factory = SpeechRequestFactory::new(20, 3);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(30.0, 60).with_warmup(5),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "sphinx");
        assert!(report.requests > 40);
    }
}
