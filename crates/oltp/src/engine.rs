//! The storage-engine abstraction shared by silo and shore.
//!
//! Both OLTP applications run the same TPC-C transaction logic
//! ([`crate::executor`]); what differs is the storage engine underneath: silo is an
//! in-memory engine with optimistic concurrency control, shore is an on-disk engine with
//! a buffer pool, write-ahead log and two-phase locking.  The [`Engine`] and
//! [`Transaction`] traits capture the interface the executor needs, so the transaction
//! logic is written exactly once.

use std::fmt;

/// Identifies one of the TPC-C tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Table {
    /// WAREHOUSE.
    Warehouse,
    /// DISTRICT.
    District,
    /// CUSTOMER.
    Customer,
    /// ITEM (read-only).
    Item,
    /// STOCK.
    Stock,
    /// ORDERS.
    Orders,
    /// ORDER-LINE.
    OrderLine,
    /// NEW-ORDER.
    NewOrder,
    /// HISTORY.
    History,
}

impl Table {
    /// All tables, in a fixed order (used for table-indexed storage arrays).
    pub const ALL: [Table; 9] = [
        Table::Warehouse,
        Table::District,
        Table::Customer,
        Table::Item,
        Table::Stock,
        Table::Orders,
        Table::OrderLine,
        Table::NewOrder,
        Table::History,
    ];

    /// Dense index of the table.
    #[must_use]
    pub fn index(self) -> usize {
        Table::ALL
            .iter()
            .position(|&t| t == self)
            .expect("table listed in ALL")
    }
}

/// Why a transaction failed to commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Optimistic validation failed (silo) — the caller should retry.
    Conflict,
    /// The transaction was explicitly rolled back (e.g. TPC-C's 1% invalid new-orders).
    Aborted,
    /// A row that must exist was not found.
    NotFound {
        /// Table of the missing row.
        table: Table,
        /// Key of the missing row.
        key: u64,
    },
    /// An I/O error from the on-disk engine.
    Io(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict => write!(f, "optimistic validation conflict"),
            TxnError::Aborted => write!(f, "transaction rolled back"),
            TxnError::NotFound { table, key } => write!(f, "row not found: {table:?}/{key}"),
            TxnError::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Summary of a committed (or aborted) transaction, used for latency/work accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Rows read.
    pub reads: u64,
    /// Rows written.
    pub writes: u64,
    /// Number of optimistic retries needed (silo only).
    pub retries: u64,
    /// Bytes appended to the write-ahead log (shore only).
    pub log_bytes: u64,
    /// Buffer-pool misses incurred (shore only).
    pub page_misses: u64,
}

/// One transaction against an engine.
pub trait Transaction {
    /// Reads a row; `Ok(None)` if the key does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError`] on storage errors or (for OCC engines) conflicts detected
    /// eagerly.
    fn read(&mut self, table: Table, key: u64) -> Result<Option<Vec<u8>>, TxnError>;

    /// Buffers a write of a row (visible to subsequent reads of this transaction,
    /// installed atomically at commit).
    fn write(&mut self, table: Table, key: u64, value: Vec<u8>);

    /// Attempts to commit; consumes the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::Conflict`] if optimistic validation failed (the caller may
    /// retry the whole transaction) or another [`TxnError`] on storage failure.
    fn commit(self: Box<Self>) -> Result<TxnStats, TxnError>;

    /// Abandons the transaction without installing any write.
    fn abort(self: Box<Self>);
}

/// A storage engine that can run transactions.
pub trait Engine: Send + Sync {
    /// Engine name for reports (`"silo"`, `"shore"`).
    fn name(&self) -> &str;

    /// Begins a new transaction.
    fn begin(&self) -> Box<dyn Transaction + '_>;

    /// Non-transactional bulk insert used by the initial TPC-C load.
    fn load(&self, table: Table, key: u64, value: Vec<u8>);

    /// Approximate number of rows in a table (diagnostics and tests).
    fn table_len(&self, table: Table) -> usize;
}

/// Packs a multi-part TPC-C key (warehouse, district, id, …) into a single `u64`.
///
/// Layout: `[w: 12 bits][d: 8 bits][a: 22 bits][b: 22 bits]`, enough for the paper's
/// scale factors with room to spare.
#[must_use]
pub fn pack_key(warehouse: u32, district: u32, a: u32, b: u32) -> u64 {
    debug_assert!(warehouse < (1 << 12));
    debug_assert!(district < (1 << 8));
    debug_assert!(a < (1 << 22));
    debug_assert!(b < (1 << 22));
    (u64::from(warehouse) << 52) | (u64::from(district) << 44) | (u64::from(a) << 22) | u64::from(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in Table::ALL {
            assert!(t.index() < Table::ALL.len());
            assert!(seen.insert(t.index()));
        }
    }

    #[test]
    fn pack_key_is_injective_for_distinct_components() {
        let a = pack_key(1, 2, 3, 4);
        assert_ne!(a, pack_key(2, 2, 3, 4));
        assert_ne!(a, pack_key(1, 3, 3, 4));
        assert_ne!(a, pack_key(1, 2, 4, 4));
        assert_ne!(a, pack_key(1, 2, 3, 5));
        assert_eq!(a, pack_key(1, 2, 3, 4));
    }

    #[test]
    fn txn_error_display_is_informative() {
        let e = TxnError::NotFound {
            table: Table::Stock,
            key: 42,
        };
        assert!(e.to_string().contains("Stock"));
        assert!(TxnError::Conflict.to_string().contains("conflict"));
    }
}
