//! The silo and shore substitutes: OLTP engines running TPC-C.
//!
//! TailBench includes two transactional databases driven by TPC-C: silo, a fast
//! in-memory database built around optimistic concurrency control, and shore, a
//! traditional on-disk storage manager (paper §III).  This crate implements both from
//! scratch behind a common storage abstraction:
//!
//! * [`engine`] — the `Engine` / `Transaction` traits and TPC-C key packing;
//! * [`silo`] — the in-memory OCC engine (per-record TIDs, read/write sets, validation);
//! * [`shore`] — the on-disk engine (fixed-size pages, bounded buffer pool with LRU
//!   eviction, write-ahead log, strict two-phase locking with no-wait restarts);
//! * [`executor`] — the TPC-C schema, initial load and the five transactions, written
//!   once against the engine abstraction;
//! * [`service`] — the harness adapters ([`OltpApp`]) and the TPC-C request factory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod executor;
pub mod service;
pub mod shore;
pub mod silo;

pub use engine::{Engine, Table, Transaction, TxnError, TxnStats};
pub use executor::{load_database, TpccExecutor, TpccOutcome};
pub use service::{OltpApp, OltpEngineKind, TpccRequestFactory};
pub use shore::ShoreEngine;
pub use silo::SiloEngine;
