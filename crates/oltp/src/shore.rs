//! The shore engine: on-disk storage with a buffer pool, write-ahead log and locking.
//!
//! shore is a traditional disk-based storage manager: rows live in fixed-size pages on
//! stable storage, a bounded buffer pool caches pages in memory (evicting
//! least-recently-used dirty pages back to disk), every commit appends its writes to a
//! write-ahead log before the pages are updated, and concurrency control is pessimistic
//! (strict two-phase locking with a no-wait deadlock-avoidance policy).  This gives shore
//! the longer, more variable service times and the heavier instruction footprint the
//! paper reports (Table I), even when the backing file sits on fast storage.

use crate::engine::{Engine, Table, Transaction, TxnError, TxnStats};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4_096;
/// Number of lock stripes in the lock manager.
const LOCK_STRIPES: usize = 1_024;

/// Location of a row inside the data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    page: u64,
    offset: u32,
    len: u32,
}

/// A cached page frame.
#[derive(Debug, Clone)]
struct Frame {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// The page store: data file plus bounded in-memory buffer pool.
///
/// The file and the frame map live under one mutex: every file access needs the
/// frame map consistent with it (evictions write the frame being removed, faults
/// fill the frame being inserted), so a separate file lock would only ever be
/// taken while the map lock is already held — nesting without concurrency.
#[derive(Debug)]
struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    clock: AtomicU64,
    misses: AtomicU64,
    allocated_pages: AtomicU64,
}

#[derive(Debug)]
struct PoolInner {
    file: File,
    frames: HashMap<u64, Frame>,
}

impl BufferPool {
    fn new(path: &Path, capacity: usize) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(BufferPool {
            inner: Mutex::new(PoolInner {
                file,
                frames: HashMap::new(),
            }),
            capacity: capacity.max(8),
            clock: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            allocated_pages: AtomicU64::new(0),
        })
    }

    fn allocate_page(&self) -> u64 {
        self.allocated_pages.fetch_add(1, Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Runs `f` with mutable access to the page's bytes, faulting it in (and possibly
    /// evicting another page) as needed.
    fn with_page<R>(
        &self,
        page: u64,
        mark_dirty: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> std::io::Result<R> {
        let mut inner = self.inner.lock();
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        if !inner.frames.contains_key(&page) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // Evict the least recently used frame if the pool is full.
            if inner.frames.len() >= self.capacity {
                if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.last_used) {
                    if let Some(frame) = inner.frames.remove(&victim) {
                        if frame.dirty {
                            inner
                                .file
                                .seek(SeekFrom::Start(victim * PAGE_SIZE as u64))?;
                            inner.file.write_all(&frame.data)?;
                        }
                    }
                }
            }
            // Fault the page in from disk (or zero-fill a fresh page).
            let mut data = vec![0u8; PAGE_SIZE];
            let file_len = inner.file.metadata()?.len();
            if (page + 1) * PAGE_SIZE as u64 <= file_len {
                inner.file.seek(SeekFrom::Start(page * PAGE_SIZE as u64))?;
                inner.file.read_exact(&mut data)?;
            } else {
                // Extend the file so eviction writes always succeed.
                inner
                    .file
                    .seek(SeekFrom::Start((page + 1) * PAGE_SIZE as u64 - 1))?;
                inner.file.write_all(&[0u8])?;
            }
            inner.frames.insert(
                page,
                Frame {
                    data,
                    dirty: false,
                    last_used: tick,
                },
            );
        }
        let frame = inner.frames.get_mut(&page).expect("inserted above");
        frame.last_used = tick;
        if mark_dirty {
            frame.dirty = true;
        }
        Ok(f(&mut frame.data))
    }
}

/// Write-ahead log: length-prefixed (table, key, value) records appended per commit.
#[derive(Debug)]
struct WriteAheadLog {
    file: Mutex<File>,
    bytes: AtomicU64,
}

impl WriteAheadLog {
    fn new(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(WriteAheadLog {
            file: Mutex::new(file),
            bytes: AtomicU64::new(0),
        })
    }

    fn append(&self, writes: &[(Table, u64, Vec<u8>)]) -> std::io::Result<u64> {
        let mut buf = Vec::with_capacity(writes.iter().map(|(_, _, v)| v.len() + 17).sum());
        for (table, key, value) in writes {
            buf.push(table.index() as u8);
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
            buf.extend_from_slice(value);
        }
        let mut file = self.file.lock();
        file.write_all(&buf)?;
        file.flush()?;
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len() as u64)
    }

    fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// The on-disk storage engine.
#[derive(Debug)]
pub struct ShoreEngine {
    pool: BufferPool,
    wal: WriteAheadLog,
    directory: RwLock<HashMap<(usize, u64), Slot>>,
    allocator: Mutex<(u64, u32)>,
    locks: Vec<Mutex<()>>,
    #[allow(dead_code)]
    data_dir: PathBuf,
}

impl ShoreEngine {
    /// Opens (creating) a shore database in `dir` with a buffer pool of `pool_pages`
    /// pages.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the data or log files.
    pub fn open(dir: &Path, pool_pages: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let pool = BufferPool::new(&dir.join("shore.data"), pool_pages)?;
        let wal = WriteAheadLog::new(&dir.join("shore.wal"))?;
        Ok(ShoreEngine {
            pool,
            wal,
            directory: RwLock::new(HashMap::new()),
            allocator: Mutex::new((0, PAGE_SIZE as u32)), // force allocation of page 0 lazily
            locks: (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
            data_dir: dir.to_path_buf(),
        })
    }

    /// Opens a shore database in a fresh unique directory under the system temp dir.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn temp(pool_pages: usize) -> std::io::Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tailbench-shore-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        Self::open(&dir, pool_pages)
    }

    /// Total bytes appended to the write-ahead log so far.
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes_written()
    }

    /// Total buffer-pool misses so far.
    #[must_use]
    pub fn pool_misses(&self) -> u64 {
        self.pool.misses()
    }

    fn stripe(table: Table, key: u64) -> usize {
        let mut h = key ^ ((table.index() as u64) << 56);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h as usize) % LOCK_STRIPES
    }

    fn allocate_slot(&self, len: u32) -> Slot {
        let mut alloc = self.allocator.lock();
        let (ref mut page, ref mut offset) = *alloc;
        if *offset as usize + len as usize > PAGE_SIZE {
            *page = self.pool.allocate_page();
            *offset = 0;
        }
        let slot = Slot {
            page: *page,
            offset: *offset,
            len,
        };
        *offset += len;
        slot
    }

    fn read_slot(&self, slot: Slot) -> std::io::Result<Vec<u8>> {
        self.pool.with_page(slot.page, false, |data| {
            data[slot.offset as usize..(slot.offset + slot.len) as usize].to_vec()
        })
    }

    fn write_slot(&self, slot: Slot, value: &[u8]) -> std::io::Result<()> {
        self.pool.with_page(slot.page, true, |data| {
            data[slot.offset as usize..slot.offset as usize + value.len()].copy_from_slice(value);
        })
    }

    fn store(&self, table: Table, key: u64, value: &[u8]) -> std::io::Result<()> {
        let existing = self.directory.read().get(&(table.index(), key)).copied();
        match existing {
            Some(slot) if value.len() as u32 <= slot.len => {
                let new_slot = Slot {
                    len: value.len() as u32,
                    ..slot
                };
                self.write_slot(new_slot, value)?;
                self.directory
                    .write()
                    .insert((table.index(), key), new_slot);
            }
            _ => {
                let slot = self.allocate_slot(value.len() as u32);
                self.write_slot(slot, value)?;
                self.directory.write().insert((table.index(), key), slot);
            }
        }
        Ok(())
    }
}

impl Engine for ShoreEngine {
    fn name(&self) -> &str {
        "shore"
    }

    fn begin(&self) -> Box<dyn Transaction + '_> {
        Box::new(ShoreTransaction {
            engine: self,
            held: HashMap::new(),
            writes: Vec::new(),
            stats: TxnStats::default(),
        })
    }

    fn load(&self, table: Table, key: u64, value: Vec<u8>) {
        self.store(table, key, &value)
            .expect("bulk load i/o failure");
    }

    fn table_len(&self, table: Table) -> usize {
        self.directory
            .read()
            .keys()
            .filter(|(t, _)| *t == table.index())
            .count()
    }
}

/// An in-flight pessimistic (strict 2PL, no-wait) transaction.
struct ShoreTransaction<'a> {
    engine: &'a ShoreEngine,
    /// Stripe locks held until commit/abort, keyed by stripe index.
    held: HashMap<usize, MutexGuard<'a, ()>>,
    writes: Vec<(Table, u64, Vec<u8>)>,
    stats: TxnStats,
}

impl<'a> ShoreTransaction<'a> {
    /// Acquires the lock stripe covering (table, key); no-wait policy: if the stripe is
    /// held by another transaction, fail with [`TxnError::Conflict`] so the caller
    /// retries the whole transaction (immediate-restart deadlock avoidance).
    fn lock(&mut self, table: Table, key: u64) -> Result<(), TxnError> {
        let stripe = ShoreEngine::stripe(table, key);
        if self.held.contains_key(&stripe) {
            return Ok(());
        }
        match self.engine.locks[stripe].try_lock() {
            Some(guard) => {
                self.held.insert(stripe, guard);
                Ok(())
            }
            None => Err(TxnError::Conflict),
        }
    }
}

impl Transaction for ShoreTransaction<'_> {
    fn read(&mut self, table: Table, key: u64) -> Result<Option<Vec<u8>>, TxnError> {
        // Read-your-writes.
        if let Some((_, _, value)) = self
            .writes
            .iter()
            .rev()
            .find(|(t, k, _)| *t == table && *k == key)
        {
            return Ok(Some(value.clone()));
        }
        self.lock(table, key)?;
        self.stats.reads += 1;
        let misses_before = self.engine.pool.misses();
        let slot = self
            .engine
            .directory
            .read()
            .get(&(table.index(), key))
            .copied();
        let result = match slot {
            Some(slot) => Some(
                self.engine
                    .read_slot(slot)
                    .map_err(|e| TxnError::Io(e.to_string()))?,
            ),
            None => None,
        };
        self.stats.page_misses += self.engine.pool.misses() - misses_before;
        Ok(result)
    }

    fn write(&mut self, table: Table, key: u64, value: Vec<u8>) {
        self.stats.writes += 1;
        self.writes.push((table, key, value));
    }

    fn commit(self: Box<Self>) -> Result<TxnStats, TxnError> {
        let mut this = *self;
        // Acquire locks for any written key not yet locked (writes may target new rows).
        let targets: Vec<(Table, u64)> = this.writes.iter().map(|(t, k, _)| (*t, *k)).collect();
        for (table, key) in targets {
            this.lock(table, key)?;
        }
        // Write-ahead logging, then in-place page updates.
        if !this.writes.is_empty() {
            this.stats.log_bytes = this
                .engine
                .wal
                .append(&this.writes)
                .map_err(|e| TxnError::Io(e.to_string()))?;
            let misses_before = this.engine.pool.misses();
            for (table, key, value) in &this.writes {
                this.engine
                    .store(*table, *key, value)
                    .map_err(|e| TxnError::Io(e.to_string()))?;
            }
            this.stats.page_misses += this.engine.pool.misses() - misses_before;
        }
        // Dropping `held` releases all stripe locks (strict 2PL release at commit).
        Ok(this.stats)
    }

    fn abort(self: Box<Self>) {
        // Buffered writes were never applied; locks release on drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silo::run_with_retries;

    fn temp_engine() -> ShoreEngine {
        ShoreEngine::temp(32).expect("temp engine")
    }

    #[test]
    fn load_read_write_round_trip() {
        let engine = temp_engine();
        engine.load(Table::Customer, 5, vec![1, 2, 3]);
        let mut txn = engine.begin();
        assert_eq!(txn.read(Table::Customer, 5).unwrap(), Some(vec![1, 2, 3]));
        txn.write(Table::Customer, 5, vec![9, 9, 9, 9]);
        assert_eq!(
            txn.read(Table::Customer, 5).unwrap(),
            Some(vec![9, 9, 9, 9])
        );
        let stats = txn.commit().unwrap();
        assert!(stats.log_bytes > 0);
        let mut check = engine.begin();
        assert_eq!(
            check.read(Table::Customer, 5).unwrap(),
            Some(vec![9, 9, 9, 9])
        );
        check.abort();
    }

    #[test]
    fn data_survives_buffer_pool_eviction() {
        // A pool of only 8 pages with >8 pages of data forces evictions and re-reads.
        let engine = temp_engine();
        let rows = 2_000u64;
        for k in 0..rows {
            engine.load(Table::Stock, k, vec![(k % 251) as u8; 64]);
        }
        assert!(engine.pool_misses() > 0 || rows * 64 < (32 * PAGE_SIZE) as u64);
        for k in (0..rows).step_by(97) {
            let mut txn = engine.begin();
            assert_eq!(
                txn.read(Table::Stock, k).unwrap(),
                Some(vec![(k % 251) as u8; 64])
            );
            txn.abort();
        }
    }

    #[test]
    fn wal_grows_with_commits() {
        let engine = temp_engine();
        let before = engine.wal_bytes();
        let mut txn = engine.begin();
        txn.write(Table::History, 1, vec![0u8; 100]);
        txn.commit().unwrap();
        assert!(engine.wal_bytes() > before + 100);
    }

    #[test]
    fn conflicting_transactions_get_no_wait_conflicts() {
        let engine = temp_engine();
        engine.load(Table::District, 3, vec![0]);
        let mut t1 = engine.begin();
        let _ = t1.read(Table::District, 3).unwrap(); // t1 now holds the stripe lock
        let mut t2 = engine.begin();
        assert_eq!(t2.read(Table::District, 3).unwrap_err(), TxnError::Conflict);
        t2.abort();
        t1.abort();
        // After t1 releases, the row is readable again.
        let mut t3 = engine.begin();
        assert_eq!(t3.read(Table::District, 3).unwrap(), Some(vec![0]));
        t3.abort();
    }

    #[test]
    fn concurrent_increments_are_serializable() {
        use std::sync::Arc;
        let engine = Arc::new(temp_engine());
        engine.load(Table::Warehouse, 1, 0u64.to_le_bytes().to_vec());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        run_with_retries(engine.as_ref(), 1_000_000, |txn| {
                            let v = txn.read(Table::Warehouse, 1)?.expect("loaded");
                            let n = u64::from_le_bytes(v[..8].try_into().expect("8 bytes"));
                            txn.write(Table::Warehouse, 1, (n + 1).to_le_bytes().to_vec());
                            Ok(())
                        })
                        .expect("increment commits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut check = engine.begin();
        let v = check.read(Table::Warehouse, 1).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 800);
        check.abort();
    }

    #[test]
    fn table_len_counts_rows_per_table() {
        let engine = temp_engine();
        for k in 0..10 {
            engine.load(Table::Item, k, vec![0]);
        }
        engine.load(Table::Stock, 0, vec![0]);
        assert_eq!(engine.table_len(Table::Item), 10);
        assert_eq!(engine.table_len(Table::Stock), 1);
        assert_eq!(engine.table_len(Table::Orders), 0);
    }
}
