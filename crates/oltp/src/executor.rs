//! TPC-C schema rows, initial load, and transaction logic.
//!
//! Both OLTP engines run the same TPC-C implementation; the engine only provides
//! transactional `(table, key) -> bytes` storage.  Rows use compact fixed layouts
//! (little-endian integers) rather than a generic serializer so that per-row work stays
//! representative of a tuned OLTP system.

use crate::engine::{pack_key, Engine, Table, TxnError, TxnStats};
use crate::silo::run_with_retries;
use tailbench_workloads::tpcc::{
    CustomerSelector, DeliveryInput, NewOrderInput, OrderStatusInput, PaymentInput,
    StockLevelInput, TpccConfig, TpccTransaction, DISTRICTS_PER_WAREHOUSE,
};

/// Fixed-point helpers for the row encodings.
mod row {
    /// Encodes a list of `u64` fields.
    #[must_use]
    pub fn encode(fields: &[u64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(fields.len() * 8);
        for f in fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Decodes field `idx` from an encoded row.
    #[must_use]
    pub fn field(data: &[u8], idx: usize) -> u64 {
        data.get(idx * 8..idx * 8 + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .unwrap_or(0)
    }

    /// Replaces field `idx` in an encoded row.
    pub fn set_field(data: &mut [u8], idx: usize, value: u64) {
        if let Some(slice) = data.get_mut(idx * 8..idx * 8 + 8) {
            slice.copy_from_slice(&value.to_le_bytes());
        }
    }
}

/// Result of executing one TPC-C transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpccOutcome {
    /// Whether the transaction committed (TPC-C's 1% forced rollbacks report `false`).
    pub committed: bool,
    /// Engine-level statistics of the final (committed or aborted) attempt.
    pub stats: TxnStats,
}

/// Loads the initial TPC-C database into an engine.
pub fn load_database(engine: &dyn Engine, config: &TpccConfig) {
    for item in 1..=config.items {
        // ITEM: price (cents), popularity counter.
        engine.load(
            Table::Item,
            u64::from(item),
            row::encode(&[u64::from(item % 9_900 + 100), 0]),
        );
    }
    for w in 1..=config.warehouses {
        // WAREHOUSE: ytd.
        engine.load(Table::Warehouse, u64::from(w), row::encode(&[0]));
        for item in 1..=config.items {
            // STOCK: quantity, ytd, order_count.
            engine.load(
                Table::Stock,
                pack_key(w, 0, item, 0),
                row::encode(&[u64::from(91 + (item * 7 + w) % 10), 0, 0]),
            );
        }
        for d in 1..=DISTRICTS_PER_WAREHOUSE {
            // DISTRICT: next order id, ytd.
            engine.load(Table::District, pack_key(w, d, 0, 0), row::encode(&[1, 0]));
            for c in 1..=config.customers_per_district {
                // CUSTOMER: balance (cents, offset by 1<<40 to stay unsigned), ytd_payment,
                // payment_count, last_order_id, name_hash.
                engine.load(
                    Table::Customer,
                    pack_key(w, d, c, 0),
                    row::encode(&[1 << 40, 0, 0, 0, u64::from(c % 1_000)]),
                );
            }
        }
    }
}

/// Executes TPC-C transactions against an engine.
pub struct TpccExecutor<E> {
    engine: E,
    config: TpccConfig,
    max_retries: usize,
}

impl<E: std::ops::Deref<Target = dyn Engine> + Send + Sync> TpccExecutor<E> {
    /// Wraps an engine that has already been loaded with [`load_database`].
    #[must_use]
    pub fn new(engine: E, config: TpccConfig) -> Self {
        TpccExecutor {
            engine,
            config,
            max_retries: 100_000,
        }
    }

    /// The workload configuration.
    #[must_use]
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &dyn Engine {
        &*self.engine
    }

    /// Executes one transaction, retrying on concurrency conflicts.
    pub fn execute(&self, txn: &TpccTransaction) -> TpccOutcome {
        let result = match txn {
            TpccTransaction::NewOrder(input) => self.new_order(input),
            TpccTransaction::Payment(input) => self.payment(input),
            TpccTransaction::OrderStatus(input) => self.order_status(input),
            TpccTransaction::Delivery(input) => self.delivery(input),
            TpccTransaction::StockLevel(input) => self.stock_level(input),
        };
        match result {
            Ok(stats) => TpccOutcome {
                committed: true,
                stats,
            },
            Err(TxnError::Aborted) => TpccOutcome {
                committed: false,
                stats: TxnStats::default(),
            },
            Err(_) => TpccOutcome {
                committed: false,
                stats: TxnStats::default(),
            },
        }
    }

    fn customer_key(&self, warehouse: u32, district: u32, selector: &CustomerSelector) -> u64 {
        let id = match selector {
            CustomerSelector::ById(id) => *id,
            // Last-name lookups hash the name onto the id space (a real system scans a
            // secondary index; the work profile accounts for the extra reads).
            CustomerSelector::ByLastName(name) => {
                let h: u64 = name
                    .bytes()
                    .fold(5_381u64, |a, b| a.wrapping_mul(33) ^ u64::from(b));
                (h % u64::from(self.config.customers_per_district)) as u32 + 1
            }
        };
        pack_key(
            warehouse,
            district,
            id.min(self.config.customers_per_district),
            0,
        )
    }

    fn new_order(&self, input: &NewOrderInput) -> Result<TxnStats, TxnError> {
        let (_, stats) = run_with_retries(&*self.engine, self.max_retries, |txn| {
            let district_key = pack_key(input.warehouse, input.district, 0, 0);
            let mut district =
                txn.read(Table::District, district_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::District,
                        key: district_key,
                    })?;
            let order_id = row::field(&district, 0);
            row::set_field(&mut district, 0, order_id + 1);
            txn.write(Table::District, district_key, district);

            let mut total = 0u64;
            for (line_no, line) in input.lines.iter().enumerate() {
                let item_key = u64::from(line.item_id);
                let item = txn.read(Table::Item, item_key)?.ok_or(TxnError::NotFound {
                    table: Table::Item,
                    key: item_key,
                })?;
                let price = row::field(&item, 0);

                let stock_key = pack_key(line.supply_warehouse, 0, line.item_id, 0);
                let mut stock = txn
                    .read(Table::Stock, stock_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::Stock,
                        key: stock_key,
                    })?;
                let mut quantity = row::field(&stock, 0);
                if quantity < u64::from(line.quantity) + 10 {
                    quantity += 91;
                }
                quantity -= u64::from(line.quantity);
                let ytd = row::field(&stock, 1) + u64::from(line.quantity);
                let order_count = row::field(&stock, 2) + 1;
                row::set_field(&mut stock, 0, quantity);
                row::set_field(&mut stock, 1, ytd);
                row::set_field(&mut stock, 2, order_count);
                txn.write(Table::Stock, stock_key, stock);

                let amount = price * u64::from(line.quantity);
                total += amount;
                txn.write(
                    Table::OrderLine,
                    pack_key(
                        input.warehouse,
                        input.district,
                        order_id as u32,
                        line_no as u32,
                    ),
                    row::encode(&[u64::from(line.item_id), u64::from(line.quantity), amount]),
                );
            }

            // TPC-C forces ~1% of new-order transactions to roll back after doing the work.
            if input.rollback {
                return Err(TxnError::Aborted);
            }

            let customer_key = pack_key(input.warehouse, input.district, input.customer, 0);
            let mut customer =
                txn.read(Table::Customer, customer_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::Customer,
                        key: customer_key,
                    })?;
            row::set_field(&mut customer, 3, order_id);
            txn.write(Table::Customer, customer_key, customer);

            txn.write(
                Table::Orders,
                pack_key(input.warehouse, input.district, order_id as u32, 0),
                row::encode(&[
                    u64::from(input.customer),
                    input.lines.len() as u64,
                    total,
                    0,
                ]),
            );
            txn.write(
                Table::NewOrder,
                pack_key(input.warehouse, input.district, order_id as u32, 0),
                row::encode(&[1]),
            );
            Ok(())
        })?;
        Ok(stats)
    }

    fn payment(&self, input: &PaymentInput) -> Result<TxnStats, TxnError> {
        let (_, stats) = run_with_retries(&*self.engine, self.max_retries, |txn| {
            let warehouse_key = u64::from(input.warehouse);
            let mut warehouse =
                txn.read(Table::Warehouse, warehouse_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::Warehouse,
                        key: warehouse_key,
                    })?;
            let warehouse_ytd = row::field(&warehouse, 0) + u64::from(input.amount);
            row::set_field(&mut warehouse, 0, warehouse_ytd);
            txn.write(Table::Warehouse, warehouse_key, warehouse);

            let district_key = pack_key(input.warehouse, input.district, 0, 0);
            let mut district =
                txn.read(Table::District, district_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::District,
                        key: district_key,
                    })?;
            let district_ytd = row::field(&district, 1) + u64::from(input.amount);
            row::set_field(&mut district, 1, district_ytd);
            txn.write(Table::District, district_key, district);

            let customer_key = self.customer_key(
                input.customer_warehouse,
                input.customer_district,
                &input.customer,
            );
            let mut customer =
                txn.read(Table::Customer, customer_key)?
                    .ok_or(TxnError::NotFound {
                        table: Table::Customer,
                        key: customer_key,
                    })?;
            let balance = row::field(&customer, 0) - u64::from(input.amount);
            let ytd_payment = row::field(&customer, 1) + u64::from(input.amount);
            let payment_count = row::field(&customer, 2) + 1;
            row::set_field(&mut customer, 0, balance);
            row::set_field(&mut customer, 1, ytd_payment);
            row::set_field(&mut customer, 2, payment_count);
            txn.write(Table::Customer, customer_key, customer);

            txn.write(
                Table::History,
                pack_key(
                    input.warehouse,
                    input.district,
                    (district_ytd % (1 << 22)) as u32,
                    0,
                ),
                row::encode(&[u64::from(input.amount)]),
            );
            Ok(())
        })?;
        Ok(stats)
    }

    fn order_status(&self, input: &OrderStatusInput) -> Result<TxnStats, TxnError> {
        let (_, stats) = run_with_retries(&*self.engine, self.max_retries, |txn| {
            let customer_key = self.customer_key(input.warehouse, input.district, &input.customer);
            let customer = txn
                .read(Table::Customer, customer_key)?
                .ok_or(TxnError::NotFound {
                    table: Table::Customer,
                    key: customer_key,
                })?;
            let last_order = row::field(&customer, 3);
            if last_order > 0 {
                let order = txn.read(
                    Table::Orders,
                    pack_key(input.warehouse, input.district, last_order as u32, 0),
                )?;
                if let Some(order) = order {
                    let lines = row::field(&order, 1);
                    for line_no in 0..lines {
                        let _ = txn.read(
                            Table::OrderLine,
                            pack_key(
                                input.warehouse,
                                input.district,
                                last_order as u32,
                                line_no as u32,
                            ),
                        )?;
                    }
                }
            }
            Ok(())
        })?;
        Ok(stats)
    }

    fn delivery(&self, input: &DeliveryInput) -> Result<TxnStats, TxnError> {
        let (_, stats) = run_with_retries(&*self.engine, self.max_retries, |txn| {
            for district in 1..=DISTRICTS_PER_WAREHOUSE {
                let district_key = pack_key(input.warehouse, district, 0, 0);
                let Some(district_row) = txn.read(Table::District, district_key)? else {
                    continue;
                };
                let next_order = row::field(&district_row, 0);
                // Deliver the most recent order that still has a NEW-ORDER entry,
                // scanning back a bounded window.
                for order_id in (next_order.saturating_sub(20)..next_order).rev() {
                    let new_order_key = pack_key(input.warehouse, district, order_id as u32, 0);
                    if let Some(pending) = txn.read(Table::NewOrder, new_order_key)? {
                        if row::field(&pending, 0) == 1 {
                            txn.write(Table::NewOrder, new_order_key, row::encode(&[0]));
                            let order_key = pack_key(input.warehouse, district, order_id as u32, 0);
                            if let Some(mut order) = txn.read(Table::Orders, order_key)? {
                                row::set_field(&mut order, 3, u64::from(input.carrier));
                                txn.write(Table::Orders, order_key, order);
                            }
                            break;
                        }
                    }
                }
            }
            Ok(())
        })?;
        Ok(stats)
    }

    fn stock_level(&self, input: &StockLevelInput) -> Result<TxnStats, TxnError> {
        let (_, stats) = run_with_retries(&*self.engine, self.max_retries, |txn| {
            let district_key = pack_key(input.warehouse, input.district, 0, 0);
            let Some(district_row) = txn.read(Table::District, district_key)? else {
                return Ok(());
            };
            let next_order = row::field(&district_row, 0);
            let mut low = 0u64;
            for order_id in next_order.saturating_sub(20)..next_order {
                let order_key = pack_key(input.warehouse, input.district, order_id as u32, 0);
                let Some(order) = txn.read(Table::Orders, order_key)? else {
                    continue;
                };
                let lines = row::field(&order, 1);
                for line_no in 0..lines {
                    let line_key = pack_key(
                        input.warehouse,
                        input.district,
                        order_id as u32,
                        line_no as u32,
                    );
                    let Some(line) = txn.read(Table::OrderLine, line_key)? else {
                        continue;
                    };
                    let item = row::field(&line, 0);
                    let stock_key = pack_key(input.warehouse, 0, item as u32, 0);
                    if let Some(stock) = txn.read(Table::Stock, stock_key)? {
                        if row::field(&stock, 0) < u64::from(input.threshold) {
                            low += 1;
                        }
                    }
                }
            }
            let _ = low;
            Ok(())
        })?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silo::SiloEngine;
    use std::sync::Arc;
    use tailbench_workloads::rng::seeded_rng;
    use tailbench_workloads::tpcc::TpccGenerator;

    fn executor() -> TpccExecutor<Arc<dyn Engine>> {
        let config = TpccConfig::small();
        let engine: Arc<dyn Engine> = Arc::new(SiloEngine::new());
        load_database(&*engine, &config);
        TpccExecutor::new(engine, config)
    }

    #[test]
    fn load_populates_all_tables() {
        let exec = executor();
        let cfg = exec.config().clone();
        assert_eq!(exec.engine().table_len(Table::Item), cfg.items as usize);
        assert_eq!(
            exec.engine().table_len(Table::Warehouse),
            cfg.warehouses as usize
        );
        assert_eq!(
            exec.engine().table_len(Table::District),
            (cfg.warehouses * DISTRICTS_PER_WAREHOUSE) as usize
        );
        assert_eq!(
            exec.engine().table_len(Table::Customer),
            (cfg.warehouses * DISTRICTS_PER_WAREHOUSE * cfg.customers_per_district) as usize
        );
    }

    #[test]
    fn standard_mix_mostly_commits() {
        let exec = executor();
        let mut rng = seeded_rng(1, 0);
        let generator = TpccGenerator::new(exec.config().clone(), &mut rng);
        let mut committed = 0usize;
        let mut aborted = 0usize;
        for _ in 0..500 {
            let txn = generator.next_transaction(&mut rng);
            let outcome = exec.execute(&txn);
            if outcome.committed {
                committed += 1;
            } else {
                aborted += 1;
            }
        }
        // Only the ~1% forced rollbacks of new-order (45% of the mix) should abort.
        assert!(
            committed > 480,
            "committed = {committed}, aborted = {aborted}"
        );
    }

    #[test]
    fn new_order_increments_district_counter_and_writes_lines() {
        let exec = executor();
        let mut rng = seeded_rng(2, 0);
        let generator = TpccGenerator::new(exec.config().clone(), &mut rng);
        let mut input = generator.new_order(&mut rng, 1);
        input.rollback = false;
        let before_lines = exec.engine().table_len(Table::OrderLine);
        let outcome = exec.execute(&TpccTransaction::NewOrder(input.clone()));
        assert!(outcome.committed);
        assert!(outcome.stats.writes >= input.lines.len() as u64 + 3);
        assert_eq!(
            exec.engine().table_len(Table::OrderLine),
            before_lines + input.lines.len()
        );
    }

    #[test]
    fn forced_rollbacks_do_not_commit() {
        let exec = executor();
        let mut rng = seeded_rng(3, 0);
        let generator = TpccGenerator::new(exec.config().clone(), &mut rng);
        let mut input = generator.new_order(&mut rng, 1);
        input.rollback = true;
        let before = exec.engine().table_len(Table::Orders);
        let outcome = exec.execute(&TpccTransaction::NewOrder(input));
        assert!(!outcome.committed);
        assert_eq!(exec.engine().table_len(Table::Orders), before);
    }

    #[test]
    fn payment_accumulates_warehouse_ytd() {
        let exec = executor();
        let input = PaymentInput {
            warehouse: 1,
            district: 1,
            customer_warehouse: 1,
            customer_district: 1,
            customer: CustomerSelector::ById(1),
            amount: 1_000,
        };
        assert!(
            exec.execute(&TpccTransaction::Payment(input.clone()))
                .committed
        );
        assert!(exec.execute(&TpccTransaction::Payment(input)).committed);
        // Read the warehouse ytd back through a fresh transaction.
        let mut txn = exec.engine().begin();
        let wh = txn.read(Table::Warehouse, 1).unwrap().unwrap();
        assert_eq!(row::field(&wh, 0), 2_000);
        txn.abort();
    }

    #[test]
    fn order_status_and_stock_level_are_read_only() {
        let exec = executor();
        let before = exec.engine().table_len(Table::Orders);
        let status = exec.execute(&TpccTransaction::OrderStatus(OrderStatusInput {
            warehouse: 1,
            district: 1,
            customer: CustomerSelector::ById(1),
        }));
        let stock = exec.execute(&TpccTransaction::StockLevel(StockLevelInput {
            warehouse: 1,
            district: 1,
            threshold: 15,
        }));
        assert!(status.committed && stock.committed);
        assert_eq!(status.stats.writes, 0);
        assert_eq!(stock.stats.writes, 0);
        assert_eq!(exec.engine().table_len(Table::Orders), before);
    }

    #[test]
    fn works_on_shore_engine_too() {
        let config = TpccConfig::small();
        let engine: Arc<dyn Engine> = Arc::new(crate::shore::ShoreEngine::temp(256).unwrap());
        load_database(&*engine, &config);
        let exec = TpccExecutor::new(engine, config);
        let mut rng = seeded_rng(4, 0);
        let generator = TpccGenerator::new(exec.config().clone(), &mut rng);
        let mut committed = 0u32;
        for _ in 0..100 {
            let txn = generator.next_transaction(&mut rng);
            let outcome = exec.execute(&txn);
            // Only TPC-C's forced ~1% new-order rollbacks may abort; everything else
            // must commit on the shore engine, exactly as on silo.
            let forced = matches!(&txn, TpccTransaction::NewOrder(input) if input.rollback);
            assert_eq!(outcome.committed, !forced, "unexpected outcome for {txn:?}");
            if outcome.committed {
                committed += 1;
            }
        }
        assert!(committed >= 90, "committed = {committed}");
    }
}
