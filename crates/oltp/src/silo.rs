//! The silo engine: in-memory optimistic concurrency control.
//!
//! Silo (Tu et al., SOSP 2013) executes transactions optimistically: reads record a
//! per-record transaction id (TID), writes are buffered, and commit (1) locks the write
//! set in a deterministic order, (2) validates that every read TID is unchanged and
//! unlocked, and (3) installs the writes with a new TID.  There are no global locks on
//! the commit path — but the protocol's lock/validate/install sequence is inherently a
//! critical section per record, which is what limits silo's multithreaded scaling in the
//! paper's case study (§VII).

use crate::engine::{Engine, Table, Transaction, TxnError, TxnStats};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Re-export for documentation purposes: pack_key is the canonical key builder.
pub use crate::engine::pack_key as key;

/// A versioned record: the TID doubles as a lock word (odd = locked).
#[derive(Debug)]
struct VersionedRecord {
    tid: AtomicU64,
    data: RwLock<Vec<u8>>,
}

/// One table: a hash map of versioned records behind a shard of locks for insertion.
#[derive(Debug, Default)]
struct SiloTable {
    rows: RwLock<HashMap<u64, Arc<VersionedRecord>>>,
}

/// The in-memory OCC engine.
#[derive(Debug)]
pub struct SiloEngine {
    tables: Vec<SiloTable>,
    next_tid: AtomicU64,
    commit_lock_order: Mutex<()>,
}

impl Default for SiloEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SiloEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        SiloEngine {
            tables: Table::ALL.iter().map(|_| SiloTable::default()).collect(),
            // Bulk-loaded rows carry TID 2, so committed transactions start at 4 to keep
            // every post-load version distinguishable from the loaded one.
            next_tid: AtomicU64::new(4),
            commit_lock_order: Mutex::new(()),
        }
    }

    fn record(&self, table: Table, key: u64) -> Option<Arc<VersionedRecord>> {
        self.tables[table.index()].rows.read().get(&key).cloned()
    }

    fn insert_record(
        &self,
        table: Table,
        key: u64,
        data: Vec<u8>,
        tid: u64,
    ) -> Arc<VersionedRecord> {
        let record = Arc::new(VersionedRecord {
            tid: AtomicU64::new(tid),
            data: RwLock::new(data),
        });
        self.tables[table.index()]
            .rows
            .write()
            .insert(key, Arc::clone(&record));
        record
    }
}

impl Engine for SiloEngine {
    fn name(&self) -> &str {
        "silo"
    }

    fn begin(&self) -> Box<dyn Transaction + '_> {
        Box::new(SiloTransaction {
            engine: self,
            read_set: Vec::new(),
            write_set: HashMap::new(),
            stats: TxnStats::default(),
        })
    }

    fn load(&self, table: Table, key: u64, value: Vec<u8>) {
        self.insert_record(table, key, value, 2);
    }

    fn table_len(&self, table: Table) -> usize {
        self.tables[table.index()].rows.read().len()
    }
}

/// An in-flight optimistic transaction.
struct SiloTransaction<'a> {
    engine: &'a SiloEngine,
    /// (table, key, record, observed TID).
    read_set: Vec<(Table, u64, Arc<VersionedRecord>, u64)>,
    write_set: HashMap<(Table, u64), Vec<u8>>,
    stats: TxnStats,
}

impl Transaction for SiloTransaction<'_> {
    fn read(&mut self, table: Table, key: u64) -> Result<Option<Vec<u8>>, TxnError> {
        // Read-your-writes.
        if let Some(buffered) = self.write_set.get(&(table, key)) {
            return Ok(Some(buffered.clone()));
        }
        self.stats.reads += 1;
        match self.engine.record(table, key) {
            Some(record) => {
                let tid = record.tid.load(Ordering::Acquire);
                let data = record.data.read().clone();
                self.read_set.push((table, key, record, tid & !1));
                Ok(Some(data))
            }
            None => Ok(None),
        }
    }

    fn write(&mut self, table: Table, key: u64, value: Vec<u8>) {
        self.stats.writes += 1;
        self.write_set.insert((table, key), value);
    }

    fn commit(self: Box<Self>) -> Result<TxnStats, TxnError> {
        let this = *self;
        let SiloTransaction {
            engine,
            read_set,
            write_set,
            stats,
        } = this;

        // Phase 1: lock the write set in deterministic (table, key) order.  Missing rows
        // are created as locked placeholders (TPC-C inserts new orders / order lines).
        let mut ordered: Vec<((Table, u64), Vec<u8>)> = write_set.into_iter().collect();
        ordered.sort_by_key(|((table, key), _)| (table.index(), *key));
        // The insertion path takes a short global ticket to keep placeholder creation
        // deadlock-free; record-level locking itself stays per-record.
        let mut locked: Vec<(Arc<VersionedRecord>, Vec<u8>)> = Vec::with_capacity(ordered.len());
        {
            let _ticket = engine.commit_lock_order.lock();
            for ((table, key), value) in ordered {
                let record = match engine.record(table, key) {
                    Some(r) => r,
                    None => engine.insert_record(table, key, Vec::new(), 0),
                };
                // Spin-lock the record by setting the low TID bit.
                loop {
                    let current = record.tid.load(Ordering::Acquire);
                    if current & 1 == 0
                        && record
                            .tid
                            .compare_exchange(
                                current,
                                current | 1,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    {
                        break;
                    }
                    std::hint::spin_loop();
                }
                locked.push((record, value));
            }
        }

        // Phase 2: validate the read set.
        for (_, _, record, observed_tid) in &read_set {
            let current = record.tid.load(Ordering::Acquire);
            let locked_by_us = locked.iter().any(|(r, _)| Arc::ptr_eq(r, record));
            let is_locked = current & 1 == 1;
            let version_changed = (current & !1) != *observed_tid;
            if version_changed || (is_locked && !locked_by_us) {
                // Release locks and report a conflict; the retry loop in
                // `run_with_retries` accounts for the retry.
                for (record, _) in &locked {
                    record.tid.fetch_and(!1, Ordering::Release);
                }
                return Err(TxnError::Conflict);
            }
        }

        // Phase 3: install writes with a fresh TID and unlock.
        let new_tid = engine.next_tid.fetch_add(2, Ordering::AcqRel);
        for (record, value) in locked {
            *record.data.write() = value;
            record.tid.store(new_tid & !1, Ordering::Release);
        }
        Ok(stats)
    }

    fn abort(self: Box<Self>) {
        // Nothing was installed; dropping the buffered sets is enough.
    }
}

/// Runs a transaction closure with automatic retry on optimistic conflicts.
///
/// Returns the closure result together with accumulated statistics (retries included).
///
/// # Errors
///
/// Propagates non-conflict errors from the closure or commit path; gives up after
/// `max_retries` consecutive conflicts and returns [`TxnError::Conflict`].
pub fn run_with_retries<T>(
    engine: &dyn Engine,
    max_retries: usize,
    mut body: impl FnMut(&mut dyn Transaction) -> Result<T, TxnError>,
) -> Result<(T, TxnStats), TxnError> {
    let mut retries = 0u64;
    loop {
        let mut txn = engine.begin();
        match body(txn.as_mut()) {
            Ok(value) => match txn.commit() {
                Ok(mut stats) => {
                    stats.retries += retries;
                    return Ok((value, stats));
                }
                Err(TxnError::Conflict) if (retries as usize) < max_retries => {
                    retries += 1;
                }
                Err(e) => return Err(e),
            },
            Err(TxnError::Aborted) => {
                txn.abort();
                return Err(TxnError::Aborted);
            }
            // No-wait engines (shore) surface lock conflicts from the body itself;
            // retry those the same way as commit-time validation failures.
            Err(TxnError::Conflict) if (retries as usize) < max_retries => {
                txn.abort();
                retries += 1;
            }
            Err(e) => {
                txn.abort();
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes_and_commit() {
        let engine = SiloEngine::new();
        engine.load(Table::Stock, 1, vec![10]);
        let mut txn = engine.begin();
        assert_eq!(txn.read(Table::Stock, 1).unwrap(), Some(vec![10]));
        txn.write(Table::Stock, 1, vec![9]);
        assert_eq!(txn.read(Table::Stock, 1).unwrap(), Some(vec![9]));
        let stats = txn.commit().unwrap();
        assert_eq!(stats.writes, 1);
        // A later transaction sees the committed value.
        let mut txn2 = engine.begin();
        assert_eq!(txn2.read(Table::Stock, 1).unwrap(), Some(vec![9]));
        txn2.abort();
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let engine = SiloEngine::new();
        engine.load(Table::Customer, 7, vec![1]);
        let mut txn = engine.begin();
        txn.write(Table::Customer, 7, vec![99]);
        txn.abort();
        let mut check = engine.begin();
        assert_eq!(check.read(Table::Customer, 7).unwrap(), Some(vec![1]));
        check.abort();
    }

    #[test]
    fn write_write_conflict_is_detected() {
        let engine = SiloEngine::new();
        engine.load(Table::District, 1, vec![0]);
        // t1 reads, then t2 reads+writes+commits, then t1 writes+commits -> conflict.
        let mut t1 = engine.begin();
        let _ = t1.read(Table::District, 1).unwrap();
        let mut t2 = engine.begin();
        let _ = t2.read(Table::District, 1).unwrap();
        t2.write(Table::District, 1, vec![2]);
        t2.commit().unwrap();
        t1.write(Table::District, 1, vec![1]);
        assert_eq!(t1.commit().unwrap_err(), TxnError::Conflict);
        // The committed value is t2's.
        let mut check = engine.begin();
        assert_eq!(check.read(Table::District, 1).unwrap(), Some(vec![2]));
        check.abort();
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let engine = SiloEngine::new();
        engine.load(Table::Item, 1, vec![5]);
        let mut t1 = engine.begin();
        let _ = t1.read(Table::Item, 1).unwrap();
        let mut t2 = engine.begin();
        let _ = t2.read(Table::Item, 1).unwrap();
        assert!(t1.commit().is_ok());
        assert!(t2.commit().is_ok());
    }

    #[test]
    fn retry_helper_converges_under_contention() {
        use std::sync::Arc;
        let engine = Arc::new(SiloEngine::new());
        engine.load(Table::Warehouse, 1, 0u64.to_le_bytes().to_vec());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let (_, _stats) = run_with_retries(engine.as_ref(), 10_000, |txn| {
                            let current =
                                txn.read(Table::Warehouse, 1)?.ok_or(TxnError::NotFound {
                                    table: Table::Warehouse,
                                    key: 1,
                                })?;
                            let value =
                                u64::from_le_bytes(current[..8].try_into().expect("8 bytes"));
                            txn.write(Table::Warehouse, 1, (value + 1).to_le_bytes().to_vec());
                            Ok(())
                        })
                        .expect("increment eventually commits");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut check = engine.begin();
        let value = check.read(Table::Warehouse, 1).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(value[..8].try_into().unwrap()), 2_000);
        check.abort();
    }

    #[test]
    fn table_len_counts_loaded_rows() {
        let engine = SiloEngine::new();
        for k in 0..100 {
            engine.load(Table::OrderLine, k, vec![0]);
        }
        assert_eq!(engine.table_len(Table::OrderLine), 100);
        assert_eq!(engine.table_len(Table::History), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn serial_transactions_match_a_hashmap_model(
            ops in prop::collection::vec((0u64..50, any::<u8>(), any::<bool>()), 1..100)
        ) {
            let engine = SiloEngine::new();
            let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
            for (key, value, is_write) in ops {
                let mut txn = engine.begin();
                if is_write {
                    txn.write(Table::Customer, key, vec![value]);
                    model.insert(key, vec![value]);
                    prop_assert!(txn.commit().is_ok());
                } else {
                    let got = txn.read(Table::Customer, key).unwrap();
                    prop_assert_eq!(got, model.get(&key).cloned());
                    txn.abort();
                }
            }
        }
    }
}
