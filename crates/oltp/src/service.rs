//! silo and shore as TailBench applications.
//!
//! Both applications execute the same TPC-C workload; they differ only in the storage
//! engine underneath ([`SiloEngine`](crate::silo::SiloEngine) vs
//! [`ShoreEngine`](crate::shore::ShoreEngine)) and consequently in their work profiles:
//! silo transactions are short with a noticeable synchronization component (the paper's
//! §VII case study attributes silo's poor scaling to synchronization), shore transactions
//! are longer and touch the buffer pool and the log.

use crate::engine::Engine;
use crate::executor::{load_database, TpccExecutor, TpccOutcome};
use crate::shore::ShoreEngine;
use crate::silo::SiloEngine;
use std::sync::Arc;
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};
use tailbench_workloads::tpcc::{
    CustomerSelector, DeliveryInput, NewOrderInput, OrderLineInput, OrderStatusInput, PaymentInput,
    StockLevelInput, TpccConfig, TpccGenerator, TpccTransaction,
};

/// Wire encoding of TPC-C transaction requests.
pub mod codec {
    use super::*;

    fn push_selector(out: &mut Vec<u8>, selector: &CustomerSelector) {
        match selector {
            CustomerSelector::ById(id) => {
                out.push(0);
                out.extend_from_slice(&id.to_le_bytes());
            }
            CustomerSelector::ByLastName(name) => {
                out.push(1);
                out.push(name.len() as u8);
                out.extend_from_slice(name.as_bytes());
            }
        }
    }

    fn read_selector(data: &[u8]) -> Option<(CustomerSelector, usize)> {
        match *data.first()? {
            0 => Some((
                CustomerSelector::ById(u32::from_le_bytes(data.get(1..5)?.try_into().ok()?)),
                5,
            )),
            1 => {
                let len = *data.get(1)? as usize;
                let name = std::str::from_utf8(data.get(2..2 + len)?).ok()?;
                Some((CustomerSelector::ByLastName(name.to_string()), 2 + len))
            }
            _ => None,
        }
    }

    /// Encodes a transaction request.
    #[must_use]
    pub fn encode(txn: &TpccTransaction) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match txn {
            TpccTransaction::NewOrder(input) => {
                out.push(0);
                out.extend_from_slice(&input.warehouse.to_le_bytes());
                out.extend_from_slice(&input.district.to_le_bytes());
                out.extend_from_slice(&input.customer.to_le_bytes());
                out.push(u8::from(input.rollback));
                out.push(input.lines.len() as u8);
                for line in &input.lines {
                    out.extend_from_slice(&line.item_id.to_le_bytes());
                    out.extend_from_slice(&line.supply_warehouse.to_le_bytes());
                    out.extend_from_slice(&line.quantity.to_le_bytes());
                }
            }
            TpccTransaction::Payment(input) => {
                out.push(1);
                out.extend_from_slice(&input.warehouse.to_le_bytes());
                out.extend_from_slice(&input.district.to_le_bytes());
                out.extend_from_slice(&input.customer_warehouse.to_le_bytes());
                out.extend_from_slice(&input.customer_district.to_le_bytes());
                out.extend_from_slice(&input.amount.to_le_bytes());
                push_selector(&mut out, &input.customer);
            }
            TpccTransaction::OrderStatus(input) => {
                out.push(2);
                out.extend_from_slice(&input.warehouse.to_le_bytes());
                out.extend_from_slice(&input.district.to_le_bytes());
                push_selector(&mut out, &input.customer);
            }
            TpccTransaction::Delivery(input) => {
                out.push(3);
                out.extend_from_slice(&input.warehouse.to_le_bytes());
                out.extend_from_slice(&input.carrier.to_le_bytes());
            }
            TpccTransaction::StockLevel(input) => {
                out.push(4);
                out.extend_from_slice(&input.warehouse.to_le_bytes());
                out.extend_from_slice(&input.district.to_le_bytes());
                out.extend_from_slice(&input.threshold.to_le_bytes());
            }
        }
        out
    }

    fn u32_at(data: &[u8], off: usize) -> Option<u32> {
        Some(u32::from_le_bytes(data.get(off..off + 4)?.try_into().ok()?))
    }

    /// Decodes a transaction request; `None` if malformed.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<TpccTransaction> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            0 => {
                let warehouse = u32_at(rest, 0)?;
                let district = u32_at(rest, 4)?;
                let customer = u32_at(rest, 8)?;
                let rollback = *rest.get(12)? == 1;
                let n = *rest.get(13)? as usize;
                let body = rest.get(14..14 + n * 12)?;
                let lines = (0..n)
                    .map(|i| OrderLineInput {
                        item_id: u32_at(body, i * 12).expect("bounds checked"),
                        supply_warehouse: u32_at(body, i * 12 + 4).expect("bounds checked"),
                        quantity: u32_at(body, i * 12 + 8).expect("bounds checked"),
                    })
                    .collect();
                Some(TpccTransaction::NewOrder(NewOrderInput {
                    warehouse,
                    district,
                    customer,
                    lines,
                    rollback,
                }))
            }
            1 => {
                let (customer, _) = read_selector(rest.get(20..)?)?;
                Some(TpccTransaction::Payment(PaymentInput {
                    warehouse: u32_at(rest, 0)?,
                    district: u32_at(rest, 4)?,
                    customer_warehouse: u32_at(rest, 8)?,
                    customer_district: u32_at(rest, 12)?,
                    amount: u32_at(rest, 16)?,
                    customer,
                }))
            }
            2 => {
                let (customer, _) = read_selector(rest.get(8..)?)?;
                Some(TpccTransaction::OrderStatus(OrderStatusInput {
                    warehouse: u32_at(rest, 0)?,
                    district: u32_at(rest, 4)?,
                    customer,
                }))
            }
            3 => Some(TpccTransaction::Delivery(DeliveryInput {
                warehouse: u32_at(rest, 0)?,
                carrier: u32_at(rest, 4)?,
            })),
            4 => Some(TpccTransaction::StockLevel(StockLevelInput {
                warehouse: u32_at(rest, 0)?,
                district: u32_at(rest, 4)?,
                threshold: u32_at(rest, 8)?,
            })),
            _ => None,
        }
    }
}

/// Which engine backs the OLTP application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OltpEngineKind {
    /// In-memory OCC (silo).
    Silo,
    /// On-disk buffer pool + WAL (shore).
    Shore,
}

/// The silo / shore server application.
pub struct OltpApp {
    executor: TpccExecutor<Arc<dyn Engine>>,
    kind: OltpEngineKind,
    name: &'static str,
}

impl OltpApp {
    /// Builds a silo application with the given TPC-C scale.
    #[must_use]
    pub fn silo(config: TpccConfig) -> Self {
        let engine: Arc<dyn Engine> = Arc::new(SiloEngine::new());
        load_database(&*engine, &config);
        OltpApp {
            executor: TpccExecutor::new(engine, config),
            kind: OltpEngineKind::Silo,
            name: "silo",
        }
    }

    /// Builds a shore application with the given TPC-C scale and buffer-pool size.
    ///
    /// # Panics
    ///
    /// Panics if the backing files cannot be created.
    #[must_use]
    pub fn shore(config: TpccConfig, pool_pages: usize) -> Self {
        let engine: Arc<dyn Engine> =
            Arc::new(ShoreEngine::temp(pool_pages).expect("create shore database files"));
        load_database(&*engine, &config);
        OltpApp {
            executor: TpccExecutor::new(engine, config),
            kind: OltpEngineKind::Shore,
            name: "shore",
        }
    }

    /// The TPC-C configuration in use.
    #[must_use]
    pub fn config(&self) -> &TpccConfig {
        self.executor.config()
    }

    /// Which engine backs this application.
    #[must_use]
    pub fn kind(&self) -> OltpEngineKind {
        self.kind
    }

    fn work_profile(&self, txn: &TpccTransaction, outcome: &TpccOutcome) -> WorkProfile {
        let rows = outcome.stats.reads + outcome.stats.writes;
        let base = match txn {
            TpccTransaction::NewOrder(_) => 6_000,
            TpccTransaction::Payment(_) => 3_000,
            TpccTransaction::OrderStatus(_) => 2_000,
            TpccTransaction::Delivery(_) => 5_000,
            TpccTransaction::StockLevel(_) => 4_000,
        };
        match self.kind {
            OltpEngineKind::Silo => WorkProfile {
                instructions: base + 450 * rows + 2_000 * outcome.stats.retries,
                mem_reads: 20 + 12 * rows,
                mem_writes: 8 + 6 * rows,
                footprint_bytes: 2_048 + 192 * rows,
                locality: 0.8,
                // Silo's commit protocol (lock, validate, install) is the serializing
                // component the paper's case study identifies.
                critical_fraction: 0.30,
            },
            OltpEngineKind::Shore => WorkProfile {
                instructions: 4 * base
                    + 2_500 * rows
                    + 600 * outcome.stats.log_bytes / 64
                    + 8_000 * outcome.stats.page_misses,
                mem_reads: 100 + 80 * rows + 64 * outcome.stats.page_misses,
                mem_writes: 40 + 30 * rows + 16 * outcome.stats.page_misses,
                footprint_bytes: 16_384 + 4_096 * outcome.stats.page_misses + 512 * rows,
                locality: 0.5,
                critical_fraction: 0.20,
            },
        }
    }
}

impl ServerApp for OltpApp {
    fn name(&self) -> &str {
        self.name
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(txn) = codec::decode(payload) else {
            return Response::new(vec![0xFF]);
        };
        let outcome = self.executor.execute(&txn);
        let work = self.work_profile(&txn, &outcome);
        let mut out = Vec::with_capacity(10);
        out.push(u8::from(outcome.committed));
        out.extend_from_slice(&(outcome.stats.reads as u32).to_le_bytes());
        out.extend_from_slice(&(outcome.stats.writes as u32).to_le_bytes());
        Response::with_work(out, work)
    }
}

/// Generates the TPC-C transaction mix as request payloads.
#[derive(Debug)]
pub struct TpccRequestFactory {
    generator: TpccGenerator,
    rng: SuiteRng,
}

impl TpccRequestFactory {
    /// Creates a factory for the given scale and seed.
    #[must_use]
    pub fn new(config: &TpccConfig, seed: u64) -> Self {
        let mut rng = seeded_rng(seed, 700);
        TpccRequestFactory {
            generator: TpccGenerator::new(config.clone(), &mut rng),
            rng,
        }
    }
}

impl RequestFactory for TpccRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode(&self.generator.next_transaction(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_every_transaction_type() {
        let config = TpccConfig::small();
        let mut rng = seeded_rng(1, 0);
        let generator = TpccGenerator::new(config, &mut rng);
        for _ in 0..200 {
            let txn = generator.next_transaction(&mut rng);
            let decoded = codec::decode(&codec::encode(&txn));
            assert_eq!(decoded, Some(txn));
        }
        assert_eq!(codec::decode(&[]), None);
        assert_eq!(codec::decode(&[7, 0]), None);
    }

    #[test]
    fn silo_app_executes_the_mix() {
        let app = OltpApp::silo(TpccConfig::small());
        assert_eq!(app.name(), "silo");
        assert_eq!(app.kind(), OltpEngineKind::Silo);
        let mut factory = TpccRequestFactory::new(app.config(), 2);
        let mut committed = 0;
        for _ in 0..300 {
            let resp = app.handle(&factory.next_request());
            if resp.payload[0] == 1 {
                committed += 1;
            }
            assert!(resp.work.instructions > 0);
            assert!(resp.work.critical_fraction > 0.2, "silo is sync-limited");
        }
        assert!(committed > 280);
    }

    #[test]
    fn shore_app_executes_the_mix_and_reports_heavier_work() {
        let silo = OltpApp::silo(TpccConfig::small());
        let shore = OltpApp::shore(TpccConfig::small(), 128);
        assert_eq!(shore.name(), "shore");
        let mut factory = TpccRequestFactory::new(silo.config(), 3);
        let mut silo_work = 0u64;
        let mut shore_work = 0u64;
        for _ in 0..100 {
            let payload = factory.next_request();
            silo_work += silo.handle(&payload).work.instructions;
            shore_work += shore.handle(&payload).work.instructions;
        }
        assert!(
            shore_work > silo_work,
            "shore ({shore_work}) must report more work than silo ({silo_work})"
        );
    }

    #[test]
    fn malformed_request_is_rejected() {
        let app = OltpApp::silo(TpccConfig::small());
        assert_eq!(app.handle(&[0, 1, 2]).payload, vec![0xFF]);
    }

    #[test]
    fn end_to_end_through_harness() {
        use tailbench_core::config::BenchmarkConfig;

        let app = OltpApp::silo(TpccConfig::small());
        let mut factory = TpccRequestFactory::new(app.config(), 4);
        let app: Arc<dyn ServerApp> = Arc::new(app);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(2_000.0, 300)
                .with_warmup(30)
                .with_threads(2),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "silo");
        assert!(report.requests > 250);
    }
}
