//! Spec round-tripping: property tests and the golden JSON output.
//!
//! Two properties and one pinned artifact:
//!
//! 1. **Structural round-trip** — for randomly generated `ExperimentSpec`s covering
//!    the full schema surface (modes, topologies, hedges, loads including scenarios,
//!    faults, every sweep-axis kind), `from_json(to_json(spec)) == spec` and the
//!    serialization is canonical (a second round emits identical text).
//! 2. **Behavioral round-trip** — for randomly generated *runnable* DES specs, the
//!    builder-constructed spec and its JSON round-trip produce **bit-identical**
//!    `ExperimentOutput` JSON under a fixed seed (the discrete-event simulator is
//!    exactly deterministic, so any divergence means serialization lost information).
//! 3. **Golden output** — one fixed-seed experiment's JSON output is pinned down to
//!    the exact percentile values, guarding both the DES event ordering and the
//!    output schema.

use proptest::prelude::*;
use std::sync::Arc;
use tailbench_core::app::{CostModel, EchoApp, InstructionRateModel};
use tailbench_experiment::{
    AppBuilder, BenchApp, ClassSpec, Experiment, ExperimentSpec, FanoutSpec, FaultKindSpec,
    FaultSpec, FaultTargetSpec, HedgeSpec, LoadSpec, MitigationSpec, ModeSpec, PhaseSpec,
    QueuePolicySpec, Registry, Scale, ScenarioSpec, SeedPolicy, SelectorSpec, ShapeSpec, SweepAxis,
    TopologySpec,
};

// ---------------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------------

fn mode_strategy() -> impl Strategy<Value = ModeSpec> {
    prop_oneof![
        (0u64..1).prop_map(|_| ModeSpec::Integrated),
        (0u64..1).prop_map(|_| ModeSpec::Simulated),
        (1usize..16).prop_map(|connections| ModeSpec::Loopback { connections }),
        ((1usize..16), (0u64..100_000)).prop_map(|(connections, one_way_delay_ns)| {
            ModeSpec::Networked {
                connections,
                one_way_delay_ns,
            }
        }),
    ]
}

fn fanout_strategy() -> impl Strategy<Value = FanoutSpec> {
    prop_oneof![
        (0u64..1).prop_map(|_| FanoutSpec::Auto),
        (0u64..1).prop_map(|_| FanoutSpec::Broadcast),
        ((0usize..4), (1usize..9)).prop_map(|(offset, len)| FanoutSpec::HashKey { offset, len }),
        ((0usize..4), (1usize..8)).prop_map(|(offset, len)| FanoutSpec::Partition { offset, len }),
    ]
}

fn queue_strategy() -> impl Strategy<Value = QueuePolicySpec> {
    prop_oneof![
        (1u64..1_000_000).prop_map(|capacity| QueuePolicySpec::Block { capacity }),
        (1u64..1_000_000).prop_map(|capacity| QueuePolicySpec::Drop { capacity }),
        ((1u64..1_000_000), (1u64..1_000_000_000))
            .prop_map(|(capacity, slo_ns)| { QueuePolicySpec::DropDeadline { capacity, slo_ns } }),
        (1u64..1_000_000).prop_map(|capacity| QueuePolicySpec::Priority { capacity }),
    ]
}

fn selector_strategy() -> impl Strategy<Value = SelectorSpec> {
    prop_oneof![
        (0u64..1).prop_map(|_| SelectorSpec::RoundRobin),
        (0u64..1).prop_map(|_| SelectorSpec::LeastLoaded),
        (0u64..1).prop_map(|_| SelectorSpec::PowerOfTwo),
    ]
}

fn mitigation_strategy() -> impl Strategy<Value = MitigationSpec> {
    prop_oneof![
        (0u64..1).prop_map(|_| MitigationSpec::Baseline),
        hedge_strategy().prop_map(MitigationSpec::Hedge),
        (0u64..1).prop_map(|_| MitigationSpec::Tied),
        selector_strategy().prop_map(MitigationSpec::Selector),
        queue_strategy().prop_map(MitigationSpec::Queue),
    ]
}

fn hedge_strategy() -> impl Strategy<Value = HedgeSpec> {
    prop_oneof![
        (1u64..10_000_000).prop_map(HedgeSpec::DelayNs),
        (0usize..5).prop_map(|i| HedgeSpec::Percentile([0.5, 0.9, 0.95, 0.99, 0.999][i])),
    ]
}

fn shape_strategy() -> impl Strategy<Value = ShapeSpec> {
    prop_oneof![
        (100.0f64..10_000.0).prop_map(|qps| ShapeSpec::Constant { qps }),
        ((100.0f64..5_000.0), (100.0f64..5_000.0))
            .prop_map(|(from_qps, to_qps)| ShapeSpec::Ramp { from_qps, to_qps }),
        (
            (100.0f64..2_000.0),
            (2_000.0f64..20_000.0),
            (1_000_000u64..100_000_000),
            (0.05f64..0.95),
        )
            .prop_map(|(base_qps, burst_qps, period_ns, duty)| ShapeSpec::Burst {
                base_qps,
                burst_qps,
                period_ns,
                duty,
            }),
        (
            (100.0f64..5_000.0),
            (0.0f64..0.99),
            (1_000_000u64..100_000_000)
        )
            .prop_map(|(base_qps, amplitude, period_ns)| ShapeSpec::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            }),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        prop::collection::vec(
            ((1_000_000u64..500_000_000), shape_strategy())
                .prop_map(|(duration_ns, shape)| PhaseSpec { duration_ns, shape }),
            1..4,
        ),
        (0usize..3),
        (0.0f64..0.5),
    )
        .prop_map(|(phases, classes, warmup_fraction)| ScenarioSpec {
            phases,
            classes: (0..classes)
                .map(|i| ClassSpec {
                    name: format!("class-{i}"),
                    weight: 1.0 + i as f64,
                })
                .collect(),
            warmup_fraction,
        })
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (
        prop_oneof![
            (0u64..1).prop_map(|_| FaultTargetSpec::All),
            (0usize..4).prop_map(FaultTargetSpec::Instance),
        ],
        (0.0f64..0.5),
        (0.01f64..0.5),
        prop_oneof![
            (1.5f64..8.0).prop_map(|factor| FaultKindSpec::SlowDown { factor }),
            (0u64..1).prop_map(|_| FaultKindSpec::Pause),
            (1_000u64..1_000_000).prop_map(|amplitude_ns| FaultKindSpec::Jitter { amplitude_ns }),
        ],
    )
        .prop_map(|(target, start_frac, width, kind)| FaultSpec {
            target,
            start_frac,
            end_frac: start_frac + width,
            kind,
        })
}

/// A full-surface spec: not necessarily cheap to run, but always serializable.
fn spec_strategy() -> impl Strategy<Value = ExperimentSpec> {
    (
        (
            mode_strategy(),
            (0usize..4),
            prop_oneof![
                (10.0f64..100_000.0).prop_map(LoadSpec::Qps),
                (0.05f64..1.2).prop_map(LoadSpec::FractionOfCapacity),
                (0u64..10_000_000).prop_map(|think_ns| LoadSpec::Closed { think_ns }),
                scenario_strategy().prop_map(LoadSpec::Scenario),
            ],
            (1usize..8),
        ),
        ((1usize..10_000), any::<u64>(), (1usize..4), any::<bool>()),
        (
            (1usize..17),
            (1usize..4),
            fanout_strategy(),
            hedge_strategy(),
        ),
        (
            (
                prop::collection::vec(fault_strategy(), 0..3),
                (0usize..4),
                any::<bool>(),
                any::<bool>(),
            ),
            (queue_strategy(), any::<bool>()),
            (
                selector_strategy(),
                any::<bool>(),
                prop::collection::vec(mitigation_strategy(), 0..4),
            ),
        ),
    )
        .prop_map(
            |(
                (mode, scale_pick, load, threads),
                (requests, seed, repeats, fixed_seeds),
                (shards, replication, fanout, hedge),
                (
                    (faults, axis_count, with_topology, with_hedge),
                    (queue, with_queue),
                    (selector, tied, mitigations),
                ),
            )| {
                let mut spec = ExperimentSpec::new("prop", "echo")
                    .with_mode(mode)
                    .with_load(load)
                    .with_threads(threads)
                    .with_requests(requests)
                    .with_seed(seed)
                    .with_repeats(
                        repeats,
                        if fixed_seeds {
                            SeedPolicy::Fixed
                        } else {
                            SeedPolicy::Derive
                        },
                    );
                spec.scale = [
                    None,
                    Some(Scale::Smoke),
                    Some(Scale::Quick),
                    Some(Scale::Full),
                ][scale_pick];
                if with_topology {
                    let mut topology = TopologySpec::sharded(shards)
                        .with_replication(replication)
                        .with_fanout(fanout)
                        .with_selector(selector)
                        .with_tied(tied);
                    if with_hedge {
                        topology = topology.with_hedge(hedge);
                    }
                    spec = spec.with_topology(topology);
                    if !mitigations.is_empty() {
                        spec = spec.with_axis(SweepAxis::Mitigation(mitigations));
                    }
                }
                if with_queue {
                    spec = spec.with_queue(queue);
                }
                spec.interference = faults;
                let axes = [
                    SweepAxis::App(vec!["echo".into(), "xapian".into()]),
                    SweepAxis::Mode(vec![ModeSpec::Integrated, ModeSpec::Simulated]),
                    SweepAxis::LoadFraction(vec![0.25, 0.5, 0.75]),
                    SweepAxis::Threads(vec![1, 2]),
                ];
                for axis in axes.iter().take(axis_count) {
                    spec = spec.with_axis(axis.clone());
                }
                spec
            },
        )
}

proptest! {
    #[test]
    fn any_spec_round_trips_structurally(spec in spec_strategy()) {
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&text)
            .map_err(|e| format!("reparse failed: {e}\n{text}"))?;
        prop_assert_eq!(&back, &spec);
        // Canonical: serializing again yields byte-identical text.
        prop_assert_eq!(back.to_json_string(), text);
    }
}

// ---------------------------------------------------------------------------
// Behavioral equivalence under DES.
// ---------------------------------------------------------------------------

struct Echo(u64);

impl AppBuilder for Echo {
    fn name(&self) -> &str {
        "echo"
    }
    fn build(&self, _scale: Scale) -> BenchApp {
        BenchApp::new("echo", Arc::new(EchoApp { spin_iters: self.0 }), |_| {
            Box::new(|| b"prop".to_vec())
        })
    }
    fn cost_model(&self) -> Box<dyn CostModel> {
        Box::new(InstructionRateModel {
            ns_per_instruction: 1.0,
        })
    }
}

fn echo_registry() -> Registry {
    let mut registry = Registry::empty();
    registry.register(Box::new(Echo(50_000)));
    registry
}

/// A spec that is cheap to actually run under the DES: simulated mode, bounded
/// request counts, optional small topology/sweep.
fn runnable_spec_strategy() -> impl Strategy<Value = ExperimentSpec> {
    (
        ((2_000.0f64..20_000.0), (50usize..150), any::<u64>()),
        ((1usize..3), (0usize..3), any::<bool>()),
    )
        .prop_map(
            |((qps, requests, seed), (threads, shards_pick, sweep_qps))| {
                let mut spec = ExperimentSpec::new("prop-run", "echo")
                    .with_mode(ModeSpec::Simulated)
                    .with_load(LoadSpec::Qps(qps))
                    .with_requests(requests)
                    .with_warmup(requests / 10)
                    .with_threads(threads)
                    .with_seed(seed);
                if shards_pick > 0 {
                    spec = spec.with_topology(
                        TopologySpec::sharded(shards_pick + 1).with_fanout(FanoutSpec::Broadcast),
                    );
                }
                if sweep_qps {
                    spec = spec.with_axis(SweepAxis::Qps(vec![qps, qps * 1.5]));
                }
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn builder_and_json_paths_produce_bit_identical_reports(spec in runnable_spec_strategy()) {
        let reparsed = ExperimentSpec::from_json_str(&spec.to_json_string())
            .map_err(|e| format!("reparse failed: {e}"))?;
        let from_builder = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .map_err(|e| format!("builder run failed: {e}"))?;
        let from_json = Experiment::new(reparsed)
            .with_registry(echo_registry())
            .run()
            .map_err(|e| format!("json run failed: {e}"))?;
        prop_assert_eq!(from_builder.to_json_string(), from_json.to_json_string());
    }
}

// ---------------------------------------------------------------------------
// Golden JSON output.
// ---------------------------------------------------------------------------

#[test]
fn golden_fixed_seed_json_output_is_pinned() {
    let spec = ExperimentSpec::new("golden-json", "echo")
        .with_mode(ModeSpec::Simulated)
        .with_load(LoadSpec::Qps(5_000.0))
        .with_requests(1_000)
        .with_warmup(100)
        .with_seed(0x601D);
    let mut registry = Registry::empty();
    registry.register(Box::new(Echo(100_000)));
    let output = Experiment::new(spec).with_registry(registry).run().unwrap();
    let text = output.to_json_string();

    // The exact golden percentiles (same constants as tests/golden_determinism.rs)
    // must appear in the machine-readable output…
    assert!(text.contains("\"p50_ns\": 100010"), "{text}");
    assert!(text.contains("\"p95_ns\": 294185"), "{text}");
    assert!(text.contains("\"p99_ns\": 451793"), "{text}");
    // …the output must verify…
    assert_eq!(tailbench_experiment::verify_output_text(&text), Ok(1));
    // …and re-running produces byte-identical text (full pipeline determinism).
    let again = Experiment::new(
        ExperimentSpec::new("golden-json", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Qps(5_000.0))
            .with_requests(1_000)
            .with_warmup(100)
            .with_seed(0x601D),
    )
    .with_registry({
        let mut registry = Registry::empty();
        registry.register(Box::new(Echo(100_000)));
        registry
    })
    .run()
    .unwrap();
    assert_eq!(again.to_json_string(), text);
}
