//! Fig. 12 golden: the tail-mitigation policy suite under the DES.
//!
//! Three guarantees, all on the smoke-scale preset with its pinned seed:
//!
//! 1. **Controlled comparison** — every mitigation row replays the *identical*
//!    arrival trace (bitwise-equal offered rate), so the only difference between
//!    rows is the policy itself.  This is a regression test for the per-point seed
//!    derivation, which must NOT decorrelate mitigation rows.
//! 2. **Policy wins** — at least three policies improve the burst-plus-straggler
//!    broadcast p99 over the unmitigated baseline.
//! 3. **Golden pinning** — the exact per-policy p99s are pinned (the DES is exactly
//!    deterministic), and a second run reproduces the output byte for byte.

use tailbench_experiment::{presets, Experiment, Scale};

#[test]
fn fig12_policy_rows_share_one_trace_and_beat_the_baseline() {
    let spec = presets::preset("fig12", Scale::Smoke).expect("fig12 preset");
    spec.validate().expect("fig12 must validate");

    let output = Experiment::new(spec.clone()).run().expect("fig12 run");
    assert_eq!(output.points.len(), 6);

    let rows: Vec<(String, u64, f64)> = output
        .points
        .iter()
        .map(|p| {
            let cluster = p.report.cluster().expect("fig12 points are cluster runs");
            (
                p.coords.mitigation.clone().expect("mitigation label"),
                cluster.cluster.sojourn.p99_ns,
                cluster.cluster.offered_qps.expect("scenario offered rate"),
            )
        })
        .collect();

    // 1. Every row faces the identical offered trace.
    let offered = rows[0].2;
    for (label, _, row_offered) in &rows {
        assert!(
            row_offered.to_bits() == offered.to_bits(),
            "{label}: offered rate {row_offered} != baseline {offered} — mitigation \
             rows must share one arrival trace"
        );
    }

    // 2. The baseline leads, and ≥3 policies beat its p99.
    assert_eq!(rows[0].0, "none");
    let baseline_p99 = rows[0].1;
    let winners: Vec<&str> = rows[1..]
        .iter()
        .filter(|(_, p99, _)| *p99 < baseline_p99)
        .map(|(label, _, _)| label.as_str())
        .collect();
    assert!(
        winners.len() >= 3,
        "want >= 3 policies under the baseline p99 {baseline_p99}, got {winners:?}"
    );

    // 3. Exact golden values (smoke scale, seed 0x5EED).  Any change to DES event
    //    ordering, routing, admission or the preset itself shows up here.
    let golden: Vec<(String, u64)> = rows.iter().map(|(l, p, _)| (l.clone(), *p)).collect();
    assert_eq!(
        golden,
        [
            ("none", 703_485),
            ("hedge(p50)", 596_035),
            ("tied", 616_168),
            ("least-loaded", 419_618),
            ("p2c", 623_686),
            ("drop-deadline(64,500000ns)", 565_127),
        ]
        .map(|(l, p): (&str, u64)| (l.to_string(), p)),
        "pinned per-policy p99s diverged"
    );

    // Determinism: an independent second run is byte-identical.
    let again = Experiment::new(spec).run().expect("fig12 rerun");
    assert_eq!(again.to_json_string(), output.to_json_string());
}
