//! Bench-record round-tripping: property tests for the `BENCH_<n>.json` schema.
//!
//! For randomly generated [`BenchRecord`]s and [`GateReport`]s covering the full
//! schema surface (optional offered load, absent baselines, advisory checks, missing
//! presets), `from_json(to_json(x)) == x` structurally, and the serialization is
//! canonical — a second round emits byte-identical text.  Together with the golden
//! byte-pin in `tests/bench_record_golden.rs`, this guarantees a committed trajectory
//! file can always be reparsed into exactly the record that produced it.

use proptest::prelude::*;
use tailbench_experiment::{BenchRecord, EnvMeta, GateCheck, GateReport, PresetResult};

fn name_strategy() -> impl Strategy<Value = String> {
    ((0usize..6), (0u64..1_000)).prop_map(|(style, n)| {
        let stem = ["des-xapian", "des-masstree", "int-xapian", "wall", "p", "x"][style];
        format!("{stem}-{n}")
    })
}

/// Finite, positive throughput values (validation rejects anything else, and NaN
/// would break structural equality).
fn qps_strategy() -> impl Strategy<Value = f64> {
    0.001f64..10_000_000.0
}

fn preset_result_strategy() -> impl Strategy<Value = PresetResult> {
    (
        (name_strategy(), any::<bool>(), (0usize..3), (0u64..16)),
        (
            (1u64..1_000_000),
            (any::<bool>(), qps_strategy()),
            qps_strategy(),
        ),
        (
            (1u64..1_000_000_000),
            (1u64..4),
            (1u64..4),
            (0u64..100_000_000),
        ),
        (
            (0u64..100_000_000),
            (0u64..10_000_000),
            (0u64..10_000),
            (0u64..100_000),
        ),
    )
        .prop_map(
            |(
                (name, deterministic, app_pick, shards),
                (requests, (has_offered, offered), achieved_qps),
                (p50_ns, p95_step, p99_step, pacing_p99_ns),
                (overhead_p99_ns, queue_accepted, queue_dropped, queue_peak_depth),
            )| {
                PresetResult {
                    name,
                    deterministic,
                    app: ["xapian", "masstree", "moses"][app_pick].to_string(),
                    mode: if deterministic {
                        "simulated"
                    } else {
                        "integrated"
                    }
                    .to_string(),
                    shards,
                    requests,
                    offered_qps: if has_offered { Some(offered) } else { None },
                    achieved_qps,
                    p50_ns,
                    // Keep the percentile ordering invariant the validator enforces.
                    p95_ns: p50_ns.saturating_mul(p95_step),
                    p99_ns: p50_ns.saturating_mul(p95_step).saturating_mul(p99_step),
                    pacing_p99_ns,
                    overhead_p99_ns,
                    queue_accepted,
                    queue_dropped,
                    queue_peak_depth,
                }
            },
        )
}

fn record_strategy() -> impl Strategy<Value = BenchRecord> {
    (
        prop::collection::vec(preset_result_strategy(), 0..6),
        (0usize..3),
        any::<u64>(),
        (0u64..100_000_000_000),
    )
        .prop_map(|(presets, host_pick, commit_bits, unix_time)| {
            BenchRecord::new(
                presets,
                EnvMeta {
                    host: ["ci-runner", "laptop", "unknown"][host_pick].to_string(),
                    os: "linux".to_string(),
                    arch: "x86_64".to_string(),
                    cores: (host_pick as u64 + 1) * 4,
                },
                format!("{commit_bits:012x}"),
                unix_time,
            )
        })
}

fn gate_check_strategy() -> impl Strategy<Value = GateCheck> {
    (
        (name_strategy(), (0usize..4)),
        (qps_strategy(), qps_strategy()),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((preset, metric_pick), (value, bound), (passed, advisory))| GateCheck {
                preset,
                metric: ["p99_abs", "qps_abs", "p99_vs_baseline", "qps_vs_baseline"][metric_pick]
                    .to_string(),
                value,
                bound,
                passed,
                advisory,
            },
        )
}

fn gate_report_strategy() -> impl Strategy<Value = GateReport> {
    (
        (any::<bool>(), any::<u64>()),
        prop::collection::vec(gate_check_strategy(), 0..12),
        prop::collection::vec(name_strategy(), 0..4),
    )
        .prop_map(
            |((has_baseline, commit_bits), checks, missing_from_baseline)| GateReport {
                baseline_commit: if has_baseline {
                    Some(format!("{commit_bits:012x}"))
                } else {
                    None
                },
                checks,
                missing_from_baseline,
            },
        )
}

proptest! {
    #[test]
    fn any_bench_record_round_trips_structurally(record in record_strategy()) {
        let text = record.to_json_string();
        let back = BenchRecord::from_json_str(&text)
            .map_err(|e| format!("reparse failed: {e}\n{text}"))?;
        prop_assert_eq!(&back, &record);
        // Canonical: serializing again yields byte-identical text.
        prop_assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn any_gate_report_round_trips_structurally(report in gate_report_strategy()) {
        let text = report.to_json_string();
        let back = GateReport::from_json_str(&text)
            .map_err(|e| format!("reparse failed: {e}\n{text}"))?;
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.to_json_string(), text);
        // The summary renderer must stay total: any report renders without panicking
        // and always carries the final RESULT line.
        prop_assert!(back.render_text().contains("RESULT:"));
    }
}
