//! The declarative experiment specification.
//!
//! An [`ExperimentSpec`] is the single configuration object of the suite: it selects a
//! workload from the registry, a harness mode, an optional cluster topology, a load
//! model (absolute QPS, fraction of measured capacity, closed-loop, or a full phased
//! scenario), sweep axes, and the repeat/seed policy.  `Experiment::run()` turns one
//! spec into one structured output — the "one configuration, many measured variants"
//! methodology of the paper, with TailBench++-style multi-server flexibility.
//!
//! Specs are plain data: every type here derives the (shim) serde markers and
//! round-trips **exactly** through the JSON codec in [`crate::json`] — integers and
//! floats are bit-preserving, and optional fields are omitted when they hold their
//! defaults, so `from_json(to_json(spec)) == spec` structurally.

use crate::json::Json;
use serde::{Deserialize, Serialize};
use tailbench_core::config::{FanoutPolicy, HarnessMode};
use tailbench_core::error::HarnessError;

/// Workload scale used by experiments and the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny request budgets for CI smoke runs: just enough to prove a reproduction
    /// still executes end to end.
    Smoke,
    /// Small inputs so that the full experiment set completes in minutes.
    Quick,
    /// Larger inputs closer to the paper's configurations.
    Full,
}

impl Scale {
    /// Reads the scale from the `TAILBENCH_SCALE` environment variable (`quick` is the
    /// default, `full` selects the larger inputs, `smoke` the CI smoke budget).
    #[must_use]
    pub fn from_env() -> Scale {
        match std::env::var("TAILBENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Number of measured requests per run appropriate for this scale, given a per-app
    /// budget multiplier.
    #[must_use]
    pub fn requests(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Smoke => (quick / 10).clamp(20, 100),
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// The scale's name (`smoke` / `quick` / `full`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parses a name as printed by [`Scale::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// The serializable mirror of [`HarnessMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeSpec {
    /// Client, harness and application in one process (shared memory).
    Integrated,
    /// TCP over the loopback interface.
    Loopback {
        /// Number of client connections (single-server runs only; cluster runs open
        /// one connection per instance).
        connections: usize,
    },
    /// Loopback transport plus an analytic constant propagation delay per direction.
    Networked {
        /// Number of client connections (single-server runs only).
        connections: usize,
        /// One-way propagation delay added per direction, ns.
        one_way_delay_ns: u64,
    },
    /// Discrete-event simulation driven by the registry's cost model.
    Simulated,
}

impl ModeSpec {
    /// Converts to the harness-level mode.
    #[must_use]
    pub fn to_harness(self) -> HarnessMode {
        match self {
            ModeSpec::Integrated => HarnessMode::Integrated,
            ModeSpec::Loopback { connections } => HarnessMode::Loopback { connections },
            ModeSpec::Networked {
                connections,
                one_way_delay_ns,
            } => HarnessMode::Networked {
                connections,
                one_way_delay_ns,
            },
            ModeSpec::Simulated => HarnessMode::Simulated,
        }
    }

    /// Default loopback configuration (8 connections, as [`HarnessMode::loopback`]).
    #[must_use]
    pub fn loopback() -> ModeSpec {
        ModeSpec::Loopback { connections: 8 }
    }

    /// Default networked configuration (as [`HarnessMode::networked`]).
    #[must_use]
    pub fn networked() -> ModeSpec {
        ModeSpec::Networked {
            connections: 16,
            one_way_delay_ns: 25_000,
        }
    }

    /// A short name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModeSpec::Integrated => "integrated",
            ModeSpec::Loopback { .. } => "loopback",
            ModeSpec::Networked { .. } => "networked",
            ModeSpec::Simulated => "simulated",
        }
    }
}

/// The serializable mirror of [`FanoutPolicy`], plus `Auto` (ask the registry for the
/// workload's natural policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FanoutSpec {
    /// Use the workload's registry default (hash for YCSB, partition for TPC-C,
    /// broadcast for search).
    Auto,
    /// FNV-hash `len` payload bytes at `offset`, route to `hash % shards`.
    HashKey {
        /// Byte offset of the key within the payload.
        offset: usize,
        /// Key length in bytes.
        len: usize,
    },
    /// Little-endian partition id at `offset`, route to `id % shards`.
    Partition {
        /// Byte offset of the partition id within the payload.
        offset: usize,
        /// Partition-id length in bytes (at most 8).
        len: usize,
    },
    /// Fan every request out to all shards (partition-aggregate).
    Broadcast,
}

impl FanoutSpec {
    /// Resolves to a concrete policy, with `default` standing in for `Auto`.
    #[must_use]
    pub fn resolve(self, default: FanoutPolicy) -> FanoutPolicy {
        match self {
            FanoutSpec::Auto => default,
            FanoutSpec::HashKey { offset, len } => FanoutPolicy::HashKey { offset, len },
            FanoutSpec::Partition { offset, len } => FanoutPolicy::Partition { offset, len },
            FanoutSpec::Broadcast => FanoutPolicy::Broadcast,
        }
    }
}

/// How the hedged-request trigger delay is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HedgeSpec {
    /// Hedge after an absolute delay in nanoseconds.
    DelayNs(u64),
    /// Hedge at the given percentile of the *unhedged* leg-latency distribution: the
    /// runner measures (and caches) an unhedged baseline at the same sweep point and
    /// reads the trigger off its shard-union sojourn distribution.  Supported
    /// percentiles: 0.5, 0.9, 0.95, 0.99, 0.999.
    Percentile(f64),
}

/// The percentiles [`HedgeSpec::Percentile`] accepts (the ones a
/// [`LatencyStats`](tailbench_core::report::LatencyStats) carries).
pub const SUPPORTED_HEDGE_PERCENTILES: [f64; 5] = [0.5, 0.9, 0.95, 0.99, 0.999];

/// The request-queue admission policy of an experiment (per server instance for
/// cluster points).  Omitted = the classic unbounded open-loop queue; either bounded
/// policy makes overload explicit in the output's `queue_depth` summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueuePolicySpec {
    /// Bounded queue; producers block (backpressure, visible as pacing error).
    Block {
        /// Maximum queued requests per instance.
        capacity: u64,
    },
    /// Bounded queue; excess arrivals are dropped and counted.
    Drop {
        /// Maximum queued requests per instance.
        capacity: u64,
    },
    /// Bounded queue that also sheds any request whose queueing delay has already
    /// blown the SLO by the time a worker would start it (deadline-aware shedding).
    DropDeadline {
        /// Maximum queued requests per instance.
        capacity: u64,
        /// Queueing-delay budget: a request that waited longer than this is shed
        /// instead of served.
        slo_ns: u64,
    },
    /// Bounded queue; when full, the lowest-class queued request is evicted in favor
    /// of the arriving higher-class one (priority shedding).
    Priority {
        /// Maximum queued requests per instance.
        capacity: u64,
    },
}

impl QueuePolicySpec {
    /// The equivalent core admission policy.
    #[must_use]
    pub fn to_admission(self) -> tailbench_core::queue::AdmissionPolicy {
        match self {
            QueuePolicySpec::Block { capacity } => tailbench_core::queue::AdmissionPolicy::Block {
                capacity: capacity as usize,
            },
            QueuePolicySpec::Drop { capacity } => tailbench_core::queue::AdmissionPolicy::Drop {
                capacity: capacity as usize,
            },
            QueuePolicySpec::DropDeadline { capacity, slo_ns } => {
                tailbench_core::queue::AdmissionPolicy::DropDeadline {
                    capacity: capacity as usize,
                    slo_ns,
                }
            }
            QueuePolicySpec::Priority { capacity } => {
                tailbench_core::queue::AdmissionPolicy::Priority {
                    capacity: capacity as usize,
                }
            }
        }
    }

    /// The queue capacity bound of any variant.
    #[must_use]
    pub fn capacity(self) -> u64 {
        match self {
            QueuePolicySpec::Block { capacity }
            | QueuePolicySpec::Drop { capacity }
            | QueuePolicySpec::DropDeadline { capacity, .. }
            | QueuePolicySpec::Priority { capacity } => capacity,
        }
    }
}

/// Which replica of a shard the cluster router sends each request to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectorSpec {
    /// Deterministic `request_id % replication` striping (the classic default).
    #[default]
    RoundRobin,
    /// Route to the replica with the fewest outstanding requests.
    LeastLoaded,
    /// Seeded power-of-two-choices: sample two replicas, pick the less loaded.
    PowerOfTwo,
}

impl SelectorSpec {
    /// The selector's serialized / report tag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SelectorSpec::RoundRobin => "round-robin",
            SelectorSpec::LeastLoaded => "least-loaded",
            SelectorSpec::PowerOfTwo => "p2c",
        }
    }

    /// The equivalent core replica selector.
    #[must_use]
    pub fn to_core(self) -> tailbench_core::config::ReplicaSelector {
        match self {
            SelectorSpec::RoundRobin => tailbench_core::config::ReplicaSelector::RoundRobin,
            SelectorSpec::LeastLoaded => tailbench_core::config::ReplicaSelector::LeastLoaded,
            SelectorSpec::PowerOfTwo => tailbench_core::config::ReplicaSelector::PowerOfTwo,
        }
    }
}

/// Cluster topology of an experiment: `shards * replication` server instances behind a
/// client-side router.
///
/// A spec **with** a topology always runs through the cluster harness (even for one
/// shard, so fan-out sweeps include the `shards = 1` baseline on the same code path);
/// a spec without one runs the plain single-server harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Number of data shards.
    pub shards: usize,
    /// Replicas per shard (1 = no replication).
    pub replication: usize,
    /// Fan-out policy (`Auto` = registry default for the workload).
    pub fanout: FanoutSpec,
    /// Hedged-request policy (`None` = no hedging; requires `replication >= 2`).
    pub hedge: Option<HedgeSpec>,
    /// How the router picks a replica within a shard (default round-robin).
    pub selector: SelectorSpec,
    /// Tied requests: dispatch every request to two replicas up front, first response
    /// wins, the loser is retracted.  Requires `replication >= 2`; mutually exclusive
    /// with hedging.
    pub tied: bool,
}

impl TopologySpec {
    /// A topology with the given shard count, no replication, `Auto` fan-out.
    #[must_use]
    pub fn sharded(shards: usize) -> TopologySpec {
        TopologySpec {
            shards: shards.max(1),
            replication: 1,
            fanout: FanoutSpec::Auto,
            hedge: None,
            selector: SelectorSpec::RoundRobin,
            tied: false,
        }
    }

    /// Sets the replication factor.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> TopologySpec {
        self.replication = replication.max(1);
        self
    }

    /// Sets the fan-out policy.
    #[must_use]
    pub fn with_fanout(mut self, fanout: FanoutSpec) -> TopologySpec {
        self.fanout = fanout;
        self
    }

    /// Sets the hedged-request policy.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgeSpec) -> TopologySpec {
        self.hedge = Some(hedge);
        self
    }

    /// Sets the replica selector.
    #[must_use]
    pub fn with_selector(mut self, selector: SelectorSpec) -> TopologySpec {
        self.selector = selector;
        self
    }

    /// Enables tied requests (two replicas up front, first response wins).
    #[must_use]
    pub fn with_tied(mut self, tied: bool) -> TopologySpec {
        self.tied = tied;
        self
    }
}

/// The offered-load model of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Open-loop Poisson arrivals at an absolute rate.
    Qps(f64),
    /// Open-loop Poisson arrivals at a fraction of the measured capacity (the runner
    /// probes capacity per app/threads/topology/mode combination and caches it).
    FractionOfCapacity(f64),
    /// Closed-loop arrivals (coordinated-omission reproduction only).
    Closed {
        /// Think time between response and next request, ns.
        think_ns: u64,
    },
    /// A full phased scenario (bursts, ramps, diurnal waves, client classes).  The
    /// scenario's compiled trace determines the request count; the spec's `requests`
    /// and `warmup` fields are ignored.
    Scenario(ScenarioSpec),
}

/// Serializable mirror of a `tailbench_scenario::Scenario`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The load phases, played back to back.
    pub phases: Vec<PhaseSpec>,
    /// Client classes (empty = one implicit class); each class draws payloads from the
    /// registry factory seeded with a per-class stream.
    pub classes: Vec<ClassSpec>,
    /// Fraction of the trace treated as warmup, in `[0, 0.9]`.
    pub warmup_fraction: f64,
}

/// One load phase: a rate shape held for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase length in nanoseconds.
    pub duration_ns: u64,
    /// Rate profile over the phase.
    pub shape: ShapeSpec,
}

/// Serializable mirror of `tailbench_scenario::PhaseShape`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShapeSpec {
    /// Stationary Poisson arrivals.
    Constant {
        /// Offered rate, QPS.
        qps: f64,
    },
    /// Linear ramp between two rates.
    Ramp {
        /// Rate at the phase start, QPS.
        from_qps: f64,
        /// Rate at the phase end, QPS.
        to_qps: f64,
    },
    /// Square-wave bursting.
    Burst {
        /// Rate outside bursts, QPS.
        base_qps: f64,
        /// Rate inside bursts, QPS.
        burst_qps: f64,
        /// Burst period, ns.
        period_ns: u64,
        /// Fraction of each period spent bursting, in `[0, 1]`.
        duty: f64,
    },
    /// Diurnal sinusoid.
    Diurnal {
        /// Mean rate, QPS.
        base_qps: f64,
        /// Relative swing, in `[0, 1)`.
        amplitude: f64,
        /// Wave period, ns.
        period_ns: u64,
    },
}

/// One client class of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class name, used in per-class report rows.
    pub name: String,
    /// Relative share of the offered rate.
    pub weight: f64,
}

/// Which instance(s) a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTargetSpec {
    /// Every instance.
    All,
    /// One instance (shard-major order; the single server is instance 0).
    Instance(usize),
}

/// What a fault does (mirror of `tailbench_core::interference::FaultKind`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKindSpec {
    /// Multiply service times by `factor`.
    SlowDown {
        /// Multiplicative service-time factor.
        factor: f64,
    },
    /// Stall requests until the window ends.
    Pause,
    /// Add per-request pseudo-random extra service time.
    Jitter {
        /// Maximum added service time, ns.
        amplitude_ns: u64,
    },
}

/// One deterministic fault window, positioned as fractions of the run's nominal span
/// (total requests ÷ offered rate for Poisson loads, the trace span for scenarios), so
/// the same spec scales with the request budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Which instance(s) the fault hits.
    pub target: FaultTargetSpec,
    /// Window start as a fraction of the nominal span, in `[0, 1)`.
    pub start_frac: f64,
    /// Window end as a fraction of the nominal span, in `(start_frac, 1]`.
    pub end_frac: f64,
    /// What the fault does.
    pub kind: FaultKindSpec,
}

/// One tail-mitigation policy of a [`SweepAxis::Mitigation`] axis.
///
/// Each value is a complete router/queue configuration for one grid point: the axis
/// resets hedging, the replica selector, tied dispatch and (for `Queue` values) the
/// admission policy to their baselines, then applies exactly this one mitigation — so
/// the rows of a mitigation sweep are directly comparable single-policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MitigationSpec {
    /// No mitigation: round-robin routing, no hedging, the spec's base queue.
    Baseline,
    /// Hedged requests with the given trigger.
    Hedge(HedgeSpec),
    /// Tied requests (two replicas up front, first response wins).
    Tied,
    /// A load-aware replica selector.
    Selector(SelectorSpec),
    /// An admission (queue) policy, replacing the spec's base queue.
    Queue(QueuePolicySpec),
}

impl MitigationSpec {
    /// The policy label used in report rows (e.g. `none`, `hedge(p95)`,
    /// `drop-deadline(64,2000000ns)`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            MitigationSpec::Baseline => "none".to_string(),
            MitigationSpec::Hedge(HedgeSpec::DelayNs(delay_ns)) => {
                format!("hedge({delay_ns}ns)")
            }
            MitigationSpec::Hedge(HedgeSpec::Percentile(p)) => {
                let label = format!("{:.4}", p * 100.0);
                let label = label.trim_end_matches('0').trim_end_matches('.');
                format!("hedge(p{label})")
            }
            MitigationSpec::Tied => "tied".to_string(),
            MitigationSpec::Selector(selector) => selector.name().to_string(),
            MitigationSpec::Queue(QueuePolicySpec::Block { capacity }) => {
                format!("block({capacity})")
            }
            MitigationSpec::Queue(QueuePolicySpec::Drop { capacity }) => {
                format!("drop({capacity})")
            }
            MitigationSpec::Queue(QueuePolicySpec::DropDeadline { capacity, slo_ns }) => {
                format!("drop-deadline({capacity},{slo_ns}ns)")
            }
            MitigationSpec::Queue(QueuePolicySpec::Priority { capacity }) => {
                format!("priority({capacity})")
            }
        }
    }
}

/// One sweep axis.  The grid of measured points is the Cartesian product of all axes,
/// in spec order; each axis overrides the corresponding base field of the spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Sweep the workload (registry names).
    App(Vec<String>),
    /// Sweep the harness mode.
    Mode(Vec<ModeSpec>),
    /// Sweep the load as fractions of measured capacity.
    LoadFraction(Vec<f64>),
    /// Sweep absolute offered rates.
    Qps(Vec<f64>),
    /// Sweep the worker-thread count.
    Threads(Vec<usize>),
    /// Sweep the shard count (requires a topology).
    Shards(Vec<usize>),
    /// Sweep the hedged-request trigger (`None` = unhedged; requires a topology with
    /// `replication >= 2`).
    Hedge(Vec<Option<HedgeSpec>>),
    /// Sweep complete tail-mitigation policies (requires a topology; each value is a
    /// single policy applied on top of a reset baseline — see [`MitigationSpec`]).
    Mitigation(Vec<MitigationSpec>),
}

impl SweepAxis {
    /// The axis' column name in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::App(_) => "app",
            SweepAxis::Mode(_) => "mode",
            SweepAxis::LoadFraction(_) => "load",
            SweepAxis::Qps(_) => "qps",
            SweepAxis::Threads(_) => "threads",
            SweepAxis::Shards(_) => "shards",
            SweepAxis::Hedge(_) => "hedge",
            SweepAxis::Mitigation(_) => "mitigation",
        }
    }

    /// Number of values on the axis.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::App(v) => v.len(),
            SweepAxis::Mode(v) => v.len(),
            SweepAxis::LoadFraction(v) => v.len(),
            SweepAxis::Qps(v) => v.len(),
            SweepAxis::Threads(v) => v.len(),
            SweepAxis::Shards(v) => v.len(),
            SweepAxis::Hedge(v) => v.len(),
            SweepAxis::Mitigation(v) => v.len(),
        }
    }

    /// Returns `true` if the axis holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How per-repeat seeds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Derive a fresh seed per repeat (`derive_seed(point_seed, k)`), re-randomizing
    /// payloads and interarrivals as the paper's methodology requires.
    Derive,
    /// Reuse the point seed for every repeat (identical runs; for harness debugging).
    Fixed,
}

/// The complete declarative description of one experiment.
///
/// Build one with the fluent methods, serialize with [`ExperimentSpec::to_json_string`]
/// or load from disk with [`ExperimentSpec::from_json_str`], and run it with
/// `Experiment::run()` — single server or cluster, any harness mode, steady or
/// scenario load, with sweeps, repeats and capacity probing handled by the runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment name (used in output headers and file names).
    pub name: String,
    /// Registry name of the workload (base value; an `App` sweep axis overrides it).
    pub app: String,
    /// Workload scale; `None` reads `TAILBENCH_SCALE` at run time.
    pub scale: Option<Scale>,
    /// Harness mode (base value; a `Mode` axis overrides it).
    pub mode: ModeSpec,
    /// Cluster topology; `None` = plain single-server harness.
    pub topology: Option<TopologySpec>,
    /// Offered-load model.
    pub load: LoadSpec,
    /// Request-queue admission policy; `None` = unbounded (the classic open-loop
    /// queue).  Applies per server instance for cluster points.
    pub queue: Option<QueuePolicySpec>,
    /// Worker threads per server instance.
    pub threads: usize,
    /// Measured requests per point (ignored for scenario loads).
    pub requests: usize,
    /// Warmup requests per point; `None` = `max(requests / 10, 5)`.
    pub warmup: Option<usize>,
    /// Root seed.  A single-point, single-repeat experiment uses it directly (so a
    /// spec reproduces a plain `runner::execute` call bit for bit); sweep points and
    /// repeats derive per-point seeds from it.
    pub seed: u64,
    /// Number of repeats per point (aggregated with confidence intervals when > 1).
    pub repeats: usize,
    /// How per-repeat seeds are chosen.
    pub seed_policy: SeedPolicy,
    /// Deterministic fault windows applied to every point.
    pub interference: Vec<FaultSpec>,
    /// Sweep axes (Cartesian product, spec order).
    pub sweep: Vec<SweepAxis>,
}

/// The default root seed (the same one `BenchmarkConfig::new` uses).
pub const DEFAULT_SEED: u64 = 0x7A11_BE4C;

impl ExperimentSpec {
    /// Creates a spec with sensible defaults: integrated mode, single server, 1
    /// thread, 1000 measured requests at 1000 QPS, one repeat.
    #[must_use]
    pub fn new(name: impl Into<String>, app: impl Into<String>) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            app: app.into(),
            scale: None,
            mode: ModeSpec::Integrated,
            topology: None,
            load: LoadSpec::Qps(1_000.0),
            queue: None,
            threads: 1,
            requests: 1_000,
            warmup: None,
            seed: DEFAULT_SEED,
            repeats: 1,
            seed_policy: SeedPolicy::Derive,
            interference: Vec::new(),
            sweep: Vec::new(),
        }
    }

    /// Sets the workload scale explicitly (otherwise `TAILBENCH_SCALE` decides).
    #[must_use]
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Sets the harness mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ModeSpec) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the cluster topology.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the load model.
    #[must_use]
    pub fn with_load(mut self, load: LoadSpec) -> Self {
        self.load = load;
        self
    }

    /// Sets the request-queue admission policy.
    #[must_use]
    pub fn with_queue(mut self, queue: QueuePolicySpec) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the measured request count per point.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the warmup request count per point.
    #[must_use]
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the repeat count and seed policy.
    #[must_use]
    pub fn with_repeats(mut self, repeats: usize, seed_policy: SeedPolicy) -> Self {
        self.repeats = repeats.max(1);
        self.seed_policy = seed_policy;
        self
    }

    /// Adds a deterministic fault window.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.interference.push(fault);
        self
    }

    /// Adds a sweep axis (axes multiply in the order added).
    #[must_use]
    pub fn with_axis(mut self, axis: SweepAxis) -> Self {
        self.sweep.push(axis);
        self
    }

    /// The warmup request count per point (explicit or derived).
    #[must_use]
    pub fn warmup_requests(&self) -> usize {
        self.warmup.unwrap_or((self.requests / 10).max(5))
    }

    /// Number of grid points the sweep axes produce.
    #[must_use]
    pub fn grid_size(&self) -> usize {
        self.sweep.iter().map(SweepAxis::len).product::<usize>()
    }

    /// Checks the spec for inconsistencies before anything is built or run.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] with an actionable message for each rejected
    /// footgun (empty axes, closed-loop clusters, hedging without replication,
    /// unsupported hedge percentiles, malformed fault windows, …).
    pub fn validate(&self) -> Result<(), HarnessError> {
        let fail = |msg: String| Err(HarnessError::Config(format!("spec '{}': {msg}", self.name)));
        if self.app.is_empty() && !self.sweep.iter().any(|a| matches!(a, SweepAxis::App(_))) {
            return fail("no app selected: set `app` or add an `App` sweep axis".into());
        }
        if self.threads == 0 {
            return fail("threads is 0; use with_threads(n) with n >= 1".into());
        }
        if self.repeats == 0 {
            return fail("repeats is 0; a point needs at least one run".into());
        }
        match &self.load {
            LoadSpec::Qps(qps) => {
                if !qps.is_finite() || *qps <= 0.0 {
                    return fail(format!("load qps must be finite and positive, got {qps}"));
                }
            }
            LoadSpec::FractionOfCapacity(fraction) => {
                if !fraction.is_finite() || *fraction <= 0.0 {
                    return fail(format!(
                        "load fraction must be finite and positive, got {fraction}"
                    ));
                }
            }
            LoadSpec::Closed { .. } => {
                if self.topology.is_some() {
                    return fail(
                        "closed-loop load cannot drive a cluster (open-loop only); \
                         remove the topology or use an open load model"
                            .into(),
                    );
                }
                if self.mode == ModeSpec::Simulated
                    || self
                        .sweep
                        .iter()
                        .any(|a| matches!(a, SweepAxis::Mode(modes) if modes.contains(&ModeSpec::Simulated)))
                {
                    return fail(
                        "closed-loop load cannot run under the discrete-event simulator"
                            .into(),
                    );
                }
                if !self.interference.is_empty() {
                    return fail(
                        "interference windows are fractions of the nominal span, which \
                         closed-loop load does not define; use an open load model"
                            .into(),
                    );
                }
            }
            LoadSpec::Scenario(scenario) => {
                if scenario.phases.is_empty() {
                    return fail("scenario has no phases".into());
                }
                if scenario.phases.iter().any(|p| p.duration_ns == 0) {
                    return fail("scenario phases must have non-zero durations".into());
                }
                for (i, phase) in scenario.phases.iter().enumerate() {
                    let rates: &[f64] = match phase.shape {
                        ShapeSpec::Constant { qps } => &[qps],
                        ShapeSpec::Ramp { from_qps, to_qps } => &[from_qps, to_qps],
                        ShapeSpec::Burst {
                            base_qps,
                            burst_qps,
                            ..
                        } => &[base_qps, burst_qps],
                        ShapeSpec::Diurnal { base_qps, .. } => &[base_qps],
                    };
                    if rates.iter().any(|r| !r.is_finite() || *r <= 0.0) {
                        return fail(format!(
                            "scenario phase {i} has a non-positive or non-finite rate; \
                             a zero-rate phase would silently emit no arrivals"
                        ));
                    }
                }
                if !(0.0..=0.9).contains(&scenario.warmup_fraction) {
                    return fail(format!(
                        "scenario warmup_fraction must be in [0, 0.9], got {}",
                        scenario.warmup_fraction
                    ));
                }
                if scenario
                    .classes
                    .iter()
                    .any(|c| !c.weight.is_finite() || c.weight < 0.0)
                    || (!scenario.classes.is_empty()
                        && scenario.classes.iter().map(|c| c.weight).sum::<f64>() <= 0.0)
                {
                    return fail(
                        "scenario class weights must be non-negative with a positive sum".into(),
                    );
                }
            }
        }
        if matches!(
            self.load,
            LoadSpec::Qps(_) | LoadSpec::FractionOfCapacity(_)
        ) && self.requests == 0
        {
            return fail("requests is 0; configure at least one measured request".into());
        }
        let mitigations: Vec<&MitigationSpec> = self
            .sweep
            .iter()
            .filter_map(|a| match a {
                SweepAxis::Mitigation(values) => Some(values.iter()),
                _ => None,
            })
            .flatten()
            .collect();
        let any_simulated = self.mode == ModeSpec::Simulated
            || self.sweep.iter().any(
                |a| matches!(a, SweepAxis::Mode(modes) if modes.contains(&ModeSpec::Simulated)),
            );
        let queues_in_play = self
            .queue
            .iter()
            .chain(mitigations.iter().filter_map(|m| match m {
                MitigationSpec::Queue(queue) => Some(queue),
                _ => None,
            }));
        for queue in queues_in_play {
            if queue.capacity() == 0 {
                return fail(
                    "queue capacity is 0: every request would be rejected (drop) or \
                     deadlock the producer (block); use a capacity >= 1"
                        .into(),
                );
            }
            if matches!(queue, QueuePolicySpec::DropDeadline { slo_ns: 0, .. }) {
                return fail(
                    "drop-deadline slo_ns is 0: every request would be shed the moment \
                     a worker picked it up; use a positive queueing-delay budget"
                        .into(),
                );
            }
            if matches!(queue, QueuePolicySpec::Block { .. }) && any_simulated {
                return fail(
                    "a block queue cannot backpressure the simulator's fixed virtual-time \
                     arrivals; use a drop queue (or no queue) for simulated points"
                        .into(),
                );
            }
        }
        // The largest instance count any grid point can reach, for fault-target bounds.
        let max_instances = match self.topology {
            None => 1,
            Some(topology) => {
                let max_shards = self
                    .sweep
                    .iter()
                    .filter_map(|a| match a {
                        SweepAxis::Shards(values) => values.iter().max().copied(),
                        _ => None,
                    })
                    .max()
                    .unwrap_or(topology.shards)
                    .max(topology.shards);
                max_shards.max(1) * topology.replication.max(1)
            }
        };
        for fault in &self.interference {
            if !fault.start_frac.is_finite()
                || !fault.end_frac.is_finite()
                || fault.start_frac < 0.0
                || fault.end_frac <= fault.start_frac
                || fault.end_frac > 1.0
            {
                return fail(format!(
                    "fault window [{}, {}) must satisfy 0 <= start < end <= 1 \
                     (fractions of the nominal span)",
                    fault.start_frac, fault.end_frac
                ));
            }
            if let FaultTargetSpec::Instance(i) = fault.target {
                if i >= max_instances {
                    return fail(format!(
                        "fault targets instance {i} but at most {max_instances} \
                         instance(s) exist; the fault would silently never fire"
                    ));
                }
            }
        }
        let hedges_in_axes: Vec<&HedgeSpec> = self
            .sweep
            .iter()
            .filter_map(|a| match a {
                SweepAxis::Hedge(values) => Some(values.iter().flatten()),
                _ => None,
            })
            .flatten()
            .chain(mitigations.iter().filter_map(|m| match m {
                MitigationSpec::Hedge(hedge) => Some(hedge),
                _ => None,
            }))
            .collect();
        let any_hedge = self.topology.and_then(|t| t.hedge).is_some() || !hedges_in_axes.is_empty();
        if any_hedge {
            let Some(topology) = self.topology else {
                return fail(
                    "hedging requires a topology (hedges are a cluster-router policy)".into(),
                );
            };
            if topology.replication < 2 {
                return fail(format!(
                    "hedging requires replication >= 2 (got {}): the copy needs a \
                     replica to go to",
                    topology.replication
                ));
            }
        }
        let any_tied = self.topology.is_some_and(|t| t.tied)
            || mitigations
                .iter()
                .any(|m| matches!(m, MitigationSpec::Tied));
        if any_tied {
            let Some(topology) = self.topology else {
                return fail(
                    "tied requests require a topology (they are a cluster-router policy)".into(),
                );
            };
            if topology.replication < 2 {
                return fail(format!(
                    "tied requests require replication >= 2 (got {}): the second copy \
                     needs a replica to go to",
                    topology.replication
                ));
            }
        }
        if self.topology.is_some_and(|t| t.tied) && any_hedge {
            return fail(
                "tied requests and hedging are mutually exclusive on the base topology: \
                 tied dispatches the second copy up front, hedging on a trigger delay"
                    .into(),
            );
        }
        if !mitigations.is_empty() && self.topology.is_none() {
            return fail(
                "a Mitigation axis requires a topology (mitigations are cluster-router \
                 and per-instance queue policies; add TopologySpec::sharded)"
                    .into(),
            );
        }
        // Mirror the core harness rule: a hedged TCP cluster run cannot use a shedding
        // admission policy (a server-side shed is invisible to the client-side hedge
        // engine, which would wait forever for the dropped leg).
        let any_tcp = matches!(
            self.mode,
            ModeSpec::Loopback { .. } | ModeSpec::Networked { .. }
        ) || self.sweep.iter().any(|a| {
            matches!(a, SweepAxis::Mode(modes) if modes.iter().any(|m| {
                matches!(m, ModeSpec::Loopback { .. } | ModeSpec::Networked { .. })
            }))
        });
        if any_hedge
            && any_tcp
            && matches!(
                self.queue,
                Some(
                    QueuePolicySpec::Drop { .. }
                        | QueuePolicySpec::DropDeadline { .. }
                        | QueuePolicySpec::Priority { .. }
                )
            )
        {
            return fail(
                "hedged TCP cluster points cannot use a shedding admission policy \
                 (a server-side shed is invisible to the client-side hedge engine); \
                 drop the queue, the hedge, or the TCP mode"
                    .into(),
            );
        }
        for hedge in self
            .topology
            .and_then(|t| t.hedge)
            .iter()
            .chain(hedges_in_axes)
        {
            match hedge {
                HedgeSpec::DelayNs(0) => {
                    return fail("hedge delay_ns must be non-zero".into());
                }
                HedgeSpec::Percentile(p) => {
                    if !SUPPORTED_HEDGE_PERCENTILES.iter().any(|s| s == p) {
                        return fail(format!(
                            "hedge percentile {p} unsupported; use one of {SUPPORTED_HEDGE_PERCENTILES:?}"
                        ));
                    }
                }
                HedgeSpec::DelayNs(_) => {}
            }
        }
        for axis in &self.sweep {
            if axis.is_empty() {
                return fail(format!("sweep axis '{}' has no values", axis.label()));
            }
            match axis {
                SweepAxis::Shards(_) if self.topology.is_none() => {
                    return fail(
                        "a Shards axis requires a topology (add TopologySpec::sharded)".into(),
                    );
                }
                SweepAxis::App(apps) if apps.iter().any(String::is_empty) => {
                    return fail("App axis contains an empty name".into());
                }
                SweepAxis::LoadFraction(v) if v.iter().any(|f| !f.is_finite() || *f <= 0.0) => {
                    return fail("LoadFraction axis values must be finite and positive".into());
                }
                SweepAxis::Qps(v) if v.iter().any(|q| !q.is_finite() || *q <= 0.0) => {
                    return fail("Qps axis values must be finite and positive".into());
                }
                SweepAxis::Threads(v) if v.contains(&0) => {
                    return fail("Threads axis values must be >= 1".into());
                }
                SweepAxis::Shards(v) if v.contains(&0) => {
                    return fail("Shards axis values must be >= 1".into());
                }
                SweepAxis::LoadFraction(_) | SweepAxis::Qps(_)
                    if matches!(self.load, LoadSpec::Closed { .. } | LoadSpec::Scenario(_)) =>
                {
                    return fail(
                        "load axes require an open steady load model (Qps or \
                         FractionOfCapacity) as the base"
                            .into(),
                    );
                }
                _ => {}
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization.
//
// The in-tree serde shim derives markers only, so the concrete codec is written
// against `crate::json`.  Canonical form: optional fields are omitted when they
// hold their defaults, so `from_json(to_json(spec)) == spec` structurally and
// `to_json` is deterministic (object key order is fixed).
// ---------------------------------------------------------------------------

fn decode_err(context: &str, msg: &str) -> HarnessError {
    HarnessError::Config(format!("experiment spec: {context}: {msg}"))
}

/// Rejects unknown keys in an object, so a misspelled optional field ("sweeps",
/// "repeat") fails loudly instead of silently dropping the feature it was meant to
/// configure.
fn expect_keys(value: &Json, allowed: &[&str], context: &str) -> Result<(), HarnessError> {
    if let Json::Obj(pairs) = value {
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(decode_err(
                    context,
                    &format!(
                        "unknown field '{key}' (expected one of: {})",
                        allowed.join(", ")
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn field<'a>(value: &'a Json, key: &str, context: &str) -> Result<&'a Json, HarnessError> {
    value
        .get(key)
        .ok_or_else(|| decode_err(context, &format!("missing field '{key}'")))
}

fn f64_field(value: &Json, key: &str, context: &str) -> Result<f64, HarnessError> {
    field(value, key, context)?
        .as_f64()
        .ok_or_else(|| decode_err(context, &format!("field '{key}' must be a number")))
}

fn u64_field(value: &Json, key: &str, context: &str) -> Result<u64, HarnessError> {
    field(value, key, context)?.as_u64().ok_or_else(|| {
        decode_err(
            context,
            &format!("field '{key}' must be a non-negative integer"),
        )
    })
}

fn usize_field(value: &Json, key: &str, context: &str) -> Result<usize, HarnessError> {
    field(value, key, context)?.as_usize().ok_or_else(|| {
        decode_err(
            context,
            &format!("field '{key}' must be a non-negative integer"),
        )
    })
}

fn str_field<'a>(value: &'a Json, key: &str, context: &str) -> Result<&'a str, HarnessError> {
    field(value, key, context)?
        .as_str()
        .ok_or_else(|| decode_err(context, &format!("field '{key}' must be a string")))
}

/// A one-key object `{"tag": payload}` or a bare string `"tag"` — the encoding used
/// for all sum types in the spec format.
fn variant<'a>(
    value: &'a Json,
    context: &str,
) -> Result<(&'a str, Option<&'a Json>), HarnessError> {
    match value {
        Json::Str(s) => Ok((s.as_str(), None)),
        Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        _ => Err(decode_err(
            context,
            "expected a string tag or a single-key object",
        )),
    }
}

impl ModeSpec {
    /// Encodes to JSON.
    #[must_use]
    pub fn to_json(self) -> Json {
        match self {
            ModeSpec::Integrated => Json::str("integrated"),
            ModeSpec::Simulated => Json::str("simulated"),
            ModeSpec::Loopback { connections } => Json::obj(vec![(
                "loopback",
                Json::obj(vec![("connections", Json::U64(connections as u64))]),
            )]),
            ModeSpec::Networked {
                connections,
                one_way_delay_ns,
            } => Json::obj(vec![(
                "networked",
                Json::obj(vec![
                    ("connections", Json::U64(connections as u64)),
                    ("one_way_delay_ns", Json::U64(one_way_delay_ns)),
                ]),
            )]),
        }
    }

    /// Decodes from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] for unknown or malformed mode values.
    pub fn from_json(value: &Json) -> Result<ModeSpec, HarnessError> {
        let context = "mode";
        match variant(value, context)? {
            ("integrated", None) => Ok(ModeSpec::Integrated),
            ("simulated", None) => Ok(ModeSpec::Simulated),
            ("loopback", Some(body)) => {
                expect_keys(body, &["connections"], context)?;
                Ok(ModeSpec::Loopback {
                    connections: usize_field(body, "connections", context)?,
                })
            }
            ("networked", Some(body)) => {
                expect_keys(body, &["connections", "one_way_delay_ns"], context)?;
                Ok(ModeSpec::Networked {
                    connections: usize_field(body, "connections", context)?,
                    one_way_delay_ns: u64_field(body, "one_way_delay_ns", context)?,
                })
            }
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown mode '{tag}' (integrated, loopback, networked, simulated)"),
            )),
        }
    }
}

impl FanoutSpec {
    fn to_json(self) -> Json {
        match self {
            FanoutSpec::Auto => Json::str("auto"),
            FanoutSpec::Broadcast => Json::str("broadcast"),
            FanoutSpec::HashKey { offset, len } => Json::obj(vec![(
                "hash_key",
                Json::obj(vec![
                    ("offset", Json::U64(offset as u64)),
                    ("len", Json::U64(len as u64)),
                ]),
            )]),
            FanoutSpec::Partition { offset, len } => Json::obj(vec![(
                "partition",
                Json::obj(vec![
                    ("offset", Json::U64(offset as u64)),
                    ("len", Json::U64(len as u64)),
                ]),
            )]),
        }
    }

    fn from_json(value: &Json) -> Result<FanoutSpec, HarnessError> {
        let context = "topology.fanout";
        match variant(value, context)? {
            ("auto", None) => Ok(FanoutSpec::Auto),
            ("broadcast", None) => Ok(FanoutSpec::Broadcast),
            ("hash_key", Some(body)) => {
                expect_keys(body, &["offset", "len"], context)?;
                Ok(FanoutSpec::HashKey {
                    offset: usize_field(body, "offset", context)?,
                    len: usize_field(body, "len", context)?,
                })
            }
            ("partition", Some(body)) => {
                expect_keys(body, &["offset", "len"], context)?;
                Ok(FanoutSpec::Partition {
                    offset: usize_field(body, "offset", context)?,
                    len: usize_field(body, "len", context)?,
                })
            }
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown fanout '{tag}' (auto, broadcast, hash_key, partition)"),
            )),
        }
    }
}

impl HedgeSpec {
    fn to_json(self) -> Json {
        match self {
            HedgeSpec::DelayNs(delay_ns) => Json::obj(vec![("delay_ns", Json::U64(delay_ns))]),
            HedgeSpec::Percentile(p) => Json::obj(vec![("percentile", Json::F64(p))]),
        }
    }

    fn from_json(value: &Json) -> Result<HedgeSpec, HarnessError> {
        let context = "hedge";
        match variant(value, context)? {
            ("delay_ns", Some(body)) => body
                .as_u64()
                .map(HedgeSpec::DelayNs)
                .ok_or_else(|| decode_err(context, "delay_ns must be a non-negative integer")),
            ("percentile", Some(body)) => body
                .as_f64()
                .map(HedgeSpec::Percentile)
                .ok_or_else(|| decode_err(context, "percentile must be a number")),
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown hedge '{tag}' (delay_ns, percentile)"),
            )),
        }
    }
}

impl QueuePolicySpec {
    fn to_json(self) -> Json {
        match self {
            QueuePolicySpec::Block { capacity } => Json::obj(vec![("block", Json::U64(capacity))]),
            QueuePolicySpec::Drop { capacity } => Json::obj(vec![("drop", Json::U64(capacity))]),
            QueuePolicySpec::DropDeadline { capacity, slo_ns } => Json::obj(vec![(
                "drop_deadline",
                Json::obj(vec![
                    ("capacity", Json::U64(capacity)),
                    ("slo_ns", Json::U64(slo_ns)),
                ]),
            )]),
            QueuePolicySpec::Priority { capacity } => {
                Json::obj(vec![("priority", Json::U64(capacity))])
            }
        }
    }

    fn from_json(value: &Json) -> Result<QueuePolicySpec, HarnessError> {
        let context = "queue";
        match variant(value, context)? {
            ("block", Some(body)) => body
                .as_u64()
                .map(|capacity| QueuePolicySpec::Block { capacity })
                .ok_or_else(|| decode_err(context, "block capacity must be an integer")),
            ("drop", Some(body)) => body
                .as_u64()
                .map(|capacity| QueuePolicySpec::Drop { capacity })
                .ok_or_else(|| decode_err(context, "drop capacity must be an integer")),
            ("drop_deadline", Some(body)) => {
                expect_keys(body, &["capacity", "slo_ns"], context)?;
                Ok(QueuePolicySpec::DropDeadline {
                    capacity: u64_field(body, "capacity", context)?,
                    slo_ns: u64_field(body, "slo_ns", context)?,
                })
            }
            ("priority", Some(body)) => body
                .as_u64()
                .map(|capacity| QueuePolicySpec::Priority { capacity })
                .ok_or_else(|| decode_err(context, "priority capacity must be an integer")),
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown queue policy '{tag}' (block, drop, drop_deadline, priority)"),
            )),
        }
    }
}

impl SelectorSpec {
    fn to_json(self) -> Json {
        Json::str(self.name())
    }

    fn from_json(value: &Json) -> Result<SelectorSpec, HarnessError> {
        let context = "topology.selector";
        match value.as_str() {
            Some("round-robin") => Ok(SelectorSpec::RoundRobin),
            Some("least-loaded") => Ok(SelectorSpec::LeastLoaded),
            Some("p2c") => Ok(SelectorSpec::PowerOfTwo),
            _ => Err(decode_err(
                context,
                "unknown selector (round-robin, least-loaded, p2c)",
            )),
        }
    }
}

impl TopologySpec {
    fn to_json(self) -> Json {
        let mut pairs = vec![
            ("shards", Json::U64(self.shards as u64)),
            ("replication", Json::U64(self.replication as u64)),
            ("fanout", self.fanout.to_json()),
        ];
        if let Some(hedge) = self.hedge {
            pairs.push(("hedge", hedge.to_json()));
        }
        if self.selector != SelectorSpec::RoundRobin {
            pairs.push(("selector", self.selector.to_json()));
        }
        if self.tied {
            pairs.push(("tied", Json::Bool(true)));
        }
        Json::obj(pairs)
    }

    fn from_json(value: &Json) -> Result<TopologySpec, HarnessError> {
        let context = "topology";
        expect_keys(
            value,
            &[
                "shards",
                "replication",
                "fanout",
                "hedge",
                "selector",
                "tied",
            ],
            context,
        )?;
        Ok(TopologySpec {
            shards: usize_field(value, "shards", context)?,
            replication: usize_field(value, "replication", context)?,
            fanout: FanoutSpec::from_json(field(value, "fanout", context)?)?,
            hedge: value.get("hedge").map(HedgeSpec::from_json).transpose()?,
            selector: value
                .get("selector")
                .map(SelectorSpec::from_json)
                .transpose()?
                .unwrap_or(SelectorSpec::RoundRobin),
            tied: value
                .get("tied")
                .map(|t| {
                    t.as_bool()
                        .ok_or_else(|| decode_err(context, "tied must be a boolean"))
                })
                .transpose()?
                .unwrap_or(false),
        })
    }
}

impl ShapeSpec {
    fn to_json(self) -> Json {
        match self {
            ShapeSpec::Constant { qps } => {
                Json::obj(vec![("constant", Json::obj(vec![("qps", Json::F64(qps))]))])
            }
            ShapeSpec::Ramp { from_qps, to_qps } => Json::obj(vec![(
                "ramp",
                Json::obj(vec![
                    ("from_qps", Json::F64(from_qps)),
                    ("to_qps", Json::F64(to_qps)),
                ]),
            )]),
            ShapeSpec::Burst {
                base_qps,
                burst_qps,
                period_ns,
                duty,
            } => Json::obj(vec![(
                "burst",
                Json::obj(vec![
                    ("base_qps", Json::F64(base_qps)),
                    ("burst_qps", Json::F64(burst_qps)),
                    ("period_ns", Json::U64(period_ns)),
                    ("duty", Json::F64(duty)),
                ]),
            )]),
            ShapeSpec::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            } => Json::obj(vec![(
                "diurnal",
                Json::obj(vec![
                    ("base_qps", Json::F64(base_qps)),
                    ("amplitude", Json::F64(amplitude)),
                    ("period_ns", Json::U64(period_ns)),
                ]),
            )]),
        }
    }

    fn from_json(value: &Json) -> Result<ShapeSpec, HarnessError> {
        let context = "scenario.phases.shape";
        match variant(value, context)? {
            ("constant", Some(body)) => {
                expect_keys(body, &["qps"], context)?;
                Ok(ShapeSpec::Constant {
                    qps: f64_field(body, "qps", context)?,
                })
            }
            ("ramp", Some(body)) => {
                expect_keys(body, &["from_qps", "to_qps"], context)?;
                Ok(ShapeSpec::Ramp {
                    from_qps: f64_field(body, "from_qps", context)?,
                    to_qps: f64_field(body, "to_qps", context)?,
                })
            }
            ("burst", Some(body)) => {
                expect_keys(
                    body,
                    &["base_qps", "burst_qps", "period_ns", "duty"],
                    context,
                )?;
                Ok(ShapeSpec::Burst {
                    base_qps: f64_field(body, "base_qps", context)?,
                    burst_qps: f64_field(body, "burst_qps", context)?,
                    period_ns: u64_field(body, "period_ns", context)?,
                    duty: f64_field(body, "duty", context)?,
                })
            }
            ("diurnal", Some(body)) => {
                expect_keys(body, &["base_qps", "amplitude", "period_ns"], context)?;
                Ok(ShapeSpec::Diurnal {
                    base_qps: f64_field(body, "base_qps", context)?,
                    amplitude: f64_field(body, "amplitude", context)?,
                    period_ns: u64_field(body, "period_ns", context)?,
                })
            }
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown shape '{tag}' (constant, ramp, burst, diurnal)"),
            )),
        }
    }
}

impl ScenarioSpec {
    fn to_json(&self) -> Json {
        let mut pairs = vec![(
            "phases",
            Json::Arr(
                self.phases
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("duration_ns", Json::U64(p.duration_ns)),
                            ("shape", p.shape.to_json()),
                        ])
                    })
                    .collect(),
            ),
        )];
        if !self.classes.is_empty() {
            pairs.push((
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::str(c.name.clone())),
                                ("weight", Json::F64(c.weight)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        pairs.push(("warmup_fraction", Json::F64(self.warmup_fraction)));
        Json::obj(pairs)
    }

    fn from_json(value: &Json) -> Result<ScenarioSpec, HarnessError> {
        let context = "scenario";
        expect_keys(value, &["phases", "classes", "warmup_fraction"], context)?;
        let phases = field(value, "phases", context)?
            .as_array()
            .ok_or_else(|| decode_err(context, "phases must be an array"))?
            .iter()
            .map(|p| {
                expect_keys(p, &["duration_ns", "shape"], "scenario.phases")?;
                Ok(PhaseSpec {
                    duration_ns: u64_field(p, "duration_ns", "scenario.phases")?,
                    shape: ShapeSpec::from_json(field(p, "shape", "scenario.phases")?)?,
                })
            })
            .collect::<Result<Vec<_>, HarnessError>>()?;
        let classes = match value.get("classes") {
            None => Vec::new(),
            Some(classes) => classes
                .as_array()
                .ok_or_else(|| decode_err(context, "classes must be an array"))?
                .iter()
                .map(|c| {
                    expect_keys(c, &["name", "weight"], "scenario.classes")?;
                    Ok(ClassSpec {
                        name: str_field(c, "name", "scenario.classes")?.to_string(),
                        weight: f64_field(c, "weight", "scenario.classes")?,
                    })
                })
                .collect::<Result<Vec<_>, HarnessError>>()?,
        };
        Ok(ScenarioSpec {
            phases,
            classes,
            warmup_fraction: f64_field(value, "warmup_fraction", context)?,
        })
    }
}

impl LoadSpec {
    fn to_json(&self) -> Json {
        match self {
            LoadSpec::Qps(qps) => Json::obj(vec![("qps", Json::F64(*qps))]),
            LoadSpec::FractionOfCapacity(fraction) => {
                Json::obj(vec![("fraction_of_capacity", Json::F64(*fraction))])
            }
            LoadSpec::Closed { think_ns } => Json::obj(vec![(
                "closed",
                Json::obj(vec![("think_ns", Json::U64(*think_ns))]),
            )]),
            LoadSpec::Scenario(scenario) => Json::obj(vec![("scenario", scenario.to_json())]),
        }
    }

    fn from_json(value: &Json) -> Result<LoadSpec, HarnessError> {
        let context = "load";
        match variant(value, context)? {
            ("qps", Some(body)) => body
                .as_f64()
                .map(LoadSpec::Qps)
                .ok_or_else(|| decode_err(context, "qps must be a number")),
            ("fraction_of_capacity", Some(body)) => body
                .as_f64()
                .map(LoadSpec::FractionOfCapacity)
                .ok_or_else(|| decode_err(context, "fraction_of_capacity must be a number")),
            ("closed", Some(body)) => {
                expect_keys(body, &["think_ns"], context)?;
                Ok(LoadSpec::Closed {
                    think_ns: u64_field(body, "think_ns", context)?,
                })
            }
            ("scenario", Some(body)) => Ok(LoadSpec::Scenario(ScenarioSpec::from_json(body)?)),
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown load '{tag}' (qps, fraction_of_capacity, closed, scenario)"),
            )),
        }
    }
}

impl FaultSpec {
    fn to_json(self) -> Json {
        let target = match self.target {
            FaultTargetSpec::All => Json::str("all"),
            FaultTargetSpec::Instance(i) => Json::obj(vec![("instance", Json::U64(i as u64))]),
        };
        let kind = match self.kind {
            FaultKindSpec::Pause => Json::str("pause"),
            FaultKindSpec::SlowDown { factor } => Json::obj(vec![(
                "slow_down",
                Json::obj(vec![("factor", Json::F64(factor))]),
            )]),
            FaultKindSpec::Jitter { amplitude_ns } => Json::obj(vec![(
                "jitter",
                Json::obj(vec![("amplitude_ns", Json::U64(amplitude_ns))]),
            )]),
        };
        Json::obj(vec![
            ("target", target),
            ("start_frac", Json::F64(self.start_frac)),
            ("end_frac", Json::F64(self.end_frac)),
            ("kind", kind),
        ])
    }

    fn from_json(value: &Json) -> Result<FaultSpec, HarnessError> {
        let context = "interference";
        expect_keys(
            value,
            &["target", "start_frac", "end_frac", "kind"],
            context,
        )?;
        let target = match variant(field(value, "target", context)?, context)? {
            ("all", None) => FaultTargetSpec::All,
            ("instance", Some(body)) => FaultTargetSpec::Instance(
                body.as_usize()
                    .ok_or_else(|| decode_err(context, "instance must be an integer"))?,
            ),
            (tag, _) => {
                return Err(decode_err(
                    context,
                    &format!("unknown fault target '{tag}' (all, instance)"),
                ))
            }
        };
        let kind = match variant(field(value, "kind", context)?, context)? {
            ("pause", None) => FaultKindSpec::Pause,
            ("slow_down", Some(body)) => {
                expect_keys(body, &["factor"], context)?;
                FaultKindSpec::SlowDown {
                    factor: f64_field(body, "factor", context)?,
                }
            }
            ("jitter", Some(body)) => {
                expect_keys(body, &["amplitude_ns"], context)?;
                FaultKindSpec::Jitter {
                    amplitude_ns: u64_field(body, "amplitude_ns", context)?,
                }
            }
            (tag, _) => {
                return Err(decode_err(
                    context,
                    &format!("unknown fault kind '{tag}' (slow_down, pause, jitter)"),
                ))
            }
        };
        Ok(FaultSpec {
            target,
            start_frac: f64_field(value, "start_frac", context)?,
            end_frac: f64_field(value, "end_frac", context)?,
            kind,
        })
    }
}

impl SweepAxis {
    fn to_json(&self) -> Json {
        match self {
            SweepAxis::App(apps) => Json::obj(vec![(
                "app",
                Json::Arr(apps.iter().map(|a| Json::str(a.clone())).collect()),
            )]),
            SweepAxis::Mode(modes) => Json::obj(vec![(
                "mode",
                Json::Arr(modes.iter().map(|m| m.to_json()).collect()),
            )]),
            SweepAxis::LoadFraction(values) => Json::obj(vec![(
                "load_fraction",
                Json::Arr(values.iter().map(|f| Json::F64(*f)).collect()),
            )]),
            SweepAxis::Qps(values) => Json::obj(vec![(
                "qps",
                Json::Arr(values.iter().map(|q| Json::F64(*q)).collect()),
            )]),
            SweepAxis::Threads(values) => Json::obj(vec![(
                "threads",
                Json::Arr(values.iter().map(|t| Json::U64(*t as u64)).collect()),
            )]),
            SweepAxis::Shards(values) => Json::obj(vec![(
                "shards",
                Json::Arr(values.iter().map(|s| Json::U64(*s as u64)).collect()),
            )]),
            SweepAxis::Hedge(values) => Json::obj(vec![(
                "hedge",
                Json::Arr(
                    values
                        .iter()
                        .map(|h| match h {
                            None => Json::str("none"),
                            Some(hedge) => hedge.to_json(),
                        })
                        .collect(),
                ),
            )]),
            SweepAxis::Mitigation(values) => Json::obj(vec![(
                "mitigation",
                Json::Arr(
                    values
                        .iter()
                        .copied()
                        .map(MitigationSpec::to_json)
                        .collect(),
                ),
            )]),
        }
    }

    fn from_json(value: &Json) -> Result<SweepAxis, HarnessError> {
        let context = "sweep";
        let (tag, body) = variant(value, context)?;
        let body = body.ok_or_else(|| decode_err(context, "axis needs a value array"))?;
        let items = body
            .as_array()
            .ok_or_else(|| decode_err(context, "axis values must be an array"))?;
        match tag {
            "app" => Ok(SweepAxis::App(
                items
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| decode_err(context, "app values must be strings"))
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "mode" => Ok(SweepAxis::Mode(
                items
                    .iter()
                    .map(ModeSpec::from_json)
                    .collect::<Result<_, _>>()?,
            )),
            "load_fraction" => Ok(SweepAxis::LoadFraction(
                items
                    .iter()
                    .map(|v| {
                        v.as_f64().ok_or_else(|| {
                            decode_err(context, "load_fraction values must be numbers")
                        })
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "qps" => Ok(SweepAxis::Qps(
                items
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| decode_err(context, "qps values must be numbers"))
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "threads" => Ok(SweepAxis::Threads(
                items
                    .iter()
                    .map(|v| {
                        v.as_usize()
                            .ok_or_else(|| decode_err(context, "threads values must be integers"))
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "shards" => Ok(SweepAxis::Shards(
                items
                    .iter()
                    .map(|v| {
                        v.as_usize()
                            .ok_or_else(|| decode_err(context, "shards values must be integers"))
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "hedge" => Ok(SweepAxis::Hedge(
                items
                    .iter()
                    .map(|v| match v.as_str() {
                        Some("none") => Ok(None),
                        _ => HedgeSpec::from_json(v).map(Some),
                    })
                    .collect::<Result<_, _>>()?,
            )),
            "mitigation" => Ok(SweepAxis::Mitigation(
                items
                    .iter()
                    .map(MitigationSpec::from_json)
                    .collect::<Result<_, _>>()?,
            )),
            tag => Err(decode_err(
                context,
                &format!(
                    "unknown axis '{tag}' (app, mode, load_fraction, qps, threads, shards, \
                     hedge, mitigation)"
                ),
            )),
        }
    }
}

impl MitigationSpec {
    fn to_json(self) -> Json {
        match self {
            MitigationSpec::Baseline => Json::str("none"),
            MitigationSpec::Tied => Json::str("tied"),
            MitigationSpec::Hedge(hedge) => Json::obj(vec![("hedge", hedge.to_json())]),
            MitigationSpec::Selector(selector) => Json::obj(vec![("selector", selector.to_json())]),
            MitigationSpec::Queue(queue) => Json::obj(vec![("queue", queue.to_json())]),
        }
    }

    fn from_json(value: &Json) -> Result<MitigationSpec, HarnessError> {
        let context = "sweep.mitigation";
        match variant(value, context)? {
            ("none", None) => Ok(MitigationSpec::Baseline),
            ("tied", None) => Ok(MitigationSpec::Tied),
            ("hedge", Some(body)) => HedgeSpec::from_json(body).map(MitigationSpec::Hedge),
            ("selector", Some(body)) => SelectorSpec::from_json(body).map(MitigationSpec::Selector),
            ("queue", Some(body)) => QueuePolicySpec::from_json(body).map(MitigationSpec::Queue),
            (tag, _) => Err(decode_err(
                context,
                &format!("unknown mitigation '{tag}' (none, tied, hedge, selector, queue)"),
            )),
        }
    }
}

impl ExperimentSpec {
    /// Encodes to the canonical JSON tree.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::str(self.name.clone())),
            ("app", Json::str(self.app.clone())),
        ];
        if let Some(scale) = self.scale {
            pairs.push(("scale", Json::str(scale.name())));
        }
        pairs.push(("mode", self.mode.to_json()));
        if let Some(topology) = self.topology {
            pairs.push(("topology", topology.to_json()));
        }
        pairs.push(("load", self.load.to_json()));
        if let Some(queue) = self.queue {
            pairs.push(("queue", queue.to_json()));
        }
        pairs.push(("threads", Json::U64(self.threads as u64)));
        pairs.push(("requests", Json::U64(self.requests as u64)));
        if let Some(warmup) = self.warmup {
            pairs.push(("warmup", Json::U64(warmup as u64)));
        }
        pairs.push(("seed", Json::U64(self.seed)));
        if self.repeats != 1 {
            pairs.push(("repeats", Json::U64(self.repeats as u64)));
        }
        if self.seed_policy != SeedPolicy::Derive {
            pairs.push(("seed_policy", Json::str("fixed")));
        }
        if !self.interference.is_empty() {
            pairs.push((
                "interference",
                Json::Arr(self.interference.iter().map(|f| f.to_json()).collect()),
            ));
        }
        if !self.sweep.is_empty() {
            pairs.push((
                "sweep",
                Json::Arr(self.sweep.iter().map(SweepAxis::to_json).collect()),
            ));
        }
        Json::obj(pairs)
    }

    /// Encodes to pretty-printed JSON text (the spec-file format the `tailbench` CLI
    /// reads).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_text_pretty()
    }

    /// Decodes from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] naming the malformed field.
    pub fn from_json(value: &Json) -> Result<ExperimentSpec, HarnessError> {
        let context = "spec";
        expect_keys(
            value,
            &[
                "name",
                "app",
                "scale",
                "mode",
                "topology",
                "load",
                "queue",
                "threads",
                "requests",
                "warmup",
                "seed",
                "repeats",
                "seed_policy",
                "interference",
                "sweep",
            ],
            context,
        )?;
        let seed_policy = match value.get("seed_policy") {
            None => SeedPolicy::Derive,
            Some(policy) => match policy.as_str() {
                Some("derive") => SeedPolicy::Derive,
                Some("fixed") => SeedPolicy::Fixed,
                _ => {
                    return Err(decode_err(
                        context,
                        "seed_policy must be \"derive\" or \"fixed\"",
                    ))
                }
            },
        };
        let scale = match value.get("scale") {
            None => None,
            Some(scale) => Some(
                scale
                    .as_str()
                    .and_then(Scale::parse)
                    .ok_or_else(|| decode_err(context, "scale must be smoke, quick or full"))?,
            ),
        };
        Ok(ExperimentSpec {
            name: str_field(value, "name", context)?.to_string(),
            app: str_field(value, "app", context)?.to_string(),
            scale,
            mode: ModeSpec::from_json(field(value, "mode", context)?)?,
            topology: value
                .get("topology")
                .map(TopologySpec::from_json)
                .transpose()?,
            load: LoadSpec::from_json(field(value, "load", context)?)?,
            queue: value
                .get("queue")
                .map(QueuePolicySpec::from_json)
                .transpose()?,
            threads: usize_field(value, "threads", context)?,
            requests: usize_field(value, "requests", context)?,
            warmup: value
                .get("warmup")
                .map(|w| {
                    w.as_usize()
                        .ok_or_else(|| decode_err(context, "warmup must be an integer"))
                })
                .transpose()?,
            seed: u64_field(value, "seed", context)?,
            repeats: match value.get("repeats") {
                None => 1,
                Some(r) => r
                    .as_usize()
                    .ok_or_else(|| decode_err(context, "repeats must be an integer"))?,
            },
            seed_policy,
            interference: match value.get("interference") {
                None => Vec::new(),
                Some(faults) => faults
                    .as_array()
                    .ok_or_else(|| decode_err(context, "interference must be an array"))?
                    .iter()
                    .map(FaultSpec::from_json)
                    .collect::<Result<_, _>>()?,
            },
            sweep: match value.get("sweep") {
                None => Vec::new(),
                Some(axes) => axes
                    .as_array()
                    .ok_or_else(|| decode_err(context, "sweep must be an array"))?
                    .iter()
                    .map(SweepAxis::from_json)
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// Parses a spec from JSON text (e.g. a spec file).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] for JSON syntax errors (with byte offset) and
    /// for schema violations (naming the field).
    pub fn from_json_str(text: &str) -> Result<ExperimentSpec, HarnessError> {
        let value = crate::json::parse(text)
            .map_err(|e| HarnessError::Config(format!("experiment spec: {e}")))?;
        ExperimentSpec::from_json(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fanout_spec() -> ExperimentSpec {
        ExperimentSpec::new("fanout-sweep", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_topology(
                TopologySpec::sharded(4)
                    .with_replication(2)
                    .with_fanout(FanoutSpec::Broadcast)
                    .with_hedge(HedgeSpec::Percentile(0.95)),
            )
            .with_load(LoadSpec::FractionOfCapacity(0.7))
            .with_requests(500)
            .with_warmup(50)
            .with_seed(0x5EED)
            .with_axis(SweepAxis::Shards(vec![1, 2, 4]))
            .with_axis(SweepAxis::Hedge(vec![
                None,
                Some(HedgeSpec::Percentile(0.95)),
            ]))
            .with_fault(FaultSpec {
                target: FaultTargetSpec::Instance(1),
                start_frac: 1.0 / 3.0,
                end_frac: 2.0 / 3.0,
                kind: FaultKindSpec::SlowDown { factor: 4.0 },
            })
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = fanout_spec();
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        // Serialization is canonical: a second round emits identical text.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn queue_policy_round_trips_and_validates() {
        for queue in [
            QueuePolicySpec::Block { capacity: 256 },
            QueuePolicySpec::Drop { capacity: 1024 },
        ] {
            // fanout_spec is simulated, where block is rejected — use integrated here.
            let spec = fanout_spec()
                .with_mode(ModeSpec::Integrated)
                .with_queue(queue);
            assert!(spec.validate().is_ok());
            let text = spec.to_json_string();
            assert!(text.contains("\"queue\""), "{text}");
            let back = ExperimentSpec::from_json_str(&text).unwrap();
            assert_eq!(back, spec);
        }
        // A block queue cannot backpressure virtual-time arrivals: simulated points
        // (base mode or via a Mode axis) reject it; drop stays legal.
        let block_sim = fanout_spec().with_queue(QueuePolicySpec::Block { capacity: 256 });
        let err = block_sim.validate().unwrap_err().to_string();
        assert!(err.contains("backpressure"), "{err}");
        let block_axis = fanout_spec()
            .with_mode(ModeSpec::Integrated)
            .with_queue(QueuePolicySpec::Block { capacity: 256 })
            .with_axis(SweepAxis::Mode(vec![
                ModeSpec::Integrated,
                ModeSpec::Simulated,
            ]));
        assert!(block_axis.validate().is_err());
        let drop_sim = fanout_spec().with_queue(QueuePolicySpec::Drop { capacity: 256 });
        assert!(drop_sim.validate().is_ok());
        // Zero capacity is a named footgun.
        let zero = fanout_spec().with_queue(QueuePolicySpec::Drop { capacity: 0 });
        let err = zero.validate().unwrap_err().to_string();
        assert!(err.contains("queue capacity"), "{err}");
        // The admission mapping reaches the core policy.
        assert_eq!(
            QueuePolicySpec::Drop { capacity: 7 }.to_admission(),
            tailbench_core::queue::AdmissionPolicy::Drop { capacity: 7 }
        );
        // Unknown policy tags are rejected.
        let text = fanout_spec()
            .with_queue(QueuePolicySpec::Block { capacity: 1 })
            .to_json_string()
            .replace("\"block\"", "\"backpressure\"");
        assert!(ExperimentSpec::from_json_str(&text)
            .unwrap_err()
            .to_string()
            .contains("unknown queue policy"));
    }

    #[test]
    fn shedding_policies_and_selectors_round_trip_and_validate() {
        // The two new admission variants encode, decode and map to the core policy.
        for queue in [
            QueuePolicySpec::DropDeadline {
                capacity: 64,
                slo_ns: 2_000_000,
            },
            QueuePolicySpec::Priority { capacity: 32 },
        ] {
            let spec = fanout_spec().with_queue(queue);
            assert!(spec.validate().is_ok(), "{queue:?}");
            let back = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
            assert_eq!(back, spec);
        }
        assert_eq!(
            QueuePolicySpec::DropDeadline {
                capacity: 8,
                slo_ns: 500
            }
            .to_admission(),
            tailbench_core::queue::AdmissionPolicy::DropDeadline {
                capacity: 8,
                slo_ns: 500
            }
        );
        assert_eq!(
            QueuePolicySpec::Priority { capacity: 9 }.to_admission(),
            tailbench_core::queue::AdmissionPolicy::Priority { capacity: 9 }
        );
        // A zero SLO budget sheds everything; reject it like zero capacity.
        let zero_slo = fanout_spec().with_queue(QueuePolicySpec::DropDeadline {
            capacity: 64,
            slo_ns: 0,
        });
        let err = zero_slo.validate().unwrap_err().to_string();
        assert!(err.contains("slo_ns"), "{err}");

        // Selector and tied fields on the topology round-trip; defaults stay omitted
        // so pre-existing spec files parse unchanged.
        let spec = fanout_spec();
        assert!(!spec.to_json_string().contains("selector"));
        assert!(!spec.to_json_string().contains("tied"));
        let mut topo = spec.topology.unwrap();
        topo = topo
            .with_selector(SelectorSpec::LeastLoaded)
            .with_tied(false);
        let spec = spec.with_topology(topo);
        let text = spec.to_json_string();
        assert!(text.contains("\"selector\": \"least-loaded\""), "{text}");
        let back = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);

        // Tied needs replicas and excludes hedging.
        let tied_solo = ExperimentSpec::new("x", "xapian")
            .with_topology(TopologySpec::sharded(2).with_tied(true));
        assert!(tied_solo.validate().is_err());
        let tied_ok = ExperimentSpec::new("x", "xapian")
            .with_topology(TopologySpec::sharded(2).with_replication(2).with_tied(true));
        assert!(tied_ok.validate().is_ok());
        let tied_and_hedged = ExperimentSpec::new("x", "xapian").with_topology(
            TopologySpec::sharded(2)
                .with_replication(2)
                .with_tied(true)
                .with_hedge(HedgeSpec::DelayNs(1_000)),
        );
        let err = tied_and_hedged.validate().unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn mitigation_axis_round_trips_and_validates() {
        let policies = vec![
            MitigationSpec::Baseline,
            MitigationSpec::Hedge(HedgeSpec::Percentile(0.95)),
            MitigationSpec::Tied,
            MitigationSpec::Selector(SelectorSpec::LeastLoaded),
            MitigationSpec::Selector(SelectorSpec::PowerOfTwo),
            MitigationSpec::Queue(QueuePolicySpec::DropDeadline {
                capacity: 64,
                slo_ns: 2_000_000,
            }),
        ];
        let spec = ExperimentSpec::new("mitigation", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_topology(
                TopologySpec::sharded(2)
                    .with_replication(2)
                    .with_fanout(FanoutSpec::Broadcast),
            )
            .with_load(LoadSpec::Qps(4_000.0))
            .with_axis(SweepAxis::Mitigation(policies.clone()));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.grid_size(), 6);
        let back = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);

        // Policy labels are stable (they name report rows and golden tables).
        let labels: Vec<String> = policies.iter().map(MitigationSpec::name).collect();
        assert_eq!(
            labels,
            [
                "none",
                "hedge(p95)",
                "tied",
                "least-loaded",
                "p2c",
                "drop-deadline(64,2000000ns)"
            ]
        );

        // The axis is a cluster-policy sweep: no topology, no axis.
        let mut shardless = spec.clone();
        shardless.topology = None;
        let err = shardless.validate().unwrap_err().to_string();
        assert!(err.contains("topology"), "{err}");

        // Tied/hedge entries need a second replica, like the base-topology forms.
        let under_replicated = ExperimentSpec::new("x", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_topology(TopologySpec::sharded(2))
            .with_axis(SweepAxis::Mitigation(vec![MitigationSpec::Tied]));
        assert!(under_replicated.validate().is_err());

        // Queue entries go through the same capacity/backpressure checks.
        let zero_cap = ExperimentSpec::new("x", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_topology(TopologySpec::sharded(2).with_replication(2))
            .with_axis(SweepAxis::Mitigation(vec![MitigationSpec::Queue(
                QueuePolicySpec::Drop { capacity: 0 },
            )]));
        assert!(zero_cap.validate().is_err());
        let block_sim = ExperimentSpec::new("x", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_topology(TopologySpec::sharded(2).with_replication(2))
            .with_axis(SweepAxis::Mitigation(vec![MitigationSpec::Queue(
                QueuePolicySpec::Block { capacity: 16 },
            )]));
        let err = block_sim.validate().unwrap_err().to_string();
        assert!(err.contains("backpressure"), "{err}");

        // Hedged TCP points cannot share a shedding base queue (core rule, mirrored).
        let tcp_hedge_shed = ExperimentSpec::new("x", "xapian")
            .with_mode(ModeSpec::loopback())
            .with_topology(
                TopologySpec::sharded(2)
                    .with_replication(2)
                    .with_hedge(HedgeSpec::DelayNs(1_000)),
            )
            .with_queue(QueuePolicySpec::Drop { capacity: 64 });
        let err = tcp_hedge_shed.validate().unwrap_err().to_string();
        assert!(
            err.contains("invisible to the client-side hedge engine"),
            "{err}"
        );
    }

    #[test]
    fn scenario_spec_round_trips() {
        let spec = ExperimentSpec::new("burst", "masstree")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Scenario(ScenarioSpec {
                phases: vec![
                    PhaseSpec {
                        duration_ns: 200_000_000,
                        shape: ShapeSpec::Constant { qps: 2_000.0 },
                    },
                    PhaseSpec {
                        duration_ns: 100_000_000,
                        shape: ShapeSpec::Burst {
                            base_qps: 2_000.0,
                            burst_qps: 8_000.0,
                            period_ns: 50_000_000,
                            duty: 0.5,
                        },
                    },
                    PhaseSpec {
                        duration_ns: 50_000_000,
                        shape: ShapeSpec::Ramp {
                            from_qps: 2_000.0,
                            to_qps: 500.0,
                        },
                    },
                    PhaseSpec {
                        duration_ns: 50_000_000,
                        shape: ShapeSpec::Diurnal {
                            base_qps: 1_000.0,
                            amplitude: 0.5,
                            period_ns: 25_000_000,
                        },
                    },
                ],
                classes: vec![
                    ClassSpec {
                        name: "interactive".into(),
                        weight: 0.7,
                    },
                    ClassSpec {
                        name: "batch".into(),
                        weight: 0.3,
                    },
                ],
                warmup_fraction: 0.1,
            }))
            .with_repeats(2, SeedPolicy::Fixed);
        let back = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn mode_variants_round_trip() {
        for mode in [
            ModeSpec::Integrated,
            ModeSpec::Simulated,
            ModeSpec::loopback(),
            ModeSpec::networked(),
        ] {
            assert_eq!(ModeSpec::from_json(&mode.to_json()).unwrap(), mode);
        }
        assert!(ModeSpec::from_json(&Json::str("warp-drive")).is_err());
    }

    #[test]
    fn validation_rejects_footguns() {
        // Empty app.
        let mut spec = ExperimentSpec::new("x", "");
        assert!(spec.validate().is_err());
        spec.app = "xapian".into();
        assert!(spec.validate().is_ok());

        // Hedge without topology / without replication.
        let hedged = spec
            .clone()
            .with_axis(SweepAxis::Hedge(vec![Some(HedgeSpec::DelayNs(1_000))]));
        assert!(hedged.validate().is_err());
        let under_replicated = hedged.clone().with_topology(TopologySpec::sharded(4));
        assert!(under_replicated.validate().is_err());
        let ok = hedged.with_topology(TopologySpec::sharded(4).with_replication(2));
        assert!(ok.validate().is_ok());

        // Unsupported hedge percentile.
        let bad_pct = ExperimentSpec::new("x", "xapian").with_topology(
            TopologySpec::sharded(2)
                .with_replication(2)
                .with_hedge(HedgeSpec::Percentile(0.42)),
        );
        assert!(bad_pct.validate().is_err());

        // Shards axis without topology.
        let shardless = ExperimentSpec::new("x", "xapian").with_axis(SweepAxis::Shards(vec![1, 2]));
        assert!(shardless.validate().is_err());

        // Closed-loop cluster.
        let closed_cluster = ExperimentSpec::new("x", "xapian")
            .with_topology(TopologySpec::sharded(2))
            .with_load(LoadSpec::Closed { think_ns: 0 });
        assert!(closed_cluster.validate().is_err());

        // Closed-loop DES.
        let closed_sim = ExperimentSpec::new("x", "xapian")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Closed { think_ns: 0 });
        assert!(closed_sim.validate().is_err());

        // Bad fault window.
        let bad_fault = ExperimentSpec::new("x", "xapian").with_fault(FaultSpec {
            target: FaultTargetSpec::All,
            start_frac: 0.5,
            end_frac: 0.5,
            kind: FaultKindSpec::Pause,
        });
        assert!(bad_fault.validate().is_err());

        // Empty axis.
        let empty_axis = ExperimentSpec::new("x", "xapian").with_axis(SweepAxis::Qps(Vec::new()));
        assert!(empty_axis.validate().is_err());
    }

    #[test]
    fn grid_size_multiplies_axes() {
        let spec = fanout_spec();
        assert_eq!(spec.grid_size(), 6);
        assert_eq!(ExperimentSpec::new("x", "y").grid_size(), 1);
    }

    #[test]
    fn decode_errors_name_the_field() {
        let err = ExperimentSpec::from_json_str("{\"name\": \"x\"}").unwrap_err();
        assert!(err.to_string().contains("missing field 'app'"), "{err}");
        let err = ExperimentSpec::from_json_str("not json").unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn decode_rejects_unknown_fields() {
        // A misspelled optional field must fail loudly instead of silently dropping
        // the feature it was meant to configure.
        let mut spec = fanout_spec().to_json_string();
        spec = spec.replace("\"sweep\"", "\"sweeps\"");
        let err = ExperimentSpec::from_json_str(&spec).unwrap_err();
        assert!(err.to_string().contains("unknown field 'sweeps'"), "{err}");

        let mut spec = fanout_spec().to_json_string();
        spec = spec.replace("\"replication\"", "\"replicas\"");
        let err = ExperimentSpec::from_json_str(&spec).unwrap_err();
        assert!(
            err.to_string().contains("unknown field 'replicas'"),
            "{err}"
        );
    }
}
