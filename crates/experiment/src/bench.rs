//! The perf-trajectory subsystem: a pinned benchmark suite, machine-comparable
//! `BENCH_<n>.json` records, and SLO regression gates.
//!
//! The paper's core contribution is a *methodology* for trustworthy tail-latency
//! measurement — yet perf claims that live only in commit messages are exactly the
//! unreproducible, incomparable-numbers pitfall it warns about.  This module makes the
//! repo's own perf trajectory a first-class, test-enforced artifact:
//!
//! * [`suite`] — the pinned preset suite: DES goldens (bit-exact across hosts, the
//!   hard CI gate) plus integrated masstree/xapian single-server and cluster points
//!   (wall-clock, advisory — real but host-dependent).  Every preset pins its scale,
//!   seed and load absolutely, so `TAILBENCH_SCALE` and capacity probing cannot make
//!   two records incomparable.
//! * [`BenchRecord`] — one suite run as a schema-versioned JSON artifact: commit,
//!   date, host/env metadata, and per-preset p50/p95/p99, QPS, pacing-error p99 and
//!   collector/queue overhead counters, serialized through the exact in-tree codec
//!   ([`crate::json`]) so records are byte-stable under a fixed environment.
//! * [`SloGate`] / [`GateReport`] — per-preset absolute thresholds plus relative
//!   regression bounds against a baseline record (the latest committed
//!   `BENCH_<n>.json`).  Deterministic presets gate with zero tolerance (any DES
//!   change is a real change); wall-clock presets evaluate as advisory warnings so CI
//!   noise cannot flake the build.
//!
//! The `tailbench bench` CLI subcommand runs the suite, writes records, and evaluates
//! gates with a CI-friendly pass/fail summary.  To refresh the baseline after an
//! intentional perf change, run `tailbench bench --write auto` and commit the new
//! `BENCH_<n>.json` next to the old ones — history stays in-repo as the trajectory.

use crate::json::{parse, Json};
use crate::spec::{
    ExperimentSpec, FanoutSpec, LoadSpec, ModeSpec, Scale, ScenarioSpec, TopologySpec,
};
use crate::Experiment;
use std::path::{Path, PathBuf};
use tailbench_core::error::HarnessError;

/// Version stamp of the [`BenchRecord`] JSON schema.  Bump when fields change
/// incompatibly; gates refuse to compare records across schema versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The shared fixed seed of every suite preset (same constant family as the golden
/// determinism tests).
pub const BENCH_SEED: u64 = 0x601D;

// ---------------------------------------------------------------------------
// The pinned suite.
// ---------------------------------------------------------------------------

/// Which subset of the suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteFilter {
    /// Only the DES-deterministic presets (the hard CI gate).
    Des,
    /// Only the wall-clock presets (advisory trajectory points).
    Wall,
    /// The full suite.
    All,
}

impl SuiteFilter {
    /// Parses a filter name (`des`, `wall`, `all`).
    #[must_use]
    pub fn parse(name: &str) -> Option<SuiteFilter> {
        match name {
            "des" => Some(SuiteFilter::Des),
            "wall" => Some(SuiteFilter::Wall),
            "all" => Some(SuiteFilter::All),
            _ => None,
        }
    }

    /// The filter's name as accepted by [`SuiteFilter::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SuiteFilter::Des => "des",
            SuiteFilter::Wall => "wall",
            SuiteFilter::All => "all",
        }
    }

    fn accepts(self, deterministic: bool) -> bool {
        match self {
            SuiteFilter::Des => deterministic,
            SuiteFilter::Wall => !deterministic,
            SuiteFilter::All => true,
        }
    }
}

/// One pinned benchmark preset: a fully-determined experiment spec plus its gate.
pub struct BenchPreset {
    /// Stable preset name (the join key against baseline records).
    pub name: &'static str,
    /// `true` for discrete-event-simulated presets whose results are bit-exact across
    /// hosts (hard gate); `false` for wall-clock presets (advisory gate).
    pub deterministic: bool,
    /// The spec the preset runs.  Always single-point, single-repeat, pinned scale
    /// and seed, absolute load — nothing environment-dependent feeds the grid.
    pub spec: ExperimentSpec,
    /// The pass/fail thresholds of this preset.
    pub gate: SloGate,
}

/// The pinned benchmark suite, in canonical order.
///
/// Changing a preset's spec makes its results incomparable with older records — treat
/// the suite like a schema: add new presets freely, but change existing ones only with
/// a baseline refresh (and say so in the commit).
#[must_use]
pub fn suite() -> Vec<BenchPreset> {
    vec![
        BenchPreset {
            name: "des-xapian-single",
            deterministic: true,
            spec: ExperimentSpec::new("des-xapian-single", "xapian")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Simulated)
                .with_load(LoadSpec::Qps(2_000.0))
                .with_requests(600)
                .with_warmup(60)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 40_000_000,
                min_qps: Some(1_800.0),
                p99_regression: 0.0,
                qps_drop: 0.0,
            },
        },
        BenchPreset {
            name: "des-masstree-single",
            deterministic: true,
            spec: ExperimentSpec::new("des-masstree-single", "masstree")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Simulated)
                .with_load(LoadSpec::Qps(10_000.0))
                .with_requests(800)
                .with_warmup(80)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 10_000_000,
                min_qps: Some(9_000.0),
                p99_regression: 0.0,
                qps_drop: 0.0,
            },
        },
        BenchPreset {
            name: "des-xapian-broadcast4",
            deterministic: true,
            spec: ExperimentSpec::new("des-xapian-broadcast4", "xapian")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Simulated)
                .with_topology(TopologySpec::sharded(4).with_fanout(FanoutSpec::Broadcast))
                .with_load(LoadSpec::Qps(1_500.0))
                .with_requests(600)
                .with_warmup(60)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 60_000_000,
                min_qps: Some(1_300.0),
                p99_regression: 0.0,
                qps_drop: 0.0,
            },
        },
        BenchPreset {
            name: "int-masstree-single",
            deterministic: false,
            // Closed-loop, zero think time: achieved QPS is the single-worker
            // saturation throughput — the number PR 5's ~477k→~573k claim was about.
            spec: ExperimentSpec::new("int-masstree-single", "masstree")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Integrated)
                .with_load(LoadSpec::Closed { think_ns: 0 })
                .with_requests(20_000)
                .with_warmup(2_000)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 1_000_000,
                min_qps: Some(50_000.0),
                p99_regression: 0.5,
                qps_drop: 0.25,
            },
        },
        BenchPreset {
            name: "int-xapian-single",
            deterministic: false,
            spec: ExperimentSpec::new("int-xapian-single", "xapian")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Integrated)
                .with_load(LoadSpec::Closed { think_ns: 0 })
                .with_requests(2_000)
                .with_warmup(200)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 50_000_000,
                min_qps: None,
                p99_regression: 0.5,
                qps_drop: 0.25,
            },
        },
        BenchPreset {
            name: "int-xapian-broadcast4",
            deterministic: false,
            // Clusters cannot run closed-loop, so this point is a fixed moderate open
            // load; its p99 tracks fan-out overhead on real threads.
            spec: ExperimentSpec::new("int-xapian-broadcast4", "xapian")
                .with_scale(Scale::Smoke)
                .with_mode(ModeSpec::Integrated)
                .with_topology(TopologySpec::sharded(4).with_fanout(FanoutSpec::Broadcast))
                .with_load(LoadSpec::Qps(500.0))
                .with_requests(1_200)
                .with_warmup(120)
                .with_seed(BENCH_SEED),
            gate: SloGate {
                max_p99_ns: 100_000_000,
                min_qps: Some(300.0),
                p99_regression: 0.5,
                qps_drop: 0.25,
            },
        },
    ]
}

// ---------------------------------------------------------------------------
// Environment metadata.
// ---------------------------------------------------------------------------

/// Host/environment metadata of a suite run — what "Tell-Tale Tail Latencies" and
/// RT-Bench require for two latency numbers to be comparable at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvMeta {
    /// Hostname (or `unknown`).
    pub host: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism.
    pub cores: u64,
}

impl EnvMeta {
    /// Captures the metadata of the running host.
    #[must_use]
    pub fn capture() -> EnvMeta {
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
            .unwrap_or_else(|| "unknown".to_string());
        EnvMeta {
            host,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("host", Json::str(self.host.clone())),
            ("os", Json::str(self.os.clone())),
            ("arch", Json::str(self.arch.clone())),
            ("cores", Json::U64(self.cores)),
        ])
    }

    fn from_json(value: &Json) -> Result<EnvMeta, String> {
        Ok(EnvMeta {
            host: require_str(value, "env.host")?,
            os: require_str(value, "env.os")?,
            arch: require_str(value, "env.arch")?,
            cores: require_u64(value, "env.cores")?,
        })
    }
}

/// The current commit id: `TAILBENCH_COMMIT` if set (CI), else `git rev-parse`, else
/// `unknown`.
#[must_use]
pub fn current_commit() -> String {
    if let Ok(commit) = std::env::var("TAILBENCH_COMMIT") {
        if !commit.is_empty() {
            return commit;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Converts a Unix timestamp (seconds) to a `YYYY-MM-DD` UTC date string
/// (civil-from-days, Hinnant's algorithm — no external time crate in the tree).
#[must_use]
pub fn utc_date(unix_time: u64) -> String {
    let days = (unix_time / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

// ---------------------------------------------------------------------------
// The record schema.
// ---------------------------------------------------------------------------

/// The measured result of one preset within one suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetResult {
    /// Preset name (join key against baselines).
    pub name: String,
    /// Whether the preset is DES-deterministic (hard gate) or wall-clock (advisory).
    pub deterministic: bool,
    /// Registry name of the workload.
    pub app: String,
    /// Harness mode name.
    pub mode: String,
    /// Shard count (0 for single-server presets).
    pub shards: u64,
    /// Measured (non-warmup) requests.
    pub requests: u64,
    /// Offered load, QPS (absent for closed-loop presets).
    pub offered_qps: Option<f64>,
    /// Achieved throughput, QPS.
    pub achieved_qps: f64,
    /// End-to-end median, ns.
    pub p50_ns: u64,
    /// End-to-end 95th percentile, ns.
    pub p95_ns: u64,
    /// End-to-end 99th percentile, ns.
    pub p99_ns: u64,
    /// 99th percentile of the pacing error (actual minus scheduled issue time), ns —
    /// 0 for closed-loop and DES presets, whose pacing is exact.
    pub pacing_p99_ns: u64,
    /// 99th percentile of the collector/transport overhead distribution, ns.
    pub overhead_p99_ns: u64,
    /// Requests admitted by the request queue.
    pub queue_accepted: u64,
    /// Requests dropped by a bounded admission policy.
    pub queue_dropped: u64,
    /// Peak instantaneous queue depth.
    pub queue_peak_depth: u64,
}

impl PresetResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("deterministic", Json::Bool(self.deterministic)),
            ("app", Json::str(self.app.clone())),
            ("mode", Json::str(self.mode.clone())),
            ("shards", Json::U64(self.shards)),
            ("requests", Json::U64(self.requests)),
            (
                "offered_qps",
                self.offered_qps.map_or(Json::Null, Json::F64),
            ),
            ("achieved_qps", Json::F64(self.achieved_qps)),
            ("p50_ns", Json::U64(self.p50_ns)),
            ("p95_ns", Json::U64(self.p95_ns)),
            ("p99_ns", Json::U64(self.p99_ns)),
            ("pacing_p99_ns", Json::U64(self.pacing_p99_ns)),
            ("overhead_p99_ns", Json::U64(self.overhead_p99_ns)),
            ("queue_accepted", Json::U64(self.queue_accepted)),
            ("queue_dropped", Json::U64(self.queue_dropped)),
            ("queue_peak_depth", Json::U64(self.queue_peak_depth)),
        ])
    }

    fn from_json(value: &Json) -> Result<PresetResult, String> {
        let offered_qps = match value.get("offered_qps") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or("preset offered_qps must be a number or null")?,
            ),
        };
        Ok(PresetResult {
            name: require_str(value, "preset.name")?,
            deterministic: value
                .get("deterministic")
                .and_then(Json::as_bool)
                .ok_or("preset.deterministic must be a bool")?,
            app: require_str(value, "preset.app")?,
            mode: require_str(value, "preset.mode")?,
            shards: require_u64(value, "preset.shards")?,
            requests: require_u64(value, "preset.requests")?,
            offered_qps,
            achieved_qps: value
                .get("achieved_qps")
                .and_then(Json::as_f64)
                .ok_or("preset.achieved_qps must be a number")?,
            p50_ns: require_u64(value, "preset.p50_ns")?,
            p95_ns: require_u64(value, "preset.p95_ns")?,
            p99_ns: require_u64(value, "preset.p99_ns")?,
            pacing_p99_ns: require_u64(value, "preset.pacing_p99_ns")?,
            overhead_p99_ns: require_u64(value, "preset.overhead_p99_ns")?,
            queue_accepted: require_u64(value, "preset.queue_accepted")?,
            queue_dropped: require_u64(value, "preset.queue_dropped")?,
            queue_peak_depth: require_u64(value, "preset.queue_peak_depth")?,
        })
    }
}

/// One suite run as a machine-comparable artifact: environment provenance plus one
/// [`PresetResult`] per executed preset.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] for records written by this build).
    pub schema_version: u64,
    /// Commit the record was measured at.
    pub commit: String,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date_utc: String,
    /// Unix timestamp of the run, seconds.
    pub unix_time: u64,
    /// Host/environment metadata.
    pub env: EnvMeta,
    /// Per-preset results, in suite order.
    pub presets: Vec<PresetResult>,
}

impl BenchRecord {
    /// Assembles a record from explicit provenance (the deterministic constructor the
    /// golden tests pin bytes through).
    #[must_use]
    pub fn new(
        presets: Vec<PresetResult>,
        env: EnvMeta,
        commit: String,
        unix_time: u64,
    ) -> BenchRecord {
        BenchRecord {
            schema_version: BENCH_SCHEMA_VERSION,
            commit,
            date_utc: utc_date(unix_time),
            unix_time,
            env,
            presets,
        }
    }

    /// Assembles a record with captured provenance (current host, commit and time).
    #[must_use]
    pub fn capture(presets: Vec<PresetResult>) -> BenchRecord {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        BenchRecord::new(presets, EnvMeta::capture(), current_commit(), unix_time)
    }

    /// Encodes the record as a JSON tree (fixed key order — byte-stable).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::U64(self.schema_version)),
            ("commit", Json::str(self.commit.clone())),
            ("date_utc", Json::str(self.date_utc.clone())),
            ("unix_time", Json::U64(self.unix_time)),
            ("env", self.env.to_json()),
            (
                "presets",
                Json::Arr(self.presets.iter().map(PresetResult::to_json).collect()),
            ),
        ])
    }

    /// Encodes to pretty-printed JSON text (the on-disk `BENCH_<n>.json` form).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_text_pretty()
    }

    /// Decodes a record from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural problem.
    pub fn from_json_str(text: &str) -> Result<BenchRecord, String> {
        let value = parse(text).map_err(|e| e.to_string())?;
        let schema_version = require_u64(&value, "schema_version")?;
        if schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench record schema version {schema_version} is not the supported \
                 {BENCH_SCHEMA_VERSION}; regenerate the baseline with this build"
            ));
        }
        let presets = value
            .get("presets")
            .and_then(Json::as_array)
            .ok_or("record has no 'presets' array")?
            .iter()
            .map(PresetResult::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchRecord {
            schema_version,
            commit: require_str(&value, "commit")?,
            date_utc: require_str(&value, "date_utc")?,
            unix_time: require_u64(&value, "unix_time")?,
            env: EnvMeta::from_json(value.get("env").ok_or("record has no 'env' object")?)?,
            presets,
        })
    }

    /// Checks the record for measurement nonsense no gate should ever compare
    /// against: empty suites, NaN/zero throughput, zero tails, duplicated preset
    /// names.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.presets.is_empty() {
            return Err("bench record has no presets".to_string());
        }
        let mut seen: Vec<&str> = Vec::new();
        for preset in &self.presets {
            let fail = |msg: String| Err(format!("preset '{}': {msg}", preset.name));
            if preset.name.is_empty() {
                return Err("a preset has an empty name".to_string());
            }
            if seen.contains(&preset.name.as_str()) {
                return fail("duplicate preset name".to_string());
            }
            seen.push(&preset.name);
            if !preset.achieved_qps.is_finite() || preset.achieved_qps <= 0.0 {
                return fail(format!(
                    "achieved_qps must be finite and positive, got {}",
                    preset.achieved_qps
                ));
            }
            if let Some(offered) = preset.offered_qps {
                if !offered.is_finite() || offered <= 0.0 {
                    return fail(format!(
                        "offered_qps must be finite and positive, got {offered}"
                    ));
                }
            }
            if preset.requests == 0 {
                return fail("requests is 0".to_string());
            }
            if preset.p99_ns == 0 {
                return fail("p99_ns is 0".to_string());
            }
            if preset.p50_ns > preset.p95_ns || preset.p95_ns > preset.p99_ns {
                return fail(format!(
                    "percentiles must be non-decreasing (p50 {} / p95 {} / p99 {})",
                    preset.p50_ns, preset.p95_ns, preset.p99_ns
                ));
            }
        }
        Ok(())
    }

    /// The result for a preset name, if the record holds one.
    #[must_use]
    pub fn preset(&self, name: &str) -> Option<&PresetResult> {
        self.presets.iter().find(|p| p.name == name)
    }
}

fn require_u64(value: &Json, key: &str) -> Result<u64, String> {
    let field_key = key.rsplit_once('.').map_or(key, |(_, b)| b);
    value
        .get(field_key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn require_str(value: &Json, key: &str) -> Result<String, String> {
    let field_key = key.rsplit_once('.').map_or(key, |(_, b)| b);
    value
        .get(field_key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("field '{key}' must be a string"))
}

// ---------------------------------------------------------------------------
// Running the suite.
// ---------------------------------------------------------------------------

/// Runs the pinned suite (restricted by `filter`) and returns one result per preset,
/// in suite order.
///
/// # Errors
///
/// Propagates harness errors from individual preset runs (a preset that fails to run
/// fails the whole suite: a partial record would silently narrow the gate).
pub fn run_suite(filter: SuiteFilter) -> Result<Vec<PresetResult>, HarnessError> {
    suite()
        .into_iter()
        .filter(|preset| filter.accepts(preset.deterministic))
        .map(run_preset)
        .collect()
}

fn run_preset(preset: BenchPreset) -> Result<PresetResult, HarnessError> {
    let offered_is_closed = matches!(
        preset.spec.load,
        LoadSpec::Closed { .. } | LoadSpec::Scenario(ScenarioSpec { .. })
    );
    let shards = preset.spec.topology.map_or(0, |t| t.shards as u64);
    let output = Experiment::new(preset.spec).run()?;
    let point = output
        .points
        .first()
        .ok_or_else(|| HarnessError::Config("bench preset produced no points".into()))?;
    let headline = point.report.headline();
    Ok(PresetResult {
        name: preset.name.to_string(),
        deterministic: preset.deterministic,
        app: headline.app.clone(),
        mode: headline.configuration.clone(),
        shards,
        requests: headline.requests,
        offered_qps: if offered_is_closed {
            None
        } else {
            headline.offered_qps
        },
        achieved_qps: headline.achieved_qps,
        p50_ns: headline.sojourn.p50_ns,
        p95_ns: headline.sojourn.p95_ns,
        p99_ns: headline.sojourn.p99_ns,
        pacing_p99_ns: headline.pacing.p99_ns,
        overhead_p99_ns: headline.overhead.p99_ns,
        queue_accepted: headline.queue_depth.accepted,
        queue_dropped: headline.queue_depth.dropped,
        queue_peak_depth: headline.queue_depth.peak_depth,
    })
}

// ---------------------------------------------------------------------------
// Gates.
// ---------------------------------------------------------------------------

/// The SLO thresholds of one preset.
///
/// Semantics: a measured value **exactly at** a bound passes (`<=` / `>=`); relative
/// bounds compare against the same-named preset in the baseline record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloGate {
    /// Absolute end-to-end p99 ceiling, ns.
    pub max_p99_ns: u64,
    /// Absolute achieved-QPS floor (`None` = no absolute throughput gate).
    pub min_qps: Option<f64>,
    /// Tolerated relative p99 growth vs the baseline (0.0 = must not grow at all —
    /// the DES setting, where any change is a real change).
    pub p99_regression: f64,
    /// Tolerated relative achieved-QPS drop vs the baseline.
    pub qps_drop: f64,
}

/// One evaluated gate check.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Preset the check belongs to.
    pub preset: String,
    /// What was checked (`p99_abs`, `qps_abs`, `p99_vs_baseline`, `qps_vs_baseline`).
    pub metric: String,
    /// The measured value.
    pub value: f64,
    /// The bound it was compared against.
    pub bound: f64,
    /// Whether the check passed.
    pub passed: bool,
    /// Advisory checks (wall-clock presets) never fail the gate, only warn.
    pub advisory: bool,
}

impl GateCheck {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("preset", Json::str(self.preset.clone())),
            ("metric", Json::str(self.metric.clone())),
            ("value", Json::F64(self.value)),
            ("bound", Json::F64(self.bound)),
            ("passed", Json::Bool(self.passed)),
            ("advisory", Json::Bool(self.advisory)),
        ])
    }

    fn from_json(value: &Json) -> Result<GateCheck, String> {
        Ok(GateCheck {
            preset: require_str(value, "check.preset")?,
            metric: require_str(value, "check.metric")?,
            value: value
                .get("value")
                .and_then(Json::as_f64)
                .ok_or("check.value must be a number")?,
            bound: value
                .get("bound")
                .and_then(Json::as_f64)
                .ok_or("check.bound must be a number")?,
            passed: value
                .get("passed")
                .and_then(Json::as_bool)
                .ok_or("check.passed must be a bool")?,
            advisory: value
                .get("advisory")
                .and_then(Json::as_bool)
                .ok_or("check.advisory must be a bool")?,
        })
    }
}

/// The evaluated gate outcome of one record (against an optional baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Commit of the baseline record the relative checks compared against (`None` =
    /// no baseline: absolute checks only).
    pub baseline_commit: Option<String>,
    /// Every evaluated check, in suite order.
    pub checks: Vec<GateCheck>,
    /// Presets measured now but absent from the baseline (new presets: absolute
    /// checks only, noted so a silently-shrinking baseline is visible).
    pub missing_from_baseline: Vec<String>,
}

impl GateReport {
    /// `true` when no **hard** (non-advisory) check failed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed || c.advisory)
    }

    /// Number of failed hard checks.
    #[must_use]
    pub fn hard_failures(&self) -> usize {
        self.checks
            .iter()
            .filter(|c| !c.passed && !c.advisory)
            .count()
    }

    /// Number of failed advisory checks (warnings).
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.checks
            .iter()
            .filter(|c| !c.passed && c.advisory)
            .count()
    }

    /// Renders the CI-friendly plain-text summary: one `PASS`/`WARN`/`FAIL` line per
    /// check plus a final `RESULT:` line.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.baseline_commit {
            Some(commit) => {
                let _ = writeln!(out, "bench gate vs baseline @ {commit}");
            }
            None => {
                let _ = writeln!(out, "bench gate (no baseline: absolute thresholds only)");
            }
        }
        for check in &self.checks {
            let status = if check.passed {
                "PASS"
            } else if check.advisory {
                "WARN"
            } else {
                "FAIL"
            };
            let relation = if check.metric.starts_with("qps") {
                ">="
            } else {
                "<="
            };
            let _ = writeln!(
                out,
                "{status} {:<24} {:<16} {:>14.0} {relation} {:>14.0}{}",
                check.preset,
                check.metric,
                check.value,
                check.bound,
                if check.advisory { "  (advisory)" } else { "" }
            );
        }
        for name in &self.missing_from_baseline {
            let _ = writeln!(
                out,
                "NOTE {name:<24} not in baseline (absolute checks only)"
            );
        }
        let _ = writeln!(
            out,
            "RESULT: {} ({} checks, {} hard failure(s), {} warning(s))",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.len(),
            self.hard_failures(),
            self.warnings()
        );
        out
    }

    /// Encodes the report as a JSON tree (fixed key order — byte-stable).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "baseline_commit",
                self.baseline_commit.clone().map_or(Json::Null, Json::Str),
            ),
            (
                "checks",
                Json::Arr(self.checks.iter().map(GateCheck::to_json).collect()),
            ),
            (
                "missing_from_baseline",
                Json::Arr(
                    self.missing_from_baseline
                        .iter()
                        .map(|n| Json::str(n.clone()))
                        .collect(),
                ),
            ),
            ("passed", Json::Bool(self.passed())),
        ])
    }

    /// Encodes to pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_text_pretty()
    }

    /// Decodes a report from JSON text (the derived `passed` field is recomputed).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural problem.
    pub fn from_json_str(text: &str) -> Result<GateReport, String> {
        let value = parse(text).map_err(|e| e.to_string())?;
        let baseline_commit = match value.get("baseline_commit") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_string)
                    .ok_or("baseline_commit must be a string or null")?,
            ),
        };
        Ok(GateReport {
            baseline_commit,
            checks: value
                .get("checks")
                .and_then(Json::as_array)
                .ok_or("report has no 'checks' array")?
                .iter()
                .map(GateCheck::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            missing_from_baseline: value
                .get("missing_from_baseline")
                .and_then(Json::as_array)
                .ok_or("report has no 'missing_from_baseline' array")?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "missing_from_baseline entries must be strings".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Evaluates every suite gate against a freshly-measured record, with relative checks
/// against `baseline` where it holds the same preset.
///
/// Presets in the record without a suite entry are skipped (a stale record field is
/// not a gate); presets missing from the baseline get absolute checks only and are
/// listed in [`GateReport::missing_from_baseline`].
#[must_use]
pub fn evaluate(record: &BenchRecord, baseline: Option<&BenchRecord>) -> GateReport {
    let mut checks = Vec::new();
    let mut missing = Vec::new();
    for preset in suite() {
        let Some(result) = record.preset(preset.name) else {
            continue;
        };
        let advisory = !preset.deterministic;
        let gate = preset.gate;
        checks.push(GateCheck {
            preset: preset.name.to_string(),
            metric: "p99_abs".to_string(),
            value: result.p99_ns as f64,
            bound: gate.max_p99_ns as f64,
            passed: result.p99_ns <= gate.max_p99_ns,
            advisory,
        });
        if let Some(min_qps) = gate.min_qps {
            checks.push(GateCheck {
                preset: preset.name.to_string(),
                metric: "qps_abs".to_string(),
                value: result.achieved_qps,
                bound: min_qps,
                passed: result.achieved_qps >= min_qps,
                advisory,
            });
        }
        match baseline.and_then(|b| b.preset(preset.name)) {
            Some(base) => {
                let p99_bound = base.p99_ns as f64 * (1.0 + gate.p99_regression);
                checks.push(GateCheck {
                    preset: preset.name.to_string(),
                    metric: "p99_vs_baseline".to_string(),
                    value: result.p99_ns as f64,
                    bound: p99_bound,
                    passed: result.p99_ns as f64 <= p99_bound,
                    advisory,
                });
                let qps_bound = base.achieved_qps * (1.0 - gate.qps_drop);
                checks.push(GateCheck {
                    preset: preset.name.to_string(),
                    metric: "qps_vs_baseline".to_string(),
                    value: result.achieved_qps,
                    bound: qps_bound,
                    passed: result.achieved_qps >= qps_bound,
                    advisory,
                });
            }
            None => {
                if baseline.is_some() {
                    missing.push(preset.name.to_string());
                }
            }
        }
    }
    GateReport {
        baseline_commit: baseline.map(|b| b.commit.clone()),
        checks,
        missing_from_baseline: missing,
    }
}

// ---------------------------------------------------------------------------
// Trajectory files.
// ---------------------------------------------------------------------------

/// Parses `BENCH_<n>.json` into `n`.
fn bench_index(file_name: &str) -> Option<u64> {
    file_name
        .strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Finds the highest-numbered `BENCH_<n>.json` in `dir` (the latest committed
/// trajectory point).
#[must_use]
pub fn latest_baseline(dir: &Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(index) = name.to_str().and_then(bench_index) else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| index > *b) {
            best = Some((index, entry.path()));
        }
    }
    best.map(|(_, path)| path)
}

/// The next free `BENCH_<n>.json` path in `dir` (what `--write auto` resolves to).
#[must_use]
pub fn next_bench_path(dir: &Path) -> PathBuf {
    let next = std::fs::read_dir(dir)
        .ok()
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|entry| entry.file_name().to_str().and_then(bench_index))
        .max()
        .map_or(1, |n| n + 1);
    dir.join(format!("BENCH_{next}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, deterministic: bool, p99_ns: u64, qps: f64) -> PresetResult {
        PresetResult {
            name: name.to_string(),
            deterministic,
            app: "xapian".to_string(),
            mode: if deterministic {
                "simulated"
            } else {
                "integrated"
            }
            .to_string(),
            shards: 0,
            requests: 600,
            offered_qps: Some(2_000.0),
            achieved_qps: qps,
            p50_ns: p99_ns / 4,
            p95_ns: p99_ns / 2,
            p99_ns,
            pacing_p99_ns: 0,
            overhead_p99_ns: 1_500,
            queue_accepted: 600,
            queue_dropped: 0,
            queue_peak_depth: 3,
        }
    }

    fn record_with(presets: Vec<PresetResult>) -> BenchRecord {
        BenchRecord::new(
            presets,
            EnvMeta {
                host: "unit".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                cores: 8,
            },
            "deadbeef".into(),
            1_754_000_000,
        )
    }

    /// A record holding every suite preset, each comfortably inside its gate.
    fn healthy_record() -> BenchRecord {
        record_with(
            suite()
                .iter()
                .map(|p| {
                    result(
                        p.name,
                        p.deterministic,
                        p.gate.max_p99_ns / 2,
                        p.gate.min_qps.unwrap_or(10_000.0) * 2.0,
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn suite_presets_are_pinned_and_valid() {
        let presets = suite();
        assert!(presets.iter().any(|p| p.deterministic));
        assert!(presets.iter().any(|p| !p.deterministic));
        for preset in &presets {
            preset
                .spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", preset.name));
            // Pinned: explicit scale and seed, single point, one repeat — nothing
            // host- or env-dependent feeds the grid.
            assert!(preset.spec.scale.is_some(), "{} scale", preset.name);
            assert_eq!(preset.spec.grid_size(), 1, "{} grid", preset.name);
            assert_eq!(preset.spec.repeats, 1, "{} repeats", preset.name);
            assert_eq!(preset.spec.seed, BENCH_SEED, "{} seed", preset.name);
            // Absolute loads only: capacity probing would make records incomparable.
            assert!(
                !matches!(preset.spec.load, LoadSpec::FractionOfCapacity(_)),
                "{} must not probe capacity",
                preset.name
            );
            if preset.deterministic {
                assert_eq!(preset.spec.mode, ModeSpec::Simulated, "{}", preset.name);
                assert_eq!(preset.gate.p99_regression, 0.0, "{}", preset.name);
                assert_eq!(preset.gate.qps_drop, 0.0, "{}", preset.name);
            }
        }
        let mut names: Vec<&str> = presets.iter().map(|p| p.name).collect();
        names.dedup();
        assert_eq!(names.len(), presets.len(), "preset names must be unique");
    }

    #[test]
    fn missing_baseline_evaluates_absolute_checks_only() {
        let report = evaluate(&healthy_record(), None);
        assert!(report.passed());
        assert_eq!(report.baseline_commit, None);
        assert!(report.missing_from_baseline.is_empty());
        assert!(report
            .checks
            .iter()
            .all(|c| !c.metric.contains("vs_baseline")));
        assert!(report.render_text().contains("no baseline"));
    }

    #[test]
    fn missing_preset_in_baseline_is_noted_not_failed() {
        let current = healthy_record();
        let mut baseline = healthy_record();
        baseline.presets.retain(|p| p.name != "des-xapian-single");
        let report = evaluate(&current, Some(&baseline));
        assert!(report.passed());
        assert_eq!(
            report.missing_from_baseline,
            vec!["des-xapian-single".to_string()]
        );
        // The present presets still got their relative checks.
        assert!(report
            .checks
            .iter()
            .any(|c| c.metric == "p99_vs_baseline" && c.preset == "des-masstree-single"));
        assert!(report.render_text().contains("not in baseline"));
    }

    #[test]
    fn exactly_at_threshold_passes() {
        // Absolute bounds: equality passes.
        let record = record_with(
            suite()
                .iter()
                .map(|p| {
                    result(
                        p.name,
                        p.deterministic,
                        p.gate.max_p99_ns,
                        p.gate.min_qps.unwrap_or(1.0),
                    )
                })
                .collect(),
        );
        let report = evaluate(&record, None);
        assert!(report.passed(), "{}", report.render_text());
        // Relative bounds with zero tolerance: identical baseline passes.
        let report = evaluate(&record, Some(&record.clone()));
        assert!(report.passed(), "{}", report.render_text());
        assert_eq!(report.hard_failures(), 0);
        assert_eq!(report.warnings(), 0);
    }

    #[test]
    fn des_regression_past_the_gate_fails_hard() {
        let baseline = healthy_record();
        let mut current = healthy_record();
        let des = current
            .presets
            .iter_mut()
            .find(|p| p.name == "des-xapian-single")
            .unwrap();
        des.p99_ns += 1; // DES tolerance is zero: one nanosecond is a regression.
        let report = evaluate(&current, Some(&baseline));
        assert!(!report.passed());
        assert_eq!(report.hard_failures(), 1);
        let text = report.render_text();
        assert!(
            text.contains("FAIL des-xapian-single") && text.contains("p99_vs_baseline"),
            "{text}"
        );
        assert!(text.contains("RESULT: FAIL"), "{text}");
    }

    #[test]
    fn wall_clock_regression_only_warns() {
        let baseline = healthy_record();
        let mut current = healthy_record();
        let wall = current
            .presets
            .iter_mut()
            .find(|p| p.name == "int-masstree-single")
            .unwrap();
        wall.achieved_qps /= 100.0; // Far past the 25% drop tolerance…
        let report = evaluate(&current, Some(&baseline));
        assert!(report.passed(), "advisory checks must not fail the gate");
        assert!(report.warnings() >= 1);
        assert!(report.render_text().contains("WARN int-masstree-single"));
    }

    #[test]
    fn validation_rejects_nonsense_records() {
        assert!(record_with(Vec::new())
            .validate()
            .unwrap_err()
            .contains("no presets"));

        let mut nan_qps = healthy_record();
        nan_qps.presets[0].achieved_qps = f64::NAN;
        assert!(nan_qps.validate().unwrap_err().contains("achieved_qps"));

        let mut zero_qps = healthy_record();
        zero_qps.presets[0].achieved_qps = 0.0;
        assert!(zero_qps.validate().unwrap_err().contains("achieved_qps"));

        let mut zero_p99 = healthy_record();
        zero_p99.presets[0].p99_ns = 0;
        zero_p99.presets[0].p50_ns = 0;
        zero_p99.presets[0].p95_ns = 0;
        assert!(zero_p99.validate().unwrap_err().contains("p99_ns is 0"));

        let mut inverted = healthy_record();
        inverted.presets[0].p50_ns = inverted.presets[0].p99_ns + 1;
        assert!(inverted.validate().unwrap_err().contains("non-decreasing"));

        let mut duplicated = healthy_record();
        let clone = duplicated.presets[0].clone();
        duplicated.presets.push(clone);
        assert!(duplicated.validate().unwrap_err().contains("duplicate"));

        assert!(healthy_record().validate().is_ok());
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = healthy_record();
        let text = record.to_json_string();
        let back = BenchRecord::from_json_str(&text).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.to_json_string(), text, "serialization is canonical");
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let mut record = healthy_record();
        record.schema_version = BENCH_SCHEMA_VERSION + 1;
        let err = BenchRecord::from_json_str(&record.to_json_string()).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }

    #[test]
    fn utc_date_matches_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        assert_eq!(utc_date(1_754_000_000), "2025-07-31");
    }

    #[test]
    fn trajectory_file_discovery_picks_the_highest_index() {
        let dir = std::env::temp_dir().join(format!("tailbench-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(latest_baseline(&dir), None);
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_1.json"));
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_9.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_10.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        assert_eq!(latest_baseline(&dir), Some(dir.join("BENCH_10.json")));
        assert_eq!(next_bench_path(&dir), dir.join("BENCH_11.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
