//! Capacity probing: the saturation-throughput denominator for capacity-relative load.
//!
//! The paper expresses offered load as a fraction of each setup's capacity ("latencies
//! at 20% / 50% / 70% load", Table I); every figure binary used to carry its own copy
//! of this logic.  It now lives here, shared by `Experiment::run()` and the remaining
//! hand-rolled binaries:
//!
//! * **single server** — execute `samples` requests back to back across the worker
//!   threads and measure the completion rate
//!   ([`tailbench_core::runner::measure_capacity`]);
//! * **cluster** — run a short low-load probe through the full cluster harness *in the
//!   point's own mode* and derive the per-leaf service rate from the per-shard service
//!   means; scale by replication (replicas share a shard's legs) and, for single-shard
//!   fan-out, by the shard count (shards split the request stream).  Real-time cluster
//!   modes are additionally capped by the host's core count, since all instances share
//!   one machine.

use crate::registry::{BenchApp, ClusterApp};
use tailbench_core::app::CostModel;
use tailbench_core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench_core::error::HarnessError;
use tailbench_core::runner;

/// Seed used by capacity probes (distinct from measurement seeds so probing never
/// perturbs a measured request stream).
pub const PROBE_SEED: u64 = 0xCAFE;

/// Estimates an application's saturation throughput with `threads` worker threads by
/// timing `samples` back-to-back requests.
#[must_use]
pub fn capacity_qps(bench: &BenchApp, threads: usize, samples: usize) -> f64 {
    let mut factory = bench.factory(PROBE_SEED);
    runner::measure_capacity(&bench.app, factory.as_mut(), threads, samples)
}

/// Estimates the sustainable end-to-end rate of a cluster under `mode` from a low-load
/// probe run.
///
/// The probe measures the mean per-shard *service* time (the cluster-level sojourn
/// would conflate queuing); one leaf then sustains `1e9 / mean_service_ns` QPS.  Under
/// broadcast fan-out every request visits every shard, so the cluster rate equals the
/// per-shard rate times the replication factor (replicas split a shard's legs); under
/// single-shard fan-out the stream also splits across shards.
///
/// # Errors
///
/// Propagates the probe run's harness errors.
pub fn cluster_capacity_qps(
    cluster_app: &ClusterApp,
    cluster: &ClusterConfig,
    mode: HarnessMode,
    threads: usize,
    samples: usize,
    cost_model: Option<&dyn CostModel>,
) -> Result<f64, HarnessError> {
    let samples = samples.clamp(50, 300);
    let config = BenchmarkConfig::new(200.0, samples)
        .with_mode(mode.clone())
        .with_threads(threads)
        .with_warmup((samples / 10).max(5))
        .with_seed(PROBE_SEED);
    // Probe without hedging: the capacity estimate must describe the unmitigated
    // system, and a percentile hedge trigger is itself derived from an unhedged run.
    let probe_cluster = ClusterConfig {
        hedge: None,
        ..cluster.clone()
    };
    let mut factory = cluster_app.factory(PROBE_SEED);
    let report = runner::execute_cluster(
        &cluster_app.instances,
        factory.as_mut(),
        &config,
        &probe_cluster,
        cost_model,
    )?;
    let shard_service_mean = report
        .per_shard
        .iter()
        .map(|s| s.service.mean_ns)
        .sum::<f64>()
        / report.per_shard.len().max(1) as f64;
    let leaf_qps = 1e9 / shard_service_mean.max(1.0) * threads.max(1) as f64;
    let streams = match cluster.fanout {
        FanoutPolicy::Broadcast => 1.0,
        _ => cluster.shards.max(1) as f64,
    };
    let mut capacity = leaf_qps * cluster.replication.max(1) as f64 * streams;
    if !matches!(mode, HarnessMode::Simulated) {
        // Real-time instances share the host's cores; scale the sustainable rate down
        // once the cluster needs more workers than the machine has.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let workers = cluster.instances().max(1) * threads.max(1);
        capacity *= (cores as f64 / workers as f64).min(1.0);
    }
    Ok(capacity.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AppBuilder, BenchApp};
    use crate::Scale;
    use std::sync::Arc;
    use tailbench_core::app::{EchoApp, InstructionRateModel};

    struct Echo(u64);
    impl AppBuilder for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn build(&self, _scale: Scale) -> BenchApp {
            BenchApp {
                name: "echo".into(),
                app: Arc::new(EchoApp { spin_iters: self.0 }),
                factory_builder: Box::new(|_| Box::new(|| vec![0u8])),
            }
        }
    }

    #[test]
    fn single_server_capacity_scales_with_service_time() {
        let light = Echo(1_000).build(Scale::Smoke);
        let heavy = Echo(100_000).build(Scale::Smoke);
        let light_cap = capacity_qps(&light, 1, 2_000);
        let heavy_cap = capacity_qps(&heavy, 1, 200);
        assert!(light_cap > 0.0 && heavy_cap > 0.0);
        assert!(light_cap > heavy_cap);
    }

    #[test]
    fn simulated_cluster_capacity_tracks_the_cost_model() {
        let builder = Echo(100_000);
        let cluster_app = builder.build_cluster(4, 1, Scale::Smoke);
        let cluster = ClusterConfig::new(4, FanoutPolicy::Broadcast);
        let model = InstructionRateModel {
            ns_per_instruction: 1.0,
        };
        let capacity = cluster_capacity_qps(
            &cluster_app,
            &cluster,
            HarnessMode::Simulated,
            1,
            200,
            Some(&model),
        )
        .unwrap();
        // Service time is exactly 100_010 ns, so one leaf sustains ~10k QPS; broadcast
        // with replication 1 keeps the cluster at the leaf rate.
        assert!(
            (capacity - 1e9 / 100_010.0).abs() / capacity < 0.05,
            "{capacity}"
        );

        // Replication doubles it; hash fan-out multiplies by the shard count.
        let replicated = cluster.clone().with_replication(2);
        let replicated_app = builder.build_cluster(4, 2, Scale::Smoke);
        let cap2 = cluster_capacity_qps(
            &replicated_app,
            &replicated,
            HarnessMode::Simulated,
            1,
            200,
            Some(&model),
        )
        .unwrap();
        assert!((cap2 / capacity - 2.0).abs() < 0.1, "{cap2} vs {capacity}");
    }
}
