//! Named experiment presets: the paper figures as one-line specs.
//!
//! Each preset is a plain [`ExperimentSpec`] — exactly what a user could write into a
//! JSON spec file and run with `tailbench run <file>`; `tailbench preset <name>`
//! resolves the name through [`preset`] and `tailbench export <name>` prints the JSON.
//! The `fig*` binaries in `tailbench_bench` are now thin shims over these presets, so
//! figure logic lives in one place.

use crate::spec::{
    ClassSpec, ExperimentSpec, FanoutSpec, FaultKindSpec, FaultSpec, FaultTargetSpec, HedgeSpec,
    LoadSpec, MitigationSpec, ModeSpec, PhaseSpec, QueuePolicySpec, Scale, ScenarioSpec,
    SelectorSpec, ShapeSpec, SweepAxis, TopologySpec,
};
use crate::AppId;

/// The names [`preset`] resolves.
pub const PRESET_NAMES: [&str; 5] = ["fig3", "fig6", "fig9", "fig11", "fig12"];

/// Resolves a preset by name at the given workload scale.
#[must_use]
pub fn preset(name: &str, scale: Scale) -> Option<ExperimentSpec> {
    match name {
        "fig3" => Some(fig3(scale)),
        "fig6" => Some(fig6(scale)),
        "fig9" => Some(fig9(scale)),
        "fig11" => Some(fig11(scale)),
        "fig12" => Some(fig12(scale)),
        _ => None,
    }
}

/// Fig. 3: mean / p95 / p99 sojourn latency versus offered load, one worker thread,
/// for every application (integrated mode, loads as fractions of measured capacity).
#[must_use]
pub fn fig3(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new("fig3_latency_vs_qps", "xapian")
        .with_scale(scale)
        .with_requests(scale.requests(250, 3_000))
        .with_load(LoadSpec::FractionOfCapacity(0.5))
        .with_axis(SweepAxis::App(
            AppId::ALL.iter().map(|id| id.name().to_string()).collect(),
        ))
        .with_axis(SweepAxis::LoadFraction(vec![
            0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9,
        ]))
}

/// Fig. 6: p95 latency versus *system load* for shore and img-dnn, real (integrated)
/// against simulated — plotted against load the two profiles nearly coincide.
#[must_use]
pub fn fig6(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new("fig6_load", "shore")
        .with_scale(scale)
        .with_requests(scale.requests(250, 2_500))
        .with_load(LoadSpec::FractionOfCapacity(0.5))
        .with_axis(SweepAxis::App(vec!["shore".into(), "img-dnn".into()]))
        .with_axis(SweepAxis::Mode(vec![
            ModeSpec::Integrated,
            ModeSpec::Simulated,
        ]))
        .with_axis(SweepAxis::LoadFraction(vec![0.2, 0.4, 0.6, 0.8]))
}

/// Fig. 9 (extension): tail amplification under partition-aggregate fan-out — a
/// broadcast xapian cluster swept over shard counts in both the integrated and the
/// simulated harness.  The capacity prober scales real-time cluster estimates by the
/// host's core budget, so one load fraction drives both modes.
#[must_use]
pub fn fig9(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new("fig9_fanout_tail", "xapian")
        .with_scale(scale)
        .with_requests(scale.requests(1_500, 10_000))
        .with_seed(0x5EED)
        .with_topology(TopologySpec::sharded(1).with_fanout(FanoutSpec::Broadcast))
        .with_load(LoadSpec::FractionOfCapacity(0.7))
        .with_axis(SweepAxis::Mode(vec![
            ModeSpec::Integrated,
            ModeSpec::Simulated,
        ]))
        .with_axis(SweepAxis::Shards(vec![1, 2, 4, 8, 16]))
}

/// Fig. 11 (extension): hedged requests versus the fan-out tail — a 4×2 replicated
/// xapian broadcast cluster with one replica slowed 4× for the middle third of the
/// run, sweeping the hedge trigger across percentiles of the unhedged leg
/// distribution (plus the unhedged baseline).  Simulated harness, so every row is
/// deterministic.
#[must_use]
pub fn fig11(scale: Scale) -> ExperimentSpec {
    ExperimentSpec::new("fig11_hedging", "xapian")
        .with_scale(scale)
        .with_mode(ModeSpec::Simulated)
        .with_requests(scale.requests(2_000, 12_000))
        .with_seed(0x5EED)
        .with_topology(
            TopologySpec::sharded(4)
                .with_replication(2)
                .with_fanout(FanoutSpec::Broadcast),
        )
        .with_load(LoadSpec::FractionOfCapacity(0.7))
        .with_fault(FaultSpec {
            target: FaultTargetSpec::Instance(1),
            start_frac: 1.0 / 3.0,
            end_frac: 2.0 / 3.0,
            kind: FaultKindSpec::SlowDown { factor: 4.0 },
        })
        .with_axis(SweepAxis::Hedge(vec![
            None,
            Some(HedgeSpec::Percentile(0.5)),
            Some(HedgeSpec::Percentile(0.9)),
            Some(HedgeSpec::Percentile(0.95)),
            Some(HedgeSpec::Percentile(0.99)),
        ]))
}

/// Fig. 12 (extension): the tail-mitigation policy suite head-to-head — a 2×2
/// replicated xapian broadcast cluster driven by the fig10 burst scenario (two tenant
/// classes, square-wave bursts in the middle phase) with one replica slowed 4× over
/// the same window, swept over one mitigation per row: none, p95 hedging, tied
/// requests, least-loaded routing, power-of-two-choices routing, and deadline
/// shedding.  Each row resets every other policy to the baseline, so the table reads
/// as a direct comparison.  Simulated harness: every row is deterministic.
#[must_use]
pub fn fig12(scale: Scale) -> ExperimentSpec {
    // Steady phases offer 40k QPS to the cluster (each broadcast request visits both
    // shards; round-robin halves each shard's rate per replica, so an instance sees
    // ~20k QPS against a ~115k QPS simulated xapian saturation rate).  The 4× fault
    // cuts the slowed replica's headroom to ~29k QPS, so the 2.5× bursts (100k QPS,
    // 50k per replica) drive *only the straggler* past saturation — the regime where
    // the policies separate without drowning the whole cluster.  The span is sized so
    // the steady rate alone offers the scale's request budget.
    let budget = scale.requests(2_500, 20_000) as u64;
    let steady_qps = 40_000.0;
    let span_ns = budget * 25_000; // budget requests at 40k QPS = budget * 25µs
    let steady_len = span_ns * 3 / 10;
    let burst_len = span_ns * 4 / 10;
    let period_ns = (span_ns / 20).max(1); // 8 bursts across the middle phase
    ExperimentSpec::new("fig12_mitigation", "xapian")
        .with_scale(scale)
        .with_mode(ModeSpec::Simulated)
        .with_seed(0x5EED)
        .with_topology(
            TopologySpec::sharded(2)
                .with_replication(2)
                .with_fanout(FanoutSpec::Broadcast),
        )
        .with_load(LoadSpec::Scenario(ScenarioSpec {
            phases: vec![
                PhaseSpec {
                    duration_ns: steady_len,
                    shape: ShapeSpec::Constant { qps: steady_qps },
                },
                PhaseSpec {
                    duration_ns: burst_len,
                    shape: ShapeSpec::Burst {
                        base_qps: steady_qps,
                        burst_qps: steady_qps * 2.5,
                        period_ns,
                        duty: 0.5,
                    },
                },
                PhaseSpec {
                    duration_ns: steady_len,
                    shape: ShapeSpec::Constant { qps: steady_qps },
                },
            ],
            classes: vec![
                ClassSpec {
                    name: "interactive".into(),
                    weight: 0.8,
                },
                ClassSpec {
                    name: "batch".into(),
                    weight: 0.2,
                },
            ],
            warmup_fraction: 0.1,
        }))
        .with_fault(FaultSpec {
            target: FaultTargetSpec::Instance(1),
            start_frac: 1.0 / 3.0,
            end_frac: 2.0 / 3.0,
            kind: FaultKindSpec::SlowDown { factor: 4.0 },
        })
        .with_axis(SweepAxis::Mitigation(vec![
            MitigationSpec::Baseline,
            MitigationSpec::Hedge(HedgeSpec::Percentile(0.5)),
            MitigationSpec::Tied,
            MitigationSpec::Selector(SelectorSpec::LeastLoaded),
            MitigationSpec::Selector(SelectorSpec::PowerOfTwo),
            MitigationSpec::Queue(QueuePolicySpec::DropDeadline {
                capacity: 64,
                slo_ns: 500_000,
            }),
        ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    #[test]
    fn every_preset_resolves_validates_and_round_trips() {
        for name in PRESET_NAMES {
            let spec = preset(name, Scale::Smoke).expect(name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let back = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
            assert_eq!(back, spec, "{name} must round-trip through JSON");
        }
        assert!(preset("fig99", Scale::Smoke).is_none());
    }

    #[test]
    fn preset_grids_match_the_original_binaries() {
        assert_eq!(preset("fig3", Scale::Quick).unwrap().grid_size(), 8 * 7);
        assert_eq!(preset("fig6", Scale::Quick).unwrap().grid_size(), 2 * 2 * 4);
        assert_eq!(preset("fig9", Scale::Quick).unwrap().grid_size(), 2 * 5);
        assert_eq!(preset("fig11", Scale::Quick).unwrap().grid_size(), 5);
        assert_eq!(preset("fig12", Scale::Quick).unwrap().grid_size(), 6);
    }
}
