//! The unified experiment layer of TailBench-RS.
//!
//! Three PRs of harness growth left the suite with six parallel `run*` entrypoints and
//! a configuration split across `BenchmarkConfig`, `ClusterConfig`, `Scenario` and the
//! cost model.  This crate replaces all of that with **one declarative spec and one
//! runner**:
//!
//! * [`ExperimentSpec`] — a serializable description of an experiment: workload (by
//!   registry name), harness mode, optional cluster topology (shards × replication ×
//!   fan-out × hedging), load model (absolute QPS, fraction of measured capacity,
//!   closed-loop, or a full phased [`ScenarioSpec`]), sweep axes, interference windows
//!   and the repeat/seed policy.  Specs round-trip exactly through JSON
//!   ([`ExperimentSpec::to_json_string`] / [`ExperimentSpec::from_json_str`]), which is
//!   what the `tailbench` CLI reads from disk.
//! * [`Registry`] — the app table: registry name → [`AppBuilder`] trait object bundling
//!   the `ServerApp`, `RequestFactory` and `CostModel` constructors plus cluster layout
//!   and default fan-out.  New workloads plug in with [`Registry::register`]; nothing
//!   else changes.
//! * [`Experiment::run`] — the single dispatcher.  It subsumes the old
//!   `runner::run` / `run_with_cost_model` / `run_cluster` /
//!   `scenario::run_scenario` / `run_cluster_scenario` entrypoints (which remain as
//!   deprecated wrappers): single server or cluster, all four harness modes, steady or
//!   scenario load, with capacity probing, hedge-trigger resolution and sweep-grid
//!   expansion handled internally.
//! * [`ExperimentOutput`] — structured results with Markdown and JSON renderers.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use tailbench_experiment::{
//!     AppBuilder, BenchApp, Experiment, ExperimentSpec, LoadSpec, ModeSpec, Registry, Scale,
//! };
//! use tailbench_core::app::{CostModel, EchoApp, InstructionRateModel};
//!
//! // Plug a custom workload into the registry…
//! struct Echo;
//! impl AppBuilder for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn build(&self, _scale: Scale) -> BenchApp {
//!         BenchApp::new("echo", Arc::new(EchoApp { spin_iters: 50_000 }),
//!                       |_seed| Box::new(|| b"ping".to_vec()))
//!     }
//!     fn cost_model(&self) -> Box<dyn CostModel> {
//!         Box::new(InstructionRateModel { ns_per_instruction: 1.0 })
//!     }
//! }
//! let mut registry = Registry::builtin();
//! registry.register(Box::new(Echo));
//!
//! // …describe the experiment declaratively…
//! let spec = ExperimentSpec::new("echo-demo", "echo")
//!     .with_mode(ModeSpec::Simulated)
//!     .with_load(LoadSpec::Qps(5_000.0))
//!     .with_requests(300)
//!     .with_warmup(30);
//!
//! // …and run it through the one entrypoint.
//! let output = Experiment::new(spec).with_registry(registry).run()?;
//! assert_eq!(output.points.len(), 1);
//! assert!(output.points[0].report.headline().sojourn.p99_ns > 0);
//! # Ok::<(), tailbench_core::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod capacity;
pub mod json;
pub mod output;
pub mod presets;
pub mod registry;
pub mod spec;

pub use bench::{
    evaluate as evaluate_bench_gates, latest_baseline, next_bench_path, run_suite, suite,
    BenchPreset, BenchRecord, EnvMeta, GateCheck, GateReport, PresetResult, SloGate, SuiteFilter,
};
pub use capacity::{capacity_qps, cluster_capacity_qps};
pub use output::{
    format_latency, verify_output_text, ExperimentOutput, ExperimentPoint, PointCoords, PointReport,
};
pub use registry::{
    build_app, build_replicated_search_cluster, build_search_cluster, AppBuilder, AppId, BenchApp,
    ClusterApp, Registry, SearchCluster,
};
pub use spec::{
    ClassSpec, ExperimentSpec, FanoutSpec, FaultKindSpec, FaultSpec, FaultTargetSpec, HedgeSpec,
    LoadSpec, MitigationSpec, ModeSpec, PhaseSpec, QueuePolicySpec, Scale, ScenarioSpec,
    SeedPolicy, SelectorSpec, ShapeSpec, SweepAxis, TopologySpec,
};

use spec::SUPPORTED_HEDGE_PERCENTILES;
use std::collections::BTreeMap;
use tailbench_core::app::CostModel;
use tailbench_core::config::{BenchmarkConfig, ClusterConfig, HedgePolicy};
use tailbench_core::error::HarnessError;
use tailbench_core::interference::{FaultEvent, FaultKind, FaultTarget, InterferencePlan};
use tailbench_core::report::{ClusterReport, LatencyStats, MultiRunReport, RunReport};
use tailbench_core::runner;
use tailbench_core::traffic::LoadMode;
use tailbench_scenario::{ClientClass, LoadPhase, PhaseShape, Scenario};
use tailbench_workloads::rng::derive_seed;

impl BenchApp {
    /// Creates a bench app from its parts (the constructor custom [`AppBuilder`]s use).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        app: std::sync::Arc<dyn tailbench_core::ServerApp>,
        factory_builder: impl Fn(u64) -> Box<dyn tailbench_core::RequestFactory> + Send + Sync + 'static,
    ) -> BenchApp {
        BenchApp {
            name: name.into(),
            app,
            factory_builder: Box::new(factory_builder),
        }
    }
}

impl ClusterApp {
    /// Creates a cluster app from its parts (instances in shard-major order).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        instances: Vec<std::sync::Arc<dyn tailbench_core::ServerApp>>,
        factory_builder: impl Fn(u64) -> Box<dyn tailbench_core::RequestFactory> + Send + Sync + 'static,
    ) -> ClusterApp {
        ClusterApp {
            name: name.into(),
            instances,
            factory_builder: Box::new(factory_builder),
        }
    }
}

/// One resolved sweep-grid point (before measurement).
#[derive(Debug, Clone)]
struct GridPoint {
    app: String,
    mode: ModeSpec,
    threads: usize,
    shards: Option<usize>,
    fraction: Option<f64>,
    qps: Option<f64>,
    hedge: Option<Option<HedgeSpec>>,
    selector: SelectorSpec,
    tied: bool,
    queue: Option<QueuePolicySpec>,
    mitigation: Option<String>,
}

/// The unified experiment runner: a spec plus the registry it resolves workloads from.
pub struct Experiment {
    spec: ExperimentSpec,
    registry: Registry,
}

impl Experiment {
    /// Wraps a spec with the built-in registry.
    #[must_use]
    pub fn new(spec: ExperimentSpec) -> Experiment {
        Experiment {
            spec,
            registry: Registry::builtin(),
        }
    }

    /// Replaces the registry (e.g. after registering custom workloads).
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Experiment {
        self.registry = registry;
        self
    }

    /// Loads a spec from JSON text and wraps it with the built-in registry.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] for malformed JSON or schema violations.
    pub fn from_json_str(text: &str) -> Result<Experiment, HarnessError> {
        Ok(Experiment::new(ExperimentSpec::from_json_str(text)?))
    }

    /// The spec this experiment will run.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// Runs the experiment: validates the spec, expands the sweep grid, probes
    /// capacities where the load is capacity-relative, resolves hedge triggers
    /// (measuring unhedged baselines for percentile triggers), and executes every
    /// point in every repeat.
    ///
    /// A spec with no sweep axes and one repeat reproduces the equivalent direct
    /// `runner::execute` / `execute_cluster` call bit for bit (same seed, same
    /// config), which the golden determinism tests pin.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] for spec-level inconsistencies (including
    /// unknown registry names) and propagates harness errors from individual runs.
    pub fn run(&self) -> Result<ExperimentOutput, HarnessError> {
        self.spec.validate()?;
        let scale = self.spec.scale.unwrap_or_else(Scale::from_env);
        let grid = self.grid();
        let single_point = grid.len() == 1;

        // Resolve every grid app up front: a typo in an App axis must fail in
        // milliseconds, not abort a long sweep mid-run and discard completed points.
        let mut unknown: Vec<&str> = grid
            .iter()
            .map(|p| p.app.as_str())
            .filter(|app| self.registry.get(app).is_none())
            .collect();
        unknown.sort_unstable();
        unknown.dedup();
        if !unknown.is_empty() {
            return Err(HarnessError::Config(format!(
                "spec '{}': unknown app(s) {} (registered: {})",
                self.spec.name,
                unknown.join(", "),
                self.registry.names().join(", ")
            )));
        }

        let mut singles: BTreeMap<String, BenchApp> = BTreeMap::new();
        let mut clusters: BTreeMap<(String, usize, usize), ClusterApp> = BTreeMap::new();
        let mut cost_models: BTreeMap<String, Box<dyn CostModel>> = BTreeMap::new();
        let mut capacities: BTreeMap<String, f64> = BTreeMap::new();
        let mut baselines: BTreeMap<String, LatencyStats> = BTreeMap::new();

        let mut points = Vec::with_capacity(grid.len());
        for (index, point) in grid.iter().enumerate() {
            let builder = self
                .registry
                .get(&point.app)
                .expect("grid apps resolved above");
            if !cost_models.contains_key(&point.app) {
                cost_models.insert(point.app.clone(), builder.cost_model());
            }
            let model: Option<&dyn CostModel> = cost_models.get(&point.app).map(AsRef::as_ref);

            // Sweep points are decorrelated by deriving a per-point seed — except on a
            // mitigation axis, where the rows are a controlled comparison and must face
            // the identical arrival trace (and the identical fault schedule): there the
            // root seed is shared, so any difference between rows is the policy itself.
            let point_seed = if single_point || point.mitigation.is_some() {
                self.spec.seed
            } else {
                derive_seed(self.spec.seed, index as u64)
            };

            let measured = match self.spec.topology {
                None => self.run_single_point(
                    point,
                    builder,
                    scale,
                    model,
                    point_seed,
                    &mut singles,
                    &mut capacities,
                )?,
                Some(topology) => self.run_cluster_point(
                    point,
                    topology,
                    builder,
                    scale,
                    model,
                    point_seed,
                    &mut clusters,
                    &mut capacities,
                    &mut baselines,
                )?,
            };
            points.push(measured);
        }
        Ok(ExperimentOutput {
            spec: self.spec.clone(),
            points,
        })
    }

    /// Expands the sweep axes into the Cartesian grid, in spec order.
    fn grid(&self) -> Vec<GridPoint> {
        let (fraction, qps) = match self.spec.load {
            LoadSpec::FractionOfCapacity(fraction) => (Some(fraction), None),
            LoadSpec::Qps(qps) => (None, Some(qps)),
            _ => (None, None),
        };
        let base = GridPoint {
            app: self.spec.app.clone(),
            mode: self.spec.mode,
            threads: self.spec.threads,
            shards: self.spec.topology.map(|t| t.shards),
            fraction,
            qps,
            hedge: self.spec.topology.and_then(|t| t.hedge).map(Some),
            selector: self.spec.topology.map(|t| t.selector).unwrap_or_default(),
            tied: self.spec.topology.is_some_and(|t| t.tied),
            queue: self.spec.queue,
            mitigation: None,
        };
        let mut grid = vec![base];
        for axis in &self.spec.sweep {
            let mut next = Vec::with_capacity(grid.len() * axis.len());
            for point in &grid {
                match axis {
                    SweepAxis::App(apps) => {
                        for app in apps {
                            let mut p = point.clone();
                            p.app = app.clone();
                            next.push(p);
                        }
                    }
                    SweepAxis::Mode(modes) => {
                        for mode in modes {
                            let mut p = point.clone();
                            p.mode = *mode;
                            next.push(p);
                        }
                    }
                    SweepAxis::LoadFraction(fractions) => {
                        for fraction in fractions {
                            let mut p = point.clone();
                            p.fraction = Some(*fraction);
                            p.qps = None;
                            next.push(p);
                        }
                    }
                    SweepAxis::Qps(rates) => {
                        for qps in rates {
                            let mut p = point.clone();
                            p.qps = Some(*qps);
                            p.fraction = None;
                            next.push(p);
                        }
                    }
                    SweepAxis::Threads(threads) => {
                        for t in threads {
                            let mut p = point.clone();
                            p.threads = *t;
                            next.push(p);
                        }
                    }
                    SweepAxis::Shards(shards) => {
                        for s in shards {
                            let mut p = point.clone();
                            p.shards = Some(*s);
                            next.push(p);
                        }
                    }
                    SweepAxis::Hedge(hedges) => {
                        for hedge in hedges {
                            let mut p = point.clone();
                            p.hedge = Some(*hedge);
                            next.push(p);
                        }
                    }
                    SweepAxis::Mitigation(policies) => {
                        for policy in policies {
                            // Each mitigation point is exactly one policy on top of a
                            // reset baseline, so rows compare single policies.
                            let mut p = point.clone();
                            p.hedge = Some(None);
                            p.selector = SelectorSpec::RoundRobin;
                            p.tied = false;
                            p.queue = self.spec.queue;
                            match policy {
                                MitigationSpec::Baseline => {}
                                MitigationSpec::Hedge(hedge) => p.hedge = Some(Some(*hedge)),
                                MitigationSpec::Tied => p.tied = true,
                                MitigationSpec::Selector(selector) => p.selector = *selector,
                                MitigationSpec::Queue(queue) => p.queue = Some(*queue),
                            }
                            p.mitigation = Some(policy.name());
                            next.push(p);
                        }
                    }
                }
            }
            grid = next;
        }
        grid
    }

    /// Seeds for the repeats of one point: repeat 0 of a single-repeat point uses the
    /// point seed directly (exact compatibility with a direct runner call); multiple
    /// repeats derive per-repeat seeds like `run_repeated` does, unless the policy
    /// pins them.
    fn repeat_seeds(&self, point_seed: u64) -> Vec<u64> {
        if self.spec.repeats == 1 {
            return vec![point_seed];
        }
        (0..self.spec.repeats)
            .map(|k| match self.spec.seed_policy {
                SeedPolicy::Fixed => point_seed,
                SeedPolicy::Derive => derive_seed(point_seed, k as u64),
            })
            .collect()
    }

    /// Builds the interference plan for a point, resolving fraction windows against
    /// the nominal span (`total_requests / qps` for steady loads, the trace span for
    /// scenarios).
    fn interference_plan(&self, nominal_span_ns: f64) -> InterferencePlan {
        let events = self
            .spec
            .interference
            .iter()
            .map(|fault| FaultEvent {
                target: match fault.target {
                    FaultTargetSpec::All => FaultTarget::All,
                    FaultTargetSpec::Instance(i) => FaultTarget::Instance(i),
                },
                start_ns: (fault.start_frac * nominal_span_ns) as u64,
                end_ns: (fault.end_frac * nominal_span_ns) as u64,
                kind: match fault.kind {
                    FaultKindSpec::SlowDown { factor } => FaultKind::SlowDown { factor },
                    FaultKindSpec::Pause => FaultKind::Pause,
                    FaultKindSpec::Jitter { amplitude_ns } => FaultKind::Jitter { amplitude_ns },
                },
            })
            .collect();
        InterferencePlan { events }
    }

    /// The core `Scenario` for a scenario-load point (with the point's admission
    /// policy, which a mitigation axis may have overridden).
    fn build_scenario(&self, scenario: &ScenarioSpec, queue: Option<QueuePolicySpec>) -> Scenario {
        let phases: Vec<LoadPhase> = scenario
            .phases
            .iter()
            .map(|p| LoadPhase {
                duration_ns: p.duration_ns,
                shape: match p.shape {
                    ShapeSpec::Constant { qps } => PhaseShape::Constant { qps },
                    ShapeSpec::Ramp { from_qps, to_qps } => PhaseShape::Ramp { from_qps, to_qps },
                    ShapeSpec::Burst {
                        base_qps,
                        burst_qps,
                        period_ns,
                        duty,
                    } => PhaseShape::Burst {
                        base_qps,
                        burst_qps,
                        period_ns,
                        duty,
                    },
                    ShapeSpec::Diurnal {
                        base_qps,
                        amplitude,
                        period_ns,
                    } => PhaseShape::Diurnal {
                        base_qps,
                        amplitude,
                        period_ns,
                    },
                },
            })
            .collect();
        let span_ns: u64 = phases.iter().map(|p| p.duration_ns).sum();
        let mut built = Scenario::new(self.spec.name.clone(), phases)
            .with_warmup_fraction(scenario.warmup_fraction)
            .with_interference(self.interference_plan(span_ns as f64));
        if let Some(queue) = queue {
            built = built.with_admission(queue.to_admission());
        }
        if !scenario.classes.is_empty() {
            built = built.with_classes(
                scenario
                    .classes
                    .iter()
                    .map(|c| ClientClass::new(c.name.clone(), c.weight))
                    .collect(),
            );
        }
        built
    }

    /// Per-class factories for a scenario run (one per class, decorrelated streams).
    fn class_factories(
        seed: u64,
        class_count: usize,
        factory: impl Fn(u64) -> Box<dyn tailbench_core::RequestFactory>,
    ) -> Vec<Box<dyn tailbench_core::RequestFactory>> {
        if class_count <= 1 {
            vec![factory(seed)]
        } else {
            (0..class_count)
                .map(|i| factory(derive_seed(seed, i as u64)))
                .collect()
        }
    }

    /// The steady-load benchmark config for one point (everything except scenarios).
    fn steady_config(
        &self,
        point: &GridPoint,
        offered_qps: Option<f64>,
        seed: u64,
    ) -> BenchmarkConfig {
        let requests = self.spec.requests;
        let mut config = BenchmarkConfig::new(offered_qps.unwrap_or(1.0).max(1.0), requests)
            .with_mode(point.mode.to_harness())
            .with_threads(point.threads)
            .with_warmup(self.spec.warmup_requests())
            .with_seed(seed);
        if let LoadSpec::Closed { think_ns } = self.spec.load {
            config = config.with_load(LoadMode::Closed { think_ns });
        }
        if let Some(queue) = point.queue {
            config = config.with_admission(queue.to_admission());
        }
        if !self.spec.interference.is_empty() {
            let total = config.total_requests() as f64;
            let span_ns = offered_qps.map_or(0.0, |qps| total / qps * 1e9);
            config = config.with_interference(self.interference_plan(span_ns));
        }
        config
    }

    #[allow(clippy::too_many_arguments)]
    fn run_single_point(
        &self,
        point: &GridPoint,
        builder: &dyn AppBuilder,
        scale: Scale,
        model: Option<&dyn CostModel>,
        point_seed: u64,
        singles: &mut BTreeMap<String, BenchApp>,
        capacities: &mut BTreeMap<String, f64>,
    ) -> Result<ExperimentPoint, HarnessError> {
        if !singles.contains_key(&point.app) {
            singles.insert(point.app.clone(), builder.build(scale));
        }
        let built = &singles[&point.app];

        let mut capacity = None;
        let offered_qps = match (point.qps, point.fraction) {
            (Some(qps), _) => Some(qps),
            (None, Some(fraction)) => {
                let key = format!("single|{}|{}", point.app, point.threads);
                let cap = match capacities.get(&key) {
                    Some(cap) => *cap,
                    None => {
                        let samples = self.spec.requests.min(800).max(point.threads);
                        let cap = capacity_qps(built, point.threads, samples);
                        capacities.insert(key, cap);
                        cap
                    }
                };
                capacity = Some(cap);
                Some((cap * fraction).max(1.0))
            }
            (None, None) => None,
        };

        let seeds = self.repeat_seeds(point_seed);
        let mut runs: Vec<RunReport> = Vec::with_capacity(seeds.len());
        for seed in &seeds {
            let report = match &self.spec.load {
                LoadSpec::Scenario(scenario_spec) => {
                    let scenario = self.build_scenario(scenario_spec, point.queue);
                    let factories =
                        Self::class_factories(*seed, scenario.class_count(), |s| built.factory(s));
                    tailbench_scenario::execute_scenario(
                        &built.app,
                        factories,
                        &scenario,
                        point.mode.to_harness(),
                        point.threads,
                        *seed,
                        model,
                    )?
                }
                _ => {
                    let config = self.steady_config(point, offered_qps, *seed);
                    let mut factory = built.factory(*seed);
                    runner::execute(&built.app, factory.as_mut(), &config, model)?
                }
            };
            runs.push(report);
        }
        let report = if runs.len() == 1 {
            PointReport::Single(runs.pop().expect("one run"))
        } else {
            PointReport::Multi(MultiRunReport::from_runs(runs, 0.05, self.spec.repeats))
        };
        Ok(ExperimentPoint {
            coords: PointCoords {
                app: point.app.clone(),
                mode: point.mode,
                threads: point.threads,
                shards: None,
                replication: None,
                load_fraction: point.fraction,
                hedge: None,
                mitigation: point.mitigation.clone(),
            },
            capacity_qps: capacity,
            hedge_delay_ns: None,
            report,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cluster_point(
        &self,
        point: &GridPoint,
        topology: TopologySpec,
        builder: &dyn AppBuilder,
        scale: Scale,
        model: Option<&dyn CostModel>,
        point_seed: u64,
        clusters: &mut BTreeMap<(String, usize, usize), ClusterApp>,
        capacities: &mut BTreeMap<String, f64>,
        baselines: &mut BTreeMap<String, LatencyStats>,
    ) -> Result<ExperimentPoint, HarnessError> {
        let shards = point.shards.unwrap_or(topology.shards).max(1);
        let replication = topology.replication.max(1);
        let cluster_key = (point.app.clone(), shards, replication);
        if !clusters.contains_key(&cluster_key) {
            clusters.insert(
                cluster_key.clone(),
                builder.build_cluster(shards, replication, scale),
            );
        }
        let built = &clusters[&cluster_key];
        let fanout = topology.fanout.resolve(builder.default_fanout());
        let base_cluster = ClusterConfig::new(shards, fanout)
            .with_replication(replication)
            .with_selector(point.selector.to_core())
            .with_tied(point.tied);

        let mut capacity = None;
        let offered_qps = match (point.qps, point.fraction) {
            (Some(qps), _) => Some(qps),
            (None, Some(fraction)) => {
                let key = format!(
                    "cluster|{}|{}|{}x{}|{}|{}",
                    point.app,
                    point.threads,
                    shards,
                    replication,
                    base_cluster.fanout.name(),
                    point.mode.name()
                );
                let cap = match capacities.get(&key) {
                    Some(cap) => *cap,
                    None => {
                        let cap = cluster_capacity_qps(
                            built,
                            &base_cluster,
                            point.mode.to_harness(),
                            point.threads,
                            self.spec.requests.min(300),
                            model,
                        )?;
                        capacities.insert(key, cap);
                        cap
                    }
                };
                capacity = Some(cap);
                Some((cap * fraction).max(1.0))
            }
            (None, None) => None,
        };

        // Resolve the hedge trigger; percentile triggers need an unhedged baseline at
        // the same coordinates (cached, measured with the root seed like the point
        // itself would be in a single-point run).
        let hedge_spec = point.hedge.flatten();
        let hedge_delay_ns = match hedge_spec {
            None => None,
            Some(HedgeSpec::DelayNs(delay_ns)) => Some(delay_ns.max(1)),
            Some(HedgeSpec::Percentile(p)) => {
                let key = baseline_key(point, shards, replication, base_cluster.fanout.name());
                let legs = match baselines.get(&key) {
                    Some(stats) => *stats,
                    None => {
                        let baseline = self.execute_cluster_once(
                            point,
                            built,
                            &base_cluster,
                            offered_qps,
                            self.spec.seed,
                            model,
                        )?;
                        let stats = baseline.shard_union_sojourn;
                        baselines.insert(key, stats);
                        stats
                    }
                };
                Some(percentile_stat(&legs, p).max(1))
            }
        };
        let hedged_cluster = match hedge_delay_ns {
            Some(delay_ns) => base_cluster
                .clone()
                .with_hedge(HedgePolicy::after_ns(delay_ns)),
            None => base_cluster.clone(),
        };

        let seeds = self.repeat_seeds(point_seed);
        let mut runs: Vec<ClusterReport> = Vec::with_capacity(seeds.len());
        for seed in &seeds {
            runs.push(self.execute_cluster_once(
                point,
                built,
                &hedged_cluster,
                offered_qps,
                *seed,
                model,
            )?);
        }
        let report = if runs.len() == 1 {
            PointReport::Cluster(runs.pop().expect("one run"))
        } else {
            PointReport::ClusterMulti(runs)
        };
        Ok(ExperimentPoint {
            coords: PointCoords {
                app: point.app.clone(),
                mode: point.mode,
                threads: point.threads,
                shards: Some(shards),
                replication: Some(replication),
                load_fraction: point.fraction,
                hedge: point.hedge,
                mitigation: point.mitigation.clone(),
            },
            capacity_qps: capacity,
            hedge_delay_ns,
            report,
        })
    }

    /// One cluster run of one point (steady or scenario load).  Any hedge policy is
    /// already baked into `cluster`.
    fn execute_cluster_once(
        &self,
        point: &GridPoint,
        built: &ClusterApp,
        cluster: &ClusterConfig,
        offered_qps: Option<f64>,
        seed: u64,
        model: Option<&dyn CostModel>,
    ) -> Result<ClusterReport, HarnessError> {
        match &self.spec.load {
            LoadSpec::Scenario(scenario_spec) => {
                let scenario = self.build_scenario(scenario_spec, point.queue);
                let factories =
                    Self::class_factories(seed, scenario.class_count(), |s| built.factory(s));
                tailbench_scenario::execute_cluster_scenario(
                    &built.instances,
                    factories,
                    &scenario,
                    cluster,
                    point.mode.to_harness(),
                    point.threads,
                    seed,
                    model,
                )
            }
            _ => {
                let config = self.steady_config(point, offered_qps, seed);
                let mut factory = built.factory(seed);
                runner::execute_cluster(&built.instances, factory.as_mut(), &config, cluster, model)
            }
        }
    }
}

/// Cache key for the unhedged percentile-trigger baselines.
///
/// Every coordinate that changes the unhedged leg-latency distribution must appear
/// here: app, mode, threads, shards × replication, **fan-out policy** (a broadcast and
/// a partitioned cluster at otherwise identical coordinates have very different leg
/// distributions), the replica selector, tied dispatch, the admission policy, and the
/// offered load.
fn baseline_key(point: &GridPoint, shards: usize, replication: usize, fanout: &str) -> String {
    format!(
        "{}|{}|{}|{}x{}|{}|{}|{}|{:?}|{:?}|{:?}",
        point.app,
        point.mode.name(),
        point.threads,
        shards,
        replication,
        fanout,
        point.selector.name(),
        point.tied,
        point.queue,
        point.fraction.map(f64::to_bits),
        point.qps.map(f64::to_bits),
    )
}

/// Reads the supported percentile off a [`LatencyStats`].
fn percentile_stat(stats: &LatencyStats, p: f64) -> u64 {
    debug_assert!(SUPPORTED_HEDGE_PERCENTILES.contains(&p));
    if p <= 0.5 {
        stats.p50_ns
    } else if p <= 0.9 {
        stats.p90_ns
    } else if p <= 0.95 {
        stats.p95_ns
    } else if p <= 0.99 {
        stats.p99_ns
    } else {
        stats.p999_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tailbench_core::app::{EchoApp, InstructionRateModel};

    /// A fixed-cost echo workload with a deterministic cost model: service time is
    /// exactly `spin_iters + 10` ns at 1 ns/instruction, so DES results are pinned.
    struct Echo {
        name: &'static str,
        spin_iters: u64,
    }

    impl AppBuilder for Echo {
        fn name(&self) -> &str {
            self.name
        }
        fn build(&self, _scale: Scale) -> BenchApp {
            BenchApp::new(
                self.name,
                Arc::new(EchoApp {
                    spin_iters: self.spin_iters,
                }),
                |_| Box::new(|| b"golden".to_vec()),
            )
        }
        fn cost_model(&self) -> Box<dyn CostModel> {
            Box::new(InstructionRateModel {
                ns_per_instruction: 1.0,
            })
        }
    }

    fn echo_registry() -> Registry {
        let mut registry = Registry::empty();
        registry.register(Box::new(Echo {
            name: "echo",
            spin_iters: 100_000,
        }));
        registry
    }

    fn echo_spec() -> ExperimentSpec {
        ExperimentSpec::new("unit", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Qps(5_000.0))
            .with_requests(500)
            .with_warmup(50)
            .with_seed(0x601D)
    }

    #[test]
    fn single_point_runs_and_is_deterministic() {
        let a = Experiment::new(echo_spec())
            .with_registry(echo_registry())
            .run()
            .unwrap();
        let b = Experiment::new(echo_spec())
            .with_registry(echo_registry())
            .run()
            .unwrap();
        assert_eq!(a.points.len(), 1);
        let (ra, rb) = (a.points[0].report.headline(), b.points[0].report.headline());
        assert_eq!(ra.sojourn.p99_ns, rb.sojourn.p99_ns);
        assert_eq!(ra.requests, 500);
        assert_eq!(ra.configuration, "simulated");
    }

    #[test]
    fn unknown_app_is_an_actionable_error() {
        let err = Experiment::new(echo_spec())
            .with_registry(Registry::empty())
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("unknown app(s) echo"), "{err}");
    }

    #[test]
    fn sweep_grid_multiplies_axes_in_order() {
        let spec = echo_spec()
            .with_axis(SweepAxis::Qps(vec![2_000.0, 5_000.0]))
            .with_axis(SweepAxis::Threads(vec![1, 2]));
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        assert_eq!(output.points.len(), 4);
        // Later axes vary fastest.
        assert_eq!(output.points[0].coords.threads, 1);
        assert_eq!(output.points[1].coords.threads, 2);
        assert_eq!(
            output.points[0].report.headline().offered_qps,
            Some(2_000.0)
        );
        assert_eq!(
            output.points[2].report.headline().offered_qps,
            Some(5_000.0)
        );
        // More threads drain the same load no slower at p99.
        assert!(
            output.points[1].report.headline().sojourn.p99_ns
                <= output.points[0].report.headline().sojourn.p99_ns
        );
    }

    #[test]
    fn fraction_load_probes_capacity_once_per_combination() {
        let spec = echo_spec()
            .with_load(LoadSpec::FractionOfCapacity(0.5))
            .with_axis(SweepAxis::LoadFraction(vec![0.2, 0.6]));
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        assert_eq!(output.points.len(), 2);
        let cap0 = output.points[0].capacity_qps.unwrap();
        let cap1 = output.points[1].capacity_qps.unwrap();
        assert_eq!(cap0, cap1, "capacity probe must be cached");
        let q0 = output.points[0].report.headline().offered_qps.unwrap();
        let q1 = output.points[1].report.headline().offered_qps.unwrap();
        assert!((q0 / cap0 - 0.2).abs() < 1e-9);
        assert!((q1 / cap1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn repeats_aggregate_with_confidence_intervals() {
        let spec = echo_spec().with_repeats(3, SeedPolicy::Derive);
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        let PointReport::Multi(multi) = &output.points[0].report else {
            panic!("repeats > 1 must aggregate");
        };
        assert_eq!(multi.runs.len(), 3);
        assert!(multi.p95_ci.half_width >= 0.0);
        // Derived seeds re-randomize arrivals, so runs differ.
        assert_ne!(multi.runs[0].sojourn.p99_ns, multi.runs[1].sojourn.p99_ns);
    }

    #[test]
    fn cluster_topology_runs_through_the_cluster_harness() {
        let mut registry = echo_registry();
        registry.register(Box::new(Echo {
            name: "echo",
            spin_iters: 100_000,
        }));
        let spec = echo_spec()
            .with_topology(TopologySpec::sharded(4).with_fanout(FanoutSpec::Broadcast))
            .with_axis(SweepAxis::Shards(vec![1, 4]));
        let output = Experiment::new(spec).with_registry(registry).run().unwrap();
        assert_eq!(output.points.len(), 2);
        let one = output.points[0].report.cluster().unwrap();
        let four = output.points[1].report.cluster().unwrap();
        assert_eq!(one.shards, 1);
        assert_eq!(four.shards, 4);
        // Broadcast hits every shard with the full stream…
        assert_eq!(four.per_shard.len(), 4);
        for shard in &four.per_shard {
            assert_eq!(shard.requests, four.cluster.requests);
        }
        // …and the end-to-end request waits for its slowest leg, so the cluster tail
        // dominates every shard's.
        assert!(
            four.cluster.sojourn.p99_ns >= four.max_shard_p99_ns(),
            "cluster p99 {} must dominate shard p99 {}",
            four.cluster.sojourn.p99_ns,
            four.max_shard_p99_ns()
        );
    }

    #[test]
    fn mitigation_axis_applies_one_policy_per_point() {
        let spec = ExperimentSpec::new("mitigation", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Qps(4_000.0))
            .with_requests(400)
            .with_warmup(40)
            .with_seed(0x5EED)
            .with_topology(
                TopologySpec::sharded(2)
                    .with_replication(2)
                    .with_fanout(FanoutSpec::Broadcast),
            )
            .with_axis(SweepAxis::Mitigation(vec![
                MitigationSpec::Baseline,
                MitigationSpec::Tied,
                MitigationSpec::Selector(SelectorSpec::LeastLoaded),
                MitigationSpec::Queue(QueuePolicySpec::DropDeadline {
                    capacity: 256,
                    slo_ns: 50_000_000,
                }),
            ]));
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        assert_eq!(output.points.len(), 4);
        let labels: Vec<&str> = output
            .points
            .iter()
            .map(|p| p.coords.mitigation.as_deref().unwrap())
            .collect();
        assert_eq!(
            labels,
            [
                "none",
                "tied",
                "least-loaded",
                "drop-deadline(256,50000000ns)"
            ]
        );
        // Each policy reaches the cluster harness: the baseline is a plain cluster,
        // tied reports duplicate-dispatch stats, the selector shows up in the
        // configuration tag, and the shed policy reaches the per-instance queues.
        let baseline = output.points[0].report.cluster().unwrap();
        assert!(baseline.hedge.is_none());
        let tied = output.points[1].report.cluster().unwrap();
        let tied_stats = tied.hedge.expect("tied runs report dispatch stats");
        assert!(
            tied_stats.issued > 0,
            "tied dispatches a second copy per leg"
        );
        assert!(
            tied.cluster.configuration.contains("tied"),
            "{}",
            tied.cluster.configuration
        );
        let selector = output.points[2].report.cluster().unwrap();
        assert!(
            selector.cluster.configuration.contains("least-loaded"),
            "{}",
            selector.cluster.configuration
        );
        let shed = output.points[3].report.cluster().unwrap();
        assert!(
            shed.cluster.queue_depth.policy.contains("drop-deadline"),
            "{}",
            shed.cluster.queue_depth.policy
        );
        // The table labels rows by policy.
        let md = output.to_markdown();
        assert!(md.contains("| policy |"), "{md}");
        assert!(md.contains("| least-loaded |"), "{md}");
    }

    #[test]
    fn baseline_cache_keys_separate_every_distribution_coordinate() {
        // Regression: the percentile-trigger baseline cache once keyed only on
        // app/mode/threads/shape/load — two points differing in fan-out (or selector,
        // or tied dispatch) silently shared one baseline, so the second point's hedge
        // trigger was resolved against the wrong leg distribution.
        let point = GridPoint {
            app: "echo".into(),
            mode: ModeSpec::Simulated,
            threads: 1,
            shards: Some(4),
            fraction: Some(0.7),
            qps: None,
            hedge: None,
            selector: SelectorSpec::RoundRobin,
            tied: false,
            queue: None,
            mitigation: None,
        };
        let base = baseline_key(&point, 4, 2, "broadcast");
        assert_ne!(base, baseline_key(&point, 4, 2, "partition"), "fan-out");
        let mut selector = point.clone();
        selector.selector = SelectorSpec::LeastLoaded;
        assert_ne!(base, baseline_key(&selector, 4, 2, "broadcast"), "selector");
        let mut tied = point.clone();
        tied.tied = true;
        assert_ne!(base, baseline_key(&tied, 4, 2, "broadcast"), "tied");
        let mut queued = point.clone();
        queued.queue = Some(QueuePolicySpec::Drop { capacity: 64 });
        assert_ne!(base, baseline_key(&queued, 4, 2, "broadcast"), "queue");
        // Identical coordinates still share the cache entry.
        assert_eq!(base, baseline_key(&point.clone(), 4, 2, "broadcast"));
    }

    #[test]
    fn percentile_hedge_resolves_against_an_unhedged_baseline() {
        let spec = ExperimentSpec::new("hedge", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Qps(4_000.0))
            .with_requests(400)
            .with_warmup(40)
            .with_seed(0x5EED)
            .with_topology(
                TopologySpec::sharded(2)
                    .with_replication(2)
                    .with_fanout(FanoutSpec::Broadcast),
            )
            .with_axis(SweepAxis::Hedge(vec![
                None,
                Some(HedgeSpec::Percentile(0.95)),
            ]));
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        assert_eq!(output.points.len(), 2);
        let unhedged = &output.points[0];
        let hedged = &output.points[1];
        assert_eq!(unhedged.hedge_delay_ns, None);
        assert!(unhedged.report.cluster().unwrap().hedge.is_none());
        let delay = hedged.hedge_delay_ns.expect("resolved trigger");
        assert!(delay > 0);
        let stats = hedged
            .report
            .cluster()
            .unwrap()
            .hedge
            .expect("hedged run reports hedge stats");
        assert!(stats.issued > 0, "a p95 trigger must fire sometimes");
    }

    #[test]
    fn interference_windows_scale_with_the_nominal_span() {
        let slow = ExperimentSpec::new("slow", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_load(LoadSpec::Qps(3_000.0))
            .with_requests(600)
            .with_warmup(60)
            .with_seed(7)
            .with_fault(FaultSpec {
                target: FaultTargetSpec::All,
                start_frac: 0.0,
                end_frac: 1.0,
                kind: FaultKindSpec::SlowDown { factor: 8.0 },
            });
        let mut clean = slow.clone();
        clean.interference.clear();
        clean.name = "clean".into();
        let registry = echo_registry;
        let slow_out = Experiment::new(slow)
            .with_registry(registry())
            .run()
            .unwrap();
        let clean_out = Experiment::new(clean)
            .with_registry(registry())
            .run()
            .unwrap();
        let slow_p99 = slow_out.points[0].report.headline().sojourn.p99_ns;
        let clean_p99 = clean_out.points[0].report.headline().sojourn.p99_ns;
        assert!(
            slow_p99 > 4 * clean_p99,
            "an 8x whole-run slowdown must blow up the tail: {slow_p99} vs {clean_p99}"
        );
    }

    #[test]
    fn scenario_load_reports_phases_and_classes() {
        let spec = ExperimentSpec::new("scenario", "echo")
            .with_mode(ModeSpec::Simulated)
            .with_seed(42)
            .with_load(LoadSpec::Scenario(ScenarioSpec {
                phases: vec![
                    PhaseSpec {
                        duration_ns: 100_000_000,
                        shape: ShapeSpec::Constant { qps: 2_000.0 },
                    },
                    PhaseSpec {
                        duration_ns: 100_000_000,
                        shape: ShapeSpec::Burst {
                            base_qps: 2_000.0,
                            burst_qps: 12_000.0,
                            period_ns: 50_000_000,
                            duty: 0.5,
                        },
                    },
                ],
                classes: vec![
                    ClassSpec {
                        name: "interactive".into(),
                        weight: 0.8,
                    },
                    ClassSpec {
                        name: "batch".into(),
                        weight: 0.2,
                    },
                ],
                warmup_fraction: 0.1,
            }));
        let output = Experiment::new(spec)
            .with_registry(echo_registry())
            .run()
            .unwrap();
        let report = output.points[0].report.headline();
        assert_eq!(report.per_class.len(), 2);
        assert_eq!(report.per_class[0].name, "interactive");
        assert_eq!(report.per_phase.len(), 2);
        assert!(
            report.per_phase[1].sojourn.p99_ns > report.per_phase[0].sojourn.p99_ns,
            "the burst phase must have the worse tail"
        );
    }
}
