//! The application registry: one constructor table for every workload.
//!
//! The paper's methodology is "one configuration, many measured variants"; the registry
//! is what lets one *spec* name any workload.  Each entry is an [`AppBuilder`] trait
//! object bundling the three constructors an experiment needs — the [`ServerApp`], a
//! seeded [`RequestFactory`] builder, and the [`CostModel`] used by simulated runs —
//! plus the workload's cluster layout (how instances are built for `shards ×
//! replication`) and its natural fan-out policy.  New workloads plug in through
//! [`Registry::register`] without touching the experiment machinery or the `bench`
//! binaries.

use crate::Scale;
use std::sync::Arc;
use tailbench_core::app::{CostModel, RequestFactory, ServerApp};
use tailbench_core::config::FanoutPolicy;
use tailbench_simarch::SystemModel;

/// The eight applications of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// xapian (online search).
    Xapian,
    /// masstree (key-value store).
    Masstree,
    /// moses (machine translation).
    Moses,
    /// sphinx (speech recognition).
    Sphinx,
    /// img-dnn (image recognition).
    ImgDnn,
    /// specjbb (business middleware).
    SpecJbb,
    /// silo (in-memory OLTP).
    Silo,
    /// shore (on-disk OLTP).
    Shore,
}

impl AppId {
    /// All applications in the paper's Table I order.
    pub const ALL: [AppId; 8] = [
        AppId::Xapian,
        AppId::Masstree,
        AppId::Moses,
        AppId::Sphinx,
        AppId::ImgDnn,
        AppId::SpecJbb,
        AppId::Silo,
        AppId::Shore,
    ];

    /// The application's name as used in reports and experiment specs.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppId::Xapian => "xapian",
            AppId::Masstree => "masstree",
            AppId::Moses => "moses",
            AppId::Sphinx => "sphinx",
            AppId::ImgDnn => "img-dnn",
            AppId::SpecJbb => "specjbb",
            AppId::Silo => "silo",
            AppId::Shore => "shore",
        }
    }

    /// Parses a name (as printed by [`AppId::name`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<AppId> {
        AppId::ALL.iter().copied().find(|a| a.name() == name)
    }
}

/// A constructed application together with a way to build request factories for it.
pub struct BenchApp {
    /// The application's registry name.
    pub name: String,
    /// The server side.
    pub app: Arc<dyn ServerApp>,
    pub(crate) factory_builder: Box<dyn Fn(u64) -> Box<dyn RequestFactory> + Send + Sync>,
}

impl BenchApp {
    /// Builds a request factory seeded for one run.
    #[must_use]
    pub fn factory(&self, seed: u64) -> Box<dyn RequestFactory> {
        (self.factory_builder)(seed)
    }
}

/// A constructed cluster: `shards * replication` server instances in shard-major order
/// (the layout `ClusterConfig` expects) plus a request-factory builder.
pub struct ClusterApp {
    /// The application's registry name.
    pub name: String,
    /// One server application per cluster instance, shard-major.
    pub instances: Vec<Arc<dyn ServerApp>>,
    pub(crate) factory_builder: Box<dyn Fn(u64) -> Box<dyn RequestFactory> + Send + Sync>,
}

impl ClusterApp {
    /// Builds a request factory seeded for one run.
    #[must_use]
    pub fn factory(&self, seed: u64) -> Box<dyn RequestFactory> {
        (self.factory_builder)(seed)
    }
}

/// One registry entry: the constructor set for a workload.
///
/// The default methods give a workload sensible cluster behavior for free: replicas
/// and shards are independent full copies of the single-server build, the cost model
/// is the suite's analytic [`SystemModel`], and fan-out is broadcast.  Workloads with
/// real partitioning (xapian's document-partitioned leaves) or structured keys
/// (masstree's hashed YCSB keys, the OLTP warehouse partitions) override them.
pub trait AppBuilder: Send + Sync {
    /// The registry name experiment specs refer to.
    fn name(&self) -> &str;

    /// Builds the single-server application at the given scale.
    fn build(&self, scale: Scale) -> BenchApp;

    /// Builds a cluster of `shards * replication` instances in shard-major order.
    ///
    /// The default builds one full copy of the single-server application per *shard*
    /// and shares that copy's `Arc` across the shard's replicas — replicas serve the
    /// same data by definition, so building them separately would only multiply
    /// construction time and memory.  Workloads that can really partition their data
    /// (like xapian's document-partitioned leaves) should override this.
    fn build_cluster(&self, shards: usize, replication: usize, scale: Scale) -> ClusterApp {
        full_copy_cluster(self, shards, replication, scale)
    }

    /// The cost model simulated runs of this workload use.
    fn cost_model(&self) -> Box<dyn CostModel> {
        Box::new(SystemModel::default())
    }

    /// The workload's natural cluster fan-out policy (used when a spec's topology says
    /// `"fanout": "auto"`).
    fn default_fanout(&self) -> FanoutPolicy {
        FanoutPolicy::Broadcast
    }
}

/// The constructor table: registry name → [`AppBuilder`].
pub struct Registry {
    builders: Vec<Box<dyn AppBuilder>>,
}

impl Registry {
    /// An empty registry (useful for fully custom experiment setups and tests).
    #[must_use]
    pub fn empty() -> Registry {
        Registry {
            builders: Vec::new(),
        }
    }

    /// The built-in registry holding the eight TailBench applications.
    #[must_use]
    pub fn builtin() -> Registry {
        let mut registry = Registry::empty();
        for id in AppId::ALL {
            registry.register(Box::new(SuiteApp(id)));
        }
        registry
    }

    /// Registers a builder; a builder with the same name is replaced, so tests and
    /// downstream users can shadow the built-ins.
    pub fn register(&mut self, builder: Box<dyn AppBuilder>) {
        self.builders.retain(|b| b.name() != builder.name());
        self.builders.push(builder);
    }

    /// Looks up a builder by registry name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&dyn AppBuilder> {
        self.builders
            .iter()
            .find(|b| b.name() == name)
            .map(AsRef::as_ref)
    }

    /// The registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.builders.iter().map(|b| b.name()).collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

/// The shared cluster layout behind [`AppBuilder::build_cluster`]'s default: one full
/// copy of the single-server build per shard, its `Arc` shared across the shard's
/// replicas.
fn full_copy_cluster<B: AppBuilder + ?Sized>(
    builder: &B,
    shards: usize,
    replication: usize,
    scale: Scale,
) -> ClusterApp {
    let shards = shards.max(1);
    let replication = replication.max(1);
    let mut instances = Vec::with_capacity(shards * replication);
    let mut factory_builder = None;
    for _ in 0..shards {
        let built = builder.build(scale);
        for _ in 0..replication {
            instances.push(Arc::clone(&built.app));
        }
        factory_builder.get_or_insert(built.factory_builder);
    }
    ClusterApp {
        name: builder.name().to_string(),
        instances,
        factory_builder: factory_builder.expect("at least one shard"),
    }
}

/// The built-in builder for one suite application.
struct SuiteApp(AppId);

impl AppBuilder for SuiteApp {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn build(&self, scale: Scale) -> BenchApp {
        build_app(self.0, scale)
    }

    fn build_cluster(&self, shards: usize, replication: usize, scale: Scale) -> ClusterApp {
        match self.0 {
            // xapian really partitions: each shard indexes a slice of one shared
            // corpus (global doc ids), replicas re-index the same slice.
            AppId::Xapian => build_xapian_cluster(shards, replication, scale),
            _ => full_copy_cluster(self, shards, replication, scale),
        }
    }

    fn default_fanout(&self) -> FanoutPolicy {
        match self.0 {
            AppId::Masstree => FanoutPolicy::ycsb(),
            AppId::Silo | AppId::Shore => FanoutPolicy::tpcc(),
            _ => FanoutPolicy::Broadcast,
        }
    }
}

/// Builds one application at the given scale.
#[must_use]
pub fn build_app(id: AppId, scale: Scale) -> BenchApp {
    use tailbench_imgdnn::{ImageRequestFactory, ImgDnnApp};
    use tailbench_jbb::{Company, JbbRequestFactory, SpecJbbApp};
    use tailbench_kvstore::{MasstreeApp, YcsbRequestFactory};
    use tailbench_oltp::{OltpApp, TpccRequestFactory};
    use tailbench_search::{SearchRequestFactory, XapianApp};
    use tailbench_speech::{SpeechRequestFactory, SphinxApp};
    use tailbench_translate::{ModelConfig, MosesApp, TranslateRequestFactory};
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};
    use tailbench_workloads::tpcc::TpccConfig;
    use tailbench_workloads::ycsb::YcsbConfig;

    let name = id.name().to_string();
    match id {
        AppId::Xapian => {
            let corpus_config = match scale {
                Scale::Quick | Scale::Smoke => CorpusConfig {
                    documents: 3_000,
                    vocabulary: 10_000,
                    ..CorpusConfig::default()
                },
                Scale::Full => CorpusConfig::default(),
            };
            let corpus = SyntheticCorpus::generate(corpus_config);
            let app = Arc::new(XapianApp::from_corpus(&corpus));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(SearchRequestFactory::new(&corpus, seed))
                }),
            }
        }
        AppId::Masstree => {
            let config = match scale {
                Scale::Quick | Scale::Smoke => YcsbConfig {
                    records: 100_000,
                    ..YcsbConfig::default()
                },
                Scale::Full => YcsbConfig::default(),
            };
            let app = Arc::new(MasstreeApp::new(&config));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(YcsbRequestFactory::new(&config, seed))
                }),
            }
        }
        AppId::Moses => {
            let model = match scale {
                Scale::Quick | Scale::Smoke => ModelConfig {
                    source_vocab: 3_000,
                    target_vocab: 3_000,
                    ..ModelConfig::default()
                },
                Scale::Full => ModelConfig::default(),
            };
            let app = Arc::new(MosesApp::new(
                model.clone(),
                tailbench_translate::DecoderConfig {
                    beam_width: match scale {
                        Scale::Quick | Scale::Smoke => 12,
                        Scale::Full => 40,
                    },
                    ..tailbench_translate::DecoderConfig::default()
                },
            ));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(TranslateRequestFactory::new(&model, seed))
                }),
            }
        }
        AppId::Sphinx => {
            let vocabulary = match scale {
                Scale::Quick | Scale::Smoke => 60,
                Scale::Full => tailbench_speech::DEFAULT_VOCABULARY,
            };
            let app = Arc::new(SphinxApp::new(vocabulary));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(SpeechRequestFactory::new(vocabulary, seed))
                }),
            }
        }
        AppId::ImgDnn => {
            let app = match scale {
                Scale::Quick | Scale::Smoke => Arc::new(ImgDnnApp::small()),
                Scale::Full => Arc::new(ImgDnnApp::standard()),
            };
            BenchApp {
                name,
                app,
                factory_builder: Box::new(|seed| Box::new(ImageRequestFactory::new(seed))),
            }
        }
        AppId::SpecJbb => {
            let company = match scale {
                Scale::Quick | Scale::Smoke => Company::new(1, 300, 2_000, 0x1BB),
                Scale::Full => Company::standard(),
            };
            let app = Arc::new(SpecJbbApp::new(company));
            let app_for_factory = Arc::clone(&app);
            BenchApp {
                name,
                app: app_for_factory,
                factory_builder: Box::new(move |seed| {
                    Box::new(JbbRequestFactory::new(app.company(), seed))
                }),
            }
        }
        AppId::Silo => {
            let config = match scale {
                Scale::Quick | Scale::Smoke => TpccConfig {
                    warehouses: 1,
                    items: 10_000,
                    customers_per_district: 300,
                    remote_line_fraction: 0.01,
                },
                Scale::Full => TpccConfig::silo(),
            };
            let app = Arc::new(OltpApp::silo(config.clone()));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(TpccRequestFactory::new(&config, seed))
                }),
            }
        }
        AppId::Shore => {
            let config = match scale {
                Scale::Quick | Scale::Smoke => TpccConfig {
                    warehouses: 2,
                    items: 5_000,
                    customers_per_district: 200,
                    remote_line_fraction: 0.01,
                },
                Scale::Full => TpccConfig::shore(),
            };
            let pool_pages = match scale {
                Scale::Quick | Scale::Smoke => 512,
                Scale::Full => 8_192,
            };
            let app = Arc::new(OltpApp::shore(config.clone(), pool_pages));
            BenchApp {
                name,
                app,
                factory_builder: Box::new(move |seed| {
                    Box::new(TpccRequestFactory::new(&config, seed))
                }),
            }
        }
    }
}

/// Builds a replicated xapian search cluster over one shared corpus: leaves in
/// shard-major order, each shard's replicas indexing the same document partition.
fn build_xapian_cluster(shards: usize, replication: usize, scale: Scale) -> ClusterApp {
    use tailbench_search::{SearchRequestFactory, XapianApp};
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};

    let corpus_config = match scale {
        Scale::Quick | Scale::Smoke => CorpusConfig {
            documents: 3_000,
            vocabulary: 10_000,
            ..CorpusConfig::default()
        },
        Scale::Full => CorpusConfig::default(),
    };
    let corpus = SyntheticCorpus::generate(corpus_config);
    let shards = shards.max(1);
    let instances = (0..shards)
        .flat_map(|s| {
            (0..replication.max(1))
                .map(|_| Arc::new(XapianApp::leaf(&corpus, s, shards)) as Arc<dyn ServerApp>)
                .collect::<Vec<_>>()
        })
        .collect();
    ClusterApp {
        name: "xapian".to_string(),
        instances,
        factory_builder: Box::new(move |seed| Box::new(SearchRequestFactory::new(&corpus, seed))),
    }
}

/// A web-search partition-aggregate cluster: one xapian leaf per shard over a shared
/// corpus, plus a query-factory builder.  Kept for the `bench` crate's historical API;
/// new code should go through [`Registry`] + `ExperimentSpec` topologies.
pub struct SearchCluster {
    /// One leaf application per shard (document-partitioned, global doc ids).
    pub leaves: Vec<Arc<dyn ServerApp>>,
    factory_builder: Box<dyn Fn(u64) -> Box<dyn RequestFactory> + Send + Sync>,
}

impl SearchCluster {
    /// Builds a query factory seeded for one run.
    #[must_use]
    pub fn factory(&self, seed: u64) -> Box<dyn RequestFactory> {
        (self.factory_builder)(seed)
    }
}

/// Builds `shards` xapian leaf nodes over one shared corpus at the given scale.
#[must_use]
pub fn build_search_cluster(shards: usize, scale: Scale) -> SearchCluster {
    build_replicated_search_cluster(shards, 1, scale)
}

/// Builds a replicated search cluster: `shards * replication` xapian leaves in
/// shard-major order (replicas of a shard index the same document partition), the
/// layout `ClusterConfig::with_replication` expects.
#[must_use]
pub fn build_replicated_search_cluster(
    shards: usize,
    replication: usize,
    scale: Scale,
) -> SearchCluster {
    let cluster = build_xapian_cluster(shards, replication, scale);
    SearchCluster {
        leaves: cluster.instances,
        factory_builder: cluster.factory_builder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_ids_round_trip_through_names() {
        for id in AppId::ALL {
            assert_eq!(AppId::parse(id.name()), Some(id));
        }
        assert_eq!(AppId::parse("nope"), None);
    }

    #[test]
    fn builtin_registry_holds_all_eight_apps() {
        let registry = Registry::builtin();
        assert_eq!(registry.names().len(), 8);
        for id in AppId::ALL {
            let builder = registry.get(id.name()).expect("registered");
            assert_eq!(builder.name(), id.name());
        }
        assert!(registry.get("unknown").is_none());
    }

    #[test]
    fn registration_replaces_by_name() {
        struct Custom;
        impl AppBuilder for Custom {
            fn name(&self) -> &str {
                "masstree"
            }
            fn build(&self, _scale: Scale) -> BenchApp {
                BenchApp {
                    name: "masstree".into(),
                    app: Arc::new(tailbench_core::app::EchoApp::default()),
                    factory_builder: Box::new(|_| Box::new(|| vec![0u8])),
                }
            }
        }
        let mut registry = Registry::builtin();
        registry.register(Box::new(Custom));
        assert_eq!(registry.names().len(), 8);
        let built = registry.get("masstree").unwrap().build(Scale::Smoke);
        assert_eq!(built.app.name(), "echo");
    }

    #[test]
    fn default_fanouts_match_the_wire_formats() {
        let registry = Registry::builtin();
        assert!(matches!(
            registry.get("masstree").unwrap().default_fanout(),
            FanoutPolicy::HashKey { offset: 1, len: 8 }
        ));
        assert!(matches!(
            registry.get("silo").unwrap().default_fanout(),
            FanoutPolicy::Partition { offset: 1, len: 4 }
        ));
        assert!(matches!(
            registry.get("xapian").unwrap().default_fanout(),
            FanoutPolicy::Broadcast
        ));
    }

    #[test]
    fn default_cluster_layout_shares_replica_data() {
        let registry = Registry::builtin();
        let cluster = registry
            .get("masstree")
            .unwrap()
            .build_cluster(2, 2, Scale::Smoke);
        assert_eq!(cluster.instances.len(), 4);
        // Replicas of a shard are the same Arc (same data), shards are distinct.
        assert!(Arc::ptr_eq(&cluster.instances[0], &cluster.instances[1]));
        assert!(!Arc::ptr_eq(&cluster.instances[0], &cluster.instances[2]));
    }
}
