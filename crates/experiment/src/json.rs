//! A minimal, dependency-free JSON value type with an exact parser and writer.
//!
//! The build environment is offline and the in-tree `serde` shim provides marker
//! traits only (see `stubs/README.md`), so the experiment layer carries its own small
//! JSON codec.  Design points that matter for the suite:
//!
//! * **integers round-trip exactly** — seeds and nanosecond values are `u64`s that do
//!   not fit in an `f64`, so integer literals parse into [`Json::U64`]/[`Json::I64`]
//!   and only fractional/exponent literals become [`Json::F64`];
//! * **floats round-trip exactly** — the writer uses Rust's shortest-representation
//!   `Display` for `f64`, which `str::parse::<f64>` maps back to the identical bits;
//! * **object key order is preserved** (objects are association vectors, not maps), so
//!   serializing the same value twice yields byte-identical text — a property the
//!   golden output tests pin.
//!
//! The codec accepts standard JSON (RFC 8259): UTF-8 text, string escapes including
//! `\uXXXX` surrogate pairs, and arbitrarily nested arrays/objects up to a fixed depth
//! limit that keeps malicious spec files from overflowing the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits in a `u64`.
    U64(u64),
    /// A negative integer literal that fits in an `i64`.
    I64(i64),
    /// Any other number literal (fraction or exponent present, or out of integer range).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for serialization.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (convenience for serializers).
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen losslessly where possible).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(u) => Some(u as f64),
            Json::I64(i) => Some(i as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` (exact; rejects negatives, fractions and floats).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(u) => Some(u),
            _ => None,
        }
    }

    /// The value as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Serializes to pretty-printed JSON text (two-space indent, trailing newline).
    #[must_use]
    pub fn to_text_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out.push('\n');
        out
    }
}

fn write_value(value: &Json, indent: Option<usize>, level: usize, out: &mut String) {
    use fmt::Write as _;
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Json::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Json::F64(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest string that parses back to
                // the identical value, so writes round-trip exactly.  Integral floats
                // keep a ".0" suffix so they re-parse as F64, not U64.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no NaN/Infinity; null is the least-surprising fallback.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(items.iter(), indent, level, out, '[', ']', |item, o, l| {
            write_value(item, indent, l, o);
        }),
        Json::Obj(pairs) => write_seq(
            pairs.iter(),
            indent,
            level,
            out,
            '{',
            '}',
            |(k, v), o, l| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, l, o);
            },
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (exactly one value plus whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first malformed construct, or of
/// trailing garbage after the first value.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number: digits must follow '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number: digits must follow exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_text(), text);
        }
    }

    #[test]
    fn u64_integers_are_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
        assert_eq!(v.to_text(), "18446744073709551615");
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::I64(i64::MIN));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 0.7, 1.0 / 3.0, 2.5e-9, 1e300, -0.825, 4.0] {
            let v = Json::F64(f);
            let text = v.to_text();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "text {text}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(Json::F64(4.0).to_text(), "4.0");
        assert_eq!(parse("4.0").unwrap(), Json::F64(4.0));
    }

    #[test]
    fn nested_structures_round_trip_and_preserve_key_order() {
        let text = r#"{"b":[1,2.5,{"x":null}],"a":true,"s":"q\"uote\n"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_text(), text);
        assert_eq!(v.get("a"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn pretty_output_reparses_to_the_same_value() {
        let v = Json::obj(vec![
            ("name", Json::str("fig9")),
            ("fractions", Json::Arr(vec![Json::F64(0.2), Json::F64(0.7)])),
            ("seed", Json::U64(0x5EED)),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let pretty = v.to_text_pretty();
        assert!(pretty.contains("  \"name\": \"fig9\""));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::str("A"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::str("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert_eq!(parse("\"h\u{e9}llo\"").unwrap(), Json::str("h\u{e9}llo"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
        assert!(parse("01").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).unwrap_err().message.contains("deep"));
    }
}
