//! Structured experiment output: one object per run, with Markdown and JSON renderers.
//!
//! `Experiment::run()` returns an [`ExperimentOutput`]: the spec that produced it (for
//! provenance) plus one [`ExperimentPoint`] per sweep-grid point, each carrying its
//! resolved coordinates (app, mode, threads, shards, load fraction, hedge trigger),
//! the probed capacity, and the full harness report.  [`ExperimentOutput::to_markdown`]
//! renders the human-readable table the figure binaries print;
//! [`ExperimentOutput::to_json`] emits the machine-readable form the CI smoke gate and
//! downstream tooling consume.

use crate::json::Json;
use crate::spec::{ExperimentSpec, HedgeSpec, ModeSpec};
use tailbench_core::report::{
    markdown_table, ClusterReport, HedgeStats, LabeledLatency, LatencyStats, MultiRunReport,
    QueueSummary, RunReport,
};
use tailbench_histogram::ConfidenceInterval;

/// Formats a nanosecond latency for table output (µs below 1 ms, ms below 10 s, else s).
#[must_use]
pub fn format_latency(ns: f64) -> String {
    if ns < 1e6 {
        format!("{:.0} us", ns / 1e3)
    } else if ns < 10e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// The resolved coordinates of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointCoords {
    /// Registry name of the workload measured at this point.
    pub app: String,
    /// Harness mode of this point.
    pub mode: ModeSpec,
    /// Worker threads per server instance.
    pub threads: usize,
    /// Shard count (`None` for single-server points).
    pub shards: Option<usize>,
    /// Replicas per shard (`None` for single-server points).
    pub replication: Option<usize>,
    /// Capacity fraction this point was driven at (`None` for absolute/scenario load).
    pub load_fraction: Option<f64>,
    /// The hedge trigger of this point (`Some(None)` = explicitly unhedged point on a
    /// hedge axis; `None` = hedging not in play).
    pub hedge: Option<Option<HedgeSpec>>,
    /// The tail-mitigation policy label of this point (`Some` only on a mitigation
    /// axis, e.g. `"none"`, `"tied"`, `"least-loaded"`, `"drop-deadline(64,2000000ns)"`).
    pub mitigation: Option<String>,
}

impl PointCoords {
    fn hedge_label(&self) -> Option<String> {
        self.hedge.as_ref().map(|hedge| match hedge {
            None => "none".to_string(),
            Some(HedgeSpec::DelayNs(delay_ns)) => format_latency(*delay_ns as f64).to_string(),
            Some(HedgeSpec::Percentile(p)) => format!("p{:.4}", p * 100.0)
                .trim_end_matches('0')
                .trim_end_matches('.')
                .to_string(),
        })
    }
}

/// The harness report of one grid point.
#[derive(Debug, Clone)]
pub enum PointReport {
    /// A single-server, single-repeat run.
    Single(RunReport),
    /// A single-server point with repeats, aggregated with confidence intervals.
    Multi(MultiRunReport),
    /// A cluster, single-repeat run.
    Cluster(ClusterReport),
    /// A cluster point with repeats (one report per repeat, in seed order).
    ClusterMulti(Vec<ClusterReport>),
}

impl PointReport {
    /// The representative end-to-end report of the point: the run itself, or — for
    /// repeated points — the repeat whose end-to-end p95 is closest to the
    /// across-repeat mean (same rule as [`MultiRunReport::representative_run`]).
    #[must_use]
    pub fn headline(&self) -> &RunReport {
        match self {
            PointReport::Single(report) => report,
            PointReport::Multi(multi) => multi
                .representative_run()
                .expect("a measured point has at least one run"),
            PointReport::Cluster(report) => &report.cluster,
            PointReport::ClusterMulti(reports) => &representative_cluster(reports).cluster,
        }
    }

    /// The cluster view of the point, if it ran through the cluster harness (the
    /// representative repeat for repeated points).
    #[must_use]
    pub fn cluster(&self) -> Option<&ClusterReport> {
        match self {
            PointReport::Cluster(report) => Some(report),
            PointReport::ClusterMulti(reports) => Some(representative_cluster(reports)),
            _ => None,
        }
    }
}

/// The repeat whose end-to-end p95 is closest to the across-repeat mean p95.
fn representative_cluster(reports: &[ClusterReport]) -> &ClusterReport {
    let mean = reports
        .iter()
        .map(|r| r.cluster.sojourn.p95_ns as f64)
        .sum::<f64>()
        / reports.len().max(1) as f64;
    reports
        .iter()
        .min_by(|a, b| {
            let da = (a.cluster.sojourn.p95_ns as f64 - mean).abs();
            let db = (b.cluster.sojourn.p95_ns as f64 - mean).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("a measured point has at least one repeat")
}

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Where in the sweep grid this point sits.
    pub coords: PointCoords,
    /// The probed capacity this point's load was derived from (`None` for absolute
    /// rates and scenarios).
    pub capacity_qps: Option<f64>,
    /// The resolved hedge trigger delay, ns (`None` when unhedged).
    pub hedge_delay_ns: Option<u64>,
    /// The harness report.
    pub report: PointReport,
}

/// The structured result of one `Experiment::run()`.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The spec that produced this output (provenance; serialized into the JSON form).
    pub spec: ExperimentSpec,
    /// One point per sweep-grid entry, in grid order.
    pub points: Vec<ExperimentPoint>,
}

impl ExperimentOutput {
    /// Renders the output as a Markdown section: a header plus one table with one row
    /// per point.  Columns adapt to the sweep (shards/load/hedge columns appear only
    /// when the grid varies them or a topology/hedge is configured).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let any_shards = self.points.iter().any(|p| p.coords.shards.is_some());
        let any_fraction = self.points.iter().any(|p| p.coords.load_fraction.is_some());
        let any_hedge = self.points.iter().any(|p| p.coords.hedge.is_some());
        let any_mitigation = self.points.iter().any(|p| p.coords.mitigation.is_some());
        let any_cluster = self.points.iter().any(|p| p.report.cluster().is_some());

        let mut headers = vec!["app", "mode", "threads"];
        if any_shards {
            headers.push("shards");
        }
        if any_fraction {
            headers.push("load");
        }
        if any_mitigation {
            headers.push("policy");
        } else if any_hedge {
            headers.push("hedge");
        }
        headers.extend(["offered QPS", "achieved QPS", "mean", "p50", "p95", "p99"]);
        if any_cluster {
            headers.extend(["shard p99 (mean)", "amplification"]);
        }
        if any_hedge {
            headers.extend(["hedges", "wins"]);
        }

        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|point| {
                let headline = point.report.headline();
                let mut row = vec![
                    point.coords.app.clone(),
                    point.coords.mode.name().to_string(),
                    point.coords.threads.to_string(),
                ];
                if any_shards {
                    row.push(match (point.coords.shards, point.coords.replication) {
                        (Some(s), Some(r)) if r > 1 => format!("{s}x{r}"),
                        (Some(s), _) => s.to_string(),
                        (None, _) => "-".to_string(),
                    });
                }
                if any_fraction {
                    row.push(match point.coords.load_fraction {
                        Some(fraction) => format!("{:.0}%", fraction * 100.0),
                        None => "-".to_string(),
                    });
                }
                if any_mitigation {
                    row.push(
                        point
                            .coords
                            .mitigation
                            .clone()
                            .unwrap_or_else(|| "-".into()),
                    );
                } else if any_hedge {
                    row.push(point.coords.hedge_label().unwrap_or_else(|| "-".into()));
                }
                row.push(match headline.offered_qps {
                    Some(qps) => format!("{qps:.0}"),
                    None => "-".to_string(),
                });
                row.push(format!("{:.0}", headline.achieved_qps));
                row.push(format_latency(headline.sojourn.mean_ns));
                row.push(format_latency(headline.sojourn.p50_ns as f64));
                row.push(format_latency(headline.sojourn.p95_ns as f64));
                row.push(format_latency(headline.sojourn.p99_ns as f64));
                if any_cluster {
                    match point.report.cluster() {
                        Some(cluster) => {
                            row.push(format_latency(cluster.mean_shard_p99_ns()));
                            row.push(format!("{:.2}x", cluster.p99_amplification()));
                        }
                        None => {
                            row.push("-".to_string());
                            row.push("-".to_string());
                        }
                    }
                }
                if any_hedge {
                    let stats = point.report.cluster().and_then(|c| c.hedge);
                    row.push(stats.map_or("-".to_string(), |s| s.issued.to_string()));
                    row.push(stats.map_or("-".to_string(), |s| s.wins.to_string()));
                }
                row
            })
            .collect();

        let mut out = format!("\n## {}\n\n", self.spec.name);
        out.push_str(&markdown_table(&headers, &rows));
        out
    }

    /// Encodes the full output (spec + every report) as a JSON tree.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.spec.name.clone())),
            ("spec", self.spec.to_json()),
            (
                "points",
                Json::Arr(self.points.iter().map(point_to_json).collect()),
            ),
        ])
    }

    /// Encodes to pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_text_pretty()
    }
}

fn point_to_json(point: &ExperimentPoint) -> Json {
    let coords = &point.coords;
    let mut coord_pairs = vec![
        ("app", Json::str(coords.app.clone())),
        ("mode", coords.mode.to_json()),
        ("threads", Json::U64(coords.threads as u64)),
    ];
    if let Some(shards) = coords.shards {
        coord_pairs.push(("shards", Json::U64(shards as u64)));
    }
    if let Some(replication) = coords.replication {
        coord_pairs.push(("replication", Json::U64(replication as u64)));
    }
    if let Some(fraction) = coords.load_fraction {
        coord_pairs.push(("load_fraction", Json::F64(fraction)));
    }
    if let Some(label) = coords.hedge_label() {
        coord_pairs.push(("hedge", Json::str(label)));
    }
    if let Some(label) = &coords.mitigation {
        coord_pairs.push(("mitigation", Json::str(label.clone())));
    }
    let mut pairs = vec![(
        "coords",
        Json::Obj(
            coord_pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ),
    )];
    if let Some(capacity) = point.capacity_qps {
        pairs.push(("capacity_qps", Json::F64(capacity)));
    }
    if let Some(delay) = point.hedge_delay_ns {
        pairs.push(("hedge_delay_ns", Json::U64(delay)));
    }
    let report = match &point.report {
        PointReport::Single(report) => Json::obj(vec![("single", run_report_to_json(report))]),
        PointReport::Multi(multi) => Json::obj(vec![("multi", multi_report_to_json(multi))]),
        PointReport::Cluster(report) => {
            Json::obj(vec![("cluster", cluster_report_to_json(report))])
        }
        PointReport::ClusterMulti(reports) => Json::obj(vec![(
            "cluster_multi",
            Json::Arr(reports.iter().map(cluster_report_to_json).collect()),
        )]),
    };
    pairs.push(("report", report));
    Json::obj(pairs)
}

fn latency_stats_to_json(stats: &LatencyStats) -> Json {
    Json::obj(vec![
        ("count", Json::U64(stats.count)),
        ("mean_ns", Json::F64(stats.mean_ns)),
        ("p50_ns", Json::U64(stats.p50_ns)),
        ("p90_ns", Json::U64(stats.p90_ns)),
        ("p95_ns", Json::U64(stats.p95_ns)),
        ("p99_ns", Json::U64(stats.p99_ns)),
        ("p999_ns", Json::U64(stats.p999_ns)),
        ("min_ns", Json::U64(stats.min_ns)),
        ("max_ns", Json::U64(stats.max_ns)),
    ])
}

fn queue_summary_to_json(summary: &QueueSummary) -> Json {
    Json::obj(vec![
        ("policy", Json::str(summary.policy.clone())),
        ("accepted", Json::U64(summary.accepted)),
        ("dropped", Json::U64(summary.dropped)),
        ("peak_depth", Json::U64(summary.peak_depth)),
        ("mean_sampled_depth", Json::F64(summary.mean_sampled_depth)),
        (
            "depth_timeline",
            Json::Arr(
                summary
                    .depth_timeline
                    .iter()
                    .map(|&(t, d)| Json::Arr(vec![Json::U64(t), Json::U64(d)]))
                    .collect(),
            ),
        ),
    ])
}

fn labeled_to_json(labeled: &[LabeledLatency]) -> Json {
    Json::Arr(
        labeled
            .iter()
            .map(|l| {
                Json::obj(vec![
                    ("name", Json::str(l.name.clone())),
                    ("sojourn", latency_stats_to_json(&l.sojourn)),
                ])
            })
            .collect(),
    )
}

/// Encodes one [`RunReport`] (all fields, including per-class/per-phase breakdowns).
#[must_use]
pub fn run_report_to_json(report: &RunReport) -> Json {
    let mut pairs = vec![
        ("app", Json::str(report.app.clone())),
        ("configuration", Json::str(report.configuration.clone())),
        (
            "offered_qps",
            report.offered_qps.map_or(Json::Null, Json::F64),
        ),
        ("achieved_qps", Json::F64(report.achieved_qps)),
        ("requests", Json::U64(report.requests)),
        ("worker_threads", Json::U64(report.worker_threads as u64)),
        ("duration_ns", Json::U64(report.duration_ns)),
        ("sojourn", latency_stats_to_json(&report.sojourn)),
        ("service", latency_stats_to_json(&report.service)),
        ("queue", latency_stats_to_json(&report.queue)),
        ("overhead", latency_stats_to_json(&report.overhead)),
        ("queue_depth", queue_summary_to_json(&report.queue_depth)),
        ("pacing", latency_stats_to_json(&report.pacing)),
    ];
    if !report.per_class.is_empty() {
        pairs.push(("per_class", labeled_to_json(&report.per_class)));
    }
    if !report.per_phase.is_empty() {
        pairs.push(("per_phase", labeled_to_json(&report.per_phase)));
    }
    Json::obj(pairs)
}

fn hedge_stats_to_json(stats: &HedgeStats) -> Json {
    Json::obj(vec![
        ("issued", Json::U64(stats.issued)),
        ("wins", Json::U64(stats.wins)),
    ])
}

/// Encodes one [`ClusterReport`] (end-to-end, per-shard, union and hedge views).
#[must_use]
pub fn cluster_report_to_json(report: &ClusterReport) -> Json {
    let mut pairs = vec![
        ("cluster", run_report_to_json(&report.cluster)),
        (
            "per_shard",
            Json::Arr(report.per_shard.iter().map(run_report_to_json).collect()),
        ),
        ("shards", Json::U64(report.shards as u64)),
        ("replication", Json::U64(report.replication as u64)),
        (
            "shard_union_sojourn",
            latency_stats_to_json(&report.shard_union_sojourn),
        ),
        ("unmerged", Json::U64(report.unmerged)),
    ];
    if let Some(hedge) = &report.hedge {
        pairs.push(("hedge", hedge_stats_to_json(hedge)));
    }
    pairs.push(("p99_amplification", Json::F64(report.p99_amplification())));
    Json::obj(pairs)
}

fn ci_to_json(ci: &ConfidenceInterval) -> Json {
    Json::obj(vec![
        ("n", Json::U64(ci.n as u64)),
        ("mean", Json::F64(ci.mean)),
        ("std_dev", Json::F64(ci.std_dev)),
        ("half_width", Json::F64(ci.half_width)),
    ])
}

/// Encodes one [`MultiRunReport`] (per-run reports plus the confidence intervals).
#[must_use]
pub fn multi_report_to_json(multi: &MultiRunReport) -> Json {
    Json::obj(vec![
        (
            "runs",
            Json::Arr(multi.runs.iter().map(run_report_to_json).collect()),
        ),
        ("mean_ci", ci_to_json(&multi.mean_ci)),
        ("p95_ci", ci_to_json(&multi.p95_ci)),
        ("p99_ci", ci_to_json(&multi.p99_ci)),
        ("converged", Json::Bool(multi.converged)),
    ])
}

/// Verifies that serialized experiment output is structurally sound: it parses, holds
/// at least one point, and every point's headline report carries a positive end-to-end
/// `p99_ns` plus the measurement-pipeline fields (`queue_depth` admission accounting
/// and the `pacing` error summary).  This is the check the CI smoke gate runs against
/// the `tailbench` CLI's `--json` output.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found.
pub fn verify_output_text(text: &str) -> Result<usize, String> {
    let value = crate::json::parse(text).map_err(|e| e.to_string())?;
    let points = value
        .get("points")
        .and_then(Json::as_array)
        .ok_or("output has no 'points' array")?;
    if points.is_empty() {
        return Err("output has zero points".to_string());
    }
    for (i, point) in points.iter().enumerate() {
        let report = point
            .get("report")
            .ok_or_else(|| format!("point {i} has no report"))?;
        let (_, Some(body)) = report_variant(report)? else {
            return Err(format!("point {i}: malformed report"));
        };
        let headline = match report_variant(report)?.0 {
            "single" => body.clone(),
            "cluster" => body
                .get("cluster")
                .cloned()
                .ok_or_else(|| format!("point {i}: cluster report lacks 'cluster'"))?,
            "multi" => body
                .get("runs")
                .and_then(Json::as_array)
                .and_then(<[Json]>::first)
                .cloned()
                .ok_or_else(|| format!("point {i}: multi report lacks runs"))?,
            "cluster_multi" => body
                .as_array()
                .and_then(<[Json]>::first)
                .and_then(|r| r.get("cluster"))
                .cloned()
                .ok_or_else(|| format!("point {i}: cluster_multi report lacks runs"))?,
            kind => return Err(format!("point {i}: unknown report kind '{kind}'")),
        };
        let p99 = headline
            .get("sojourn")
            .and_then(|s| s.get("p99_ns"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("point {i}: missing sojourn.p99_ns"))?;
        if p99 == 0 {
            return Err(format!("point {i}: sojourn.p99_ns is 0"));
        }
        headline
            .get("queue_depth")
            .and_then(|q| q.get("policy"))
            .and_then(Json::as_str)
            .ok_or_else(|| format!("point {i}: missing queue_depth admission summary"))?;
        headline
            .get("pacing")
            .and_then(|p| p.get("count"))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("point {i}: missing pacing summary"))?;
    }
    Ok(points.len())
}

fn report_variant(report: &Json) -> Result<(&str, Option<&Json>), String> {
    match report {
        Json::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), Some(&pairs[0].1))),
        _ => Err("report must be a single-variant object".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LoadSpec;

    fn stats(p99_ms: f64) -> LatencyStats {
        LatencyStats {
            count: 1000,
            mean_ns: p99_ms * 0.5e6,
            p50_ns: (p99_ms * 0.4e6) as u64,
            p90_ns: (p99_ms * 0.8e6) as u64,
            p95_ns: (p99_ms * 0.9e6) as u64,
            p99_ns: (p99_ms * 1e6) as u64,
            p999_ns: (p99_ms * 1.4e6) as u64,
            min_ns: 1_000,
            max_ns: (p99_ms * 2e6) as u64,
        }
    }

    fn run_report() -> RunReport {
        RunReport {
            app: "echo".into(),
            configuration: "simulated".into(),
            offered_qps: Some(5_000.0),
            achieved_qps: 4_990.0,
            requests: 1_000,
            worker_threads: 1,
            duration_ns: 200_000_000,
            sojourn: stats(2.0),
            service: stats(1.0),
            queue: stats(0.5),
            overhead: stats(0.1),
            per_class: Vec::new(),
            per_phase: Vec::new(),
            queue_depth: QueueSummary {
                policy: "unbounded".into(),
                accepted: 1_000,
                dropped: 0,
                peak_depth: 12,
                mean_sampled_depth: 3.5,
                depth_timeline: vec![(0, 1), (1_000_000, 12)],
            },
            pacing: stats(0.01),
        }
    }

    fn output() -> ExperimentOutput {
        ExperimentOutput {
            spec: ExperimentSpec::new("demo", "echo").with_load(LoadSpec::Qps(5_000.0)),
            points: vec![ExperimentPoint {
                coords: PointCoords {
                    app: "echo".into(),
                    mode: ModeSpec::Simulated,
                    threads: 1,
                    shards: None,
                    replication: None,
                    load_fraction: None,
                    hedge: None,
                    mitigation: None,
                },
                capacity_qps: None,
                hedge_delay_ns: None,
                report: PointReport::Single(run_report()),
            }],
        }
    }

    #[test]
    fn markdown_has_headline_columns_and_one_row_per_point() {
        let md = output().to_markdown();
        assert!(md.contains("## demo"));
        assert!(
            md.contains("| app | mode | threads | offered QPS |"),
            "{md}"
        );
        assert!(md.contains("| echo | simulated | 1 | 5000 |"), "{md}");
        // No cluster/hedge columns for a plain single-server output.
        assert!(!md.contains("amplification"));
        assert!(!md.contains("hedge"));
    }

    #[test]
    fn json_output_passes_verification() {
        let text = output().to_json_string();
        assert_eq!(verify_output_text(&text), Ok(1));
        assert!(text.contains("\"p99_ns\": 2000000"), "{text}");
        // The measurement-pipeline fields ride along in the machine-readable form.
        assert!(text.contains("\"queue_depth\""), "{text}");
        assert!(text.contains("\"policy\": \"unbounded\""), "{text}");
        assert!(text.contains("\"peak_depth\": 12"), "{text}");
        assert!(text.contains("\"depth_timeline\""), "{text}");
        assert!(text.contains("\"pacing\""), "{text}");
    }

    #[test]
    fn verification_requires_the_pipeline_fields() {
        // Outputs missing queue_depth/pacing (e.g. from an older binary) are rejected.
        let text = output().to_json_string();
        let stripped = text.replace("\"queue_depth\"", "\"queue_depth_gone\"");
        assert!(verify_output_text(&stripped)
            .unwrap_err()
            .contains("queue_depth"));
        let stripped = text.replace("\"pacing\"", "\"pacing_gone\"");
        assert!(verify_output_text(&stripped)
            .unwrap_err()
            .contains("pacing"));
    }

    #[test]
    fn verification_rejects_broken_outputs() {
        assert!(verify_output_text("not json").is_err());
        assert!(verify_output_text("{}").unwrap_err().contains("points"));
        assert!(verify_output_text("{\"points\": []}")
            .unwrap_err()
            .contains("zero points"));
        let mut broken = output();
        if let PointReport::Single(report) = &mut broken.points[0].report {
            report.sojourn.p99_ns = 0;
        }
        assert!(verify_output_text(&broken.to_json_string())
            .unwrap_err()
            .contains("p99_ns is 0"));
    }

    #[test]
    fn cluster_points_render_amplification_and_hedge_columns() {
        let cluster = ClusterReport {
            cluster: run_report(),
            per_shard: vec![run_report(), run_report()],
            shards: 2,
            replication: 2,
            shard_union_sojourn: stats(1.5),
            hedge: Some(HedgeStats {
                issued: 42,
                wins: 17,
            }),
            unmerged: 0,
        };
        let out = ExperimentOutput {
            spec: ExperimentSpec::new("cluster-demo", "echo"),
            points: vec![ExperimentPoint {
                coords: PointCoords {
                    app: "echo".into(),
                    mode: ModeSpec::Simulated,
                    threads: 1,
                    shards: Some(2),
                    replication: Some(2),
                    load_fraction: Some(0.7),
                    hedge: Some(Some(HedgeSpec::Percentile(0.95))),
                    mitigation: None,
                },
                capacity_qps: Some(10_000.0),
                hedge_delay_ns: Some(1_800_000),
                report: PointReport::Cluster(cluster),
            }],
        };
        let md = out.to_markdown();
        assert!(md.contains("amplification"), "{md}");
        assert!(md.contains("| 2x2 |"), "{md}");
        assert!(md.contains("| p95 |"), "{md}");
        assert!(md.contains("| 42 | 17 |"), "{md}");
        let text = out.to_json_string();
        assert_eq!(verify_output_text(&text), Ok(1));
        assert!(text.contains("\"hedge_delay_ns\": 1800000"), "{text}");
        assert!(text.contains("\"p99_amplification\""), "{text}");
    }
}
