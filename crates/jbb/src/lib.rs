//! The SPECjbb substitute: three-tier Java-middleware-style business transactions.
//!
//! TailBench's specjbb emulates a wholesale company handling client requests such as
//! processing payments and deliveries (paper §III).  This crate implements the backend
//! and middleware tiers from scratch:
//!
//! * [`business`] — the in-memory company model (warehouses, districts, customers,
//!   catalogue, orders) and the five business transactions;
//! * [`service`] — request marshalling, the harness adapter ([`SpecJbbApp`]) and the
//!   SPECjbb-style request-mix factory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod business;
pub mod service;

pub use business::{Company, TxnOutcome};
pub use service::{JbbRequest, JbbRequestFactory, SpecJbbApp};
