//! The wholesale-company business model.
//!
//! SPECjbb models a three-tier system for a wholesale company handling customer requests
//! such as processing payments and deliveries (paper §III).  This module implements the
//! backend tier from scratch: an in-memory inventory of warehouses, customers, items and
//! orders, plus the five business transactions of the SPECjbb/TPC-C lineage (new order,
//! payment, order status, delivery, stock level).  The middle "middleware" tier is
//! modelled by the request marshalling in [`crate::service`].

use parking_lot::Mutex;
use rand::Rng;
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// Number of districts per warehouse.
pub const DISTRICTS: usize = 10;

/// An item in the company catalogue.
#[derive(Debug, Clone)]
pub struct Item {
    /// Unit price in cents.
    pub price: u32,
    /// Display name.
    pub name: String,
}

/// A customer account.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Account balance in cents (may go negative).
    pub balance: i64,
    /// Year-to-date payments in cents.
    pub ytd_payment: u64,
    /// Number of orders placed.
    pub order_count: u32,
}

/// One order line.
#[derive(Debug, Clone, Copy)]
pub struct OrderLine {
    /// Ordered item.
    pub item: u32,
    /// Quantity.
    pub quantity: u32,
    /// Line price in cents.
    pub amount: u64,
}

/// A customer order.
#[derive(Debug, Clone)]
pub struct Order {
    /// Ordering customer.
    pub customer: u32,
    /// Lines of the order.
    pub lines: Vec<OrderLine>,
    /// Whether the order has been delivered.
    pub delivered: bool,
}

/// Per-district state (orders are striped by district to bound lock contention, as in
/// SPECjbb's per-warehouse parallelism).
#[derive(Debug, Default)]
struct District {
    orders: Vec<Order>,
    next_undelivered: usize,
    ytd: u64,
}

/// One warehouse of the company.
#[derive(Debug)]
pub struct Warehouse {
    customers: Mutex<Vec<Customer>>,
    stock: Mutex<Vec<u32>>,
    districts: Vec<Mutex<District>>,
}

/// The whole company: items are shared and read-only, warehouses hold mutable state.
#[derive(Debug)]
pub struct Company {
    items: Vec<Item>,
    warehouses: Vec<Warehouse>,
    customers_per_warehouse: usize,
}

/// Outcome of one business transaction (summarized for the response payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Whether the transaction committed (SPECjbb transactions never abort, but invalid
    /// inputs are rejected).
    pub committed: bool,
    /// Rows/objects touched, a proxy for work.
    pub rows_touched: u32,
    /// Monetary amount involved, in cents.
    pub amount: u64,
}

impl Company {
    /// Builds a company with the given number of warehouses, customers per warehouse and
    /// catalogue items.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(warehouses: usize, customers_per_warehouse: usize, items: usize, seed: u64) -> Self {
        assert!(warehouses > 0 && customers_per_warehouse > 0 && items > 0);
        let mut rng = seeded_rng(seed, 60);
        let items: Vec<Item> = (0..items)
            .map(|i| Item {
                price: rng.gen_range(100..100_000),
                name: format!("item-{i}"),
            })
            .collect();
        let warehouses = (0..warehouses)
            .map(|_| Warehouse {
                customers: Mutex::new(
                    (0..customers_per_warehouse)
                        .map(|_| Customer {
                            balance: 0,
                            ytd_payment: 0,
                            order_count: 0,
                        })
                        .collect(),
                ),
                stock: Mutex::new((0..items.len()).map(|_| rng.gen_range(50..200)).collect()),
                districts: (0..DISTRICTS)
                    .map(|_| Mutex::new(District::default()))
                    .collect(),
            })
            .collect();
        Company {
            items,
            warehouses,
            customers_per_warehouse,
        }
    }

    /// A standard SPECjbb-like configuration: 1 warehouse, 3000 customers, 20000 items.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(1, 3_000, 20_000, 0x1BB)
    }

    /// A reduced configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        Self::new(2, 50, 200, 7)
    }

    /// Number of warehouses.
    #[must_use]
    pub fn warehouses(&self) -> usize {
        self.warehouses.len()
    }

    /// Number of catalogue items.
    #[must_use]
    pub fn items(&self) -> usize {
        self.items.len()
    }

    /// Number of customers per warehouse.
    #[must_use]
    pub fn customers_per_warehouse(&self) -> usize {
        self.customers_per_warehouse
    }

    fn warehouse(&self, w: usize) -> Option<&Warehouse> {
        self.warehouses.get(w)
    }

    /// New-order transaction: reserve stock for each line, price it, and append the
    /// order to the customer's district.
    pub fn new_order(
        &self,
        warehouse: usize,
        district: usize,
        customer: u32,
        lines: &[(u32, u32)],
    ) -> TxnOutcome {
        let Some(wh) = self.warehouse(warehouse) else {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        };
        if district >= DISTRICTS
            || customer as usize >= self.customers_per_warehouse
            || lines.is_empty()
        {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        }
        let mut amount = 0u64;
        let mut order_lines = Vec::with_capacity(lines.len());
        let mut rows = 1u32;
        {
            let mut stock = wh.stock.lock();
            for &(item, quantity) in lines {
                let Some(item_meta) = self.items.get(item as usize) else {
                    return TxnOutcome {
                        committed: false,
                        rows_touched: rows,
                        amount: 0,
                    };
                };
                let entry = &mut stock[item as usize];
                if *entry < quantity {
                    *entry += 100; // restock, as TPC-C does
                }
                *entry -= quantity;
                let line_amount = u64::from(item_meta.price) * u64::from(quantity);
                amount += line_amount;
                order_lines.push(OrderLine {
                    item,
                    quantity,
                    amount: line_amount,
                });
                rows += 2; // stock row + order line
            }
        }
        {
            let mut customers = wh.customers.lock();
            customers[customer as usize].order_count += 1;
            customers[customer as usize].balance -= amount as i64;
            rows += 1;
        }
        {
            let mut district_state = wh.districts[district].lock();
            district_state.orders.push(Order {
                customer,
                lines: order_lines,
                delivered: false,
            });
            rows += 1;
        }
        TxnOutcome {
            committed: true,
            rows_touched: rows,
            amount,
        }
    }

    /// Payment transaction: credit the customer's balance and the district's YTD total.
    pub fn payment(
        &self,
        warehouse: usize,
        district: usize,
        customer: u32,
        amount: u64,
    ) -> TxnOutcome {
        let Some(wh) = self.warehouse(warehouse) else {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        };
        if district >= DISTRICTS || customer as usize >= self.customers_per_warehouse {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        }
        {
            let mut customers = wh.customers.lock();
            let c = &mut customers[customer as usize];
            c.balance += amount as i64;
            c.ytd_payment += amount;
        }
        {
            let mut district_state = wh.districts[district].lock();
            district_state.ytd += amount;
        }
        TxnOutcome {
            committed: true,
            rows_touched: 3,
            amount,
        }
    }

    /// Order-status transaction: read the customer's most recent order.
    pub fn order_status(&self, warehouse: usize, district: usize, customer: u32) -> TxnOutcome {
        let Some(wh) = self.warehouse(warehouse) else {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        };
        if district >= DISTRICTS {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        }
        let district_state = wh.districts[district].lock();
        let last = district_state
            .orders
            .iter()
            .rev()
            .find(|o| o.customer == customer);
        match last {
            Some(order) => TxnOutcome {
                committed: true,
                rows_touched: 1 + order.lines.len() as u32,
                amount: order.lines.iter().map(|l| l.amount).sum(),
            },
            None => TxnOutcome {
                committed: true,
                rows_touched: 1,
                amount: 0,
            },
        }
    }

    /// Delivery transaction: mark the oldest undelivered order in every district of the
    /// warehouse as delivered.
    pub fn delivery(&self, warehouse: usize) -> TxnOutcome {
        let Some(wh) = self.warehouse(warehouse) else {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        };
        let mut rows = 0u32;
        let mut amount = 0u64;
        for district in &wh.districts {
            let mut d = district.lock();
            let idx = d.next_undelivered;
            if let Some(order) = d.orders.get_mut(idx) {
                order.delivered = true;
                amount += order.lines.iter().map(|l| l.amount).sum::<u64>();
                rows += 1 + order.lines.len() as u32;
                d.next_undelivered += 1;
            }
        }
        TxnOutcome {
            committed: true,
            rows_touched: rows,
            amount,
        }
    }

    /// Stock-level transaction: count items below a threshold among those referenced by
    /// the district's recent orders.
    pub fn stock_level(&self, warehouse: usize, district: usize, threshold: u32) -> TxnOutcome {
        let Some(wh) = self.warehouse(warehouse) else {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        };
        if district >= DISTRICTS {
            return TxnOutcome {
                committed: false,
                rows_touched: 0,
                amount: 0,
            };
        }
        let recent_items: Vec<u32> = {
            let d = wh.districts[district].lock();
            d.orders
                .iter()
                .rev()
                .take(20)
                .flat_map(|o| o.lines.iter().map(|l| l.item))
                .collect()
        };
        let stock = wh.stock.lock();
        let low = recent_items
            .iter()
            .filter(|&&item| stock.get(item as usize).copied().unwrap_or(0) < threshold)
            .count();
        TxnOutcome {
            committed: true,
            rows_touched: recent_items.len() as u32 + 1,
            amount: low as u64,
        }
    }

    /// Generates a plausible random new-order line list.
    pub fn random_lines(&self, rng: &mut SuiteRng) -> Vec<(u32, u32)> {
        let n = rng.gen_range(5..=15);
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..self.items.len() as u32),
                    rng.gen_range(1..=10),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_order_updates_customer_and_stock() {
        let company = Company::small();
        let outcome = company.new_order(0, 0, 5, &[(1, 2), (3, 1)]);
        assert!(outcome.committed);
        assert!(outcome.amount > 0);
        assert!(outcome.rows_touched >= 6);
        // The customer now has an order to query.
        let status = company.order_status(0, 0, 5);
        assert!(status.committed);
        assert_eq!(status.amount, outcome.amount);
    }

    #[test]
    fn payment_accumulates_balance() {
        let company = Company::small();
        let a = company.payment(0, 1, 7, 1_000);
        let b = company.payment(0, 1, 7, 500);
        assert!(a.committed && b.committed);
        let customers = company.warehouses[0].customers.lock();
        assert_eq!(customers[7].balance, 1_500);
        assert_eq!(customers[7].ytd_payment, 1_500);
    }

    #[test]
    fn delivery_marks_orders_delivered_once() {
        let company = Company::small();
        company.new_order(0, 2, 1, &[(0, 1)]);
        company.new_order(0, 2, 2, &[(0, 1)]);
        let first = company.delivery(0);
        assert!(first.committed);
        assert!(first.rows_touched >= 2);
        let second = company.delivery(0);
        // Only district 2 had orders; the second delivery picks up the second order.
        assert!(second.rows_touched >= 2);
        let third = company.delivery(0);
        assert_eq!(third.rows_touched, 0);
    }

    #[test]
    fn stock_level_counts_low_items() {
        let company = Company::small();
        company.new_order(1, 0, 0, &[(2, 5), (4, 5)]);
        let outcome = company.stock_level(1, 0, 1_000);
        assert!(outcome.committed);
        assert_eq!(
            outcome.amount, 2,
            "all referenced items are below a huge threshold"
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let company = Company::small();
        assert!(!company.new_order(99, 0, 0, &[(0, 1)]).committed);
        assert!(!company.new_order(0, 99, 0, &[(0, 1)]).committed);
        assert!(!company.new_order(0, 0, 9_999, &[(0, 1)]).committed);
        assert!(!company.new_order(0, 0, 0, &[]).committed);
        assert!(!company.payment(0, 0, 9_999, 10).committed);
        assert!(!company.order_status(0, 99, 0).committed);
        assert!(!company.stock_level(42, 0, 10).committed);
    }

    #[test]
    fn concurrent_payments_do_not_lose_updates() {
        use std::sync::Arc;
        let company = Arc::new(Company::small());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let company = Arc::clone(&company);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        company.payment(0, 0, 3, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let customers = company.warehouses[0].customers.lock();
        assert_eq!(customers[3].ytd_payment, 4_000);
    }
}
