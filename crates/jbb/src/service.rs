//! specjbb as a TailBench application.
//!
//! The middleware tier: decodes client requests, dispatches them to the
//! [`Company`](crate::business::Company) backend, and marshals the outcome back.  The
//! request mix mirrors SPECjbb's (dominated by new orders and payments, with occasional
//! read-only and batch transactions).

use crate::business::{Company, TxnOutcome, DISTRICTS};
use rand::Rng;
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// A decoded middleware request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JbbRequest {
    /// Place a new order.
    NewOrder {
        /// Target warehouse.
        warehouse: u16,
        /// Target district.
        district: u8,
        /// Ordering customer.
        customer: u32,
        /// Order lines: (item, quantity).
        lines: Vec<(u32, u32)>,
    },
    /// Process a customer payment.
    Payment {
        /// Target warehouse.
        warehouse: u16,
        /// Target district.
        district: u8,
        /// Paying customer.
        customer: u32,
        /// Amount in cents.
        amount: u64,
    },
    /// Query a customer's last order.
    OrderStatus {
        /// Target warehouse.
        warehouse: u16,
        /// Target district.
        district: u8,
        /// Customer to query.
        customer: u32,
    },
    /// Deliver pending orders of a warehouse.
    Delivery {
        /// Target warehouse.
        warehouse: u16,
    },
    /// Count low-stock items for a district.
    StockLevel {
        /// Target warehouse.
        warehouse: u16,
        /// Target district.
        district: u8,
        /// Stock threshold.
        threshold: u32,
    },
}

/// Wire encoding of middleware requests.
pub mod codec {
    use super::JbbRequest;

    /// Encodes a request.
    #[must_use]
    pub fn encode(request: &JbbRequest) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match request {
            JbbRequest::NewOrder {
                warehouse,
                district,
                customer,
                lines,
            } => {
                out.push(0);
                out.extend_from_slice(&warehouse.to_le_bytes());
                out.push(*district);
                out.extend_from_slice(&customer.to_le_bytes());
                out.push(lines.len() as u8);
                for (item, qty) in lines {
                    out.extend_from_slice(&item.to_le_bytes());
                    out.extend_from_slice(&qty.to_le_bytes());
                }
            }
            JbbRequest::Payment {
                warehouse,
                district,
                customer,
                amount,
            } => {
                out.push(1);
                out.extend_from_slice(&warehouse.to_le_bytes());
                out.push(*district);
                out.extend_from_slice(&customer.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            JbbRequest::OrderStatus {
                warehouse,
                district,
                customer,
            } => {
                out.push(2);
                out.extend_from_slice(&warehouse.to_le_bytes());
                out.push(*district);
                out.extend_from_slice(&customer.to_le_bytes());
            }
            JbbRequest::Delivery { warehouse } => {
                out.push(3);
                out.extend_from_slice(&warehouse.to_le_bytes());
            }
            JbbRequest::StockLevel {
                warehouse,
                district,
                threshold,
            } => {
                out.push(4);
                out.extend_from_slice(&warehouse.to_le_bytes());
                out.push(*district);
                out.extend_from_slice(&threshold.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a request; `None` if malformed.
    #[must_use]
    pub fn decode(payload: &[u8]) -> Option<JbbRequest> {
        let (&tag, rest) = payload.split_first()?;
        let warehouse = u16::from_le_bytes(rest.get(..2)?.try_into().ok()?);
        let rest = &rest[2..];
        match tag {
            0 => {
                let district = *rest.first()?;
                let customer = u32::from_le_bytes(rest.get(1..5)?.try_into().ok()?);
                let n = *rest.get(5)? as usize;
                let body = rest.get(6..6 + n * 8)?;
                let lines = (0..n)
                    .map(|i| {
                        (
                            u32::from_le_bytes(body[i * 8..i * 8 + 4].try_into().expect("4 bytes")),
                            u32::from_le_bytes(
                                body[i * 8 + 4..i * 8 + 8].try_into().expect("4 bytes"),
                            ),
                        )
                    })
                    .collect();
                Some(JbbRequest::NewOrder {
                    warehouse,
                    district,
                    customer,
                    lines,
                })
            }
            1 => Some(JbbRequest::Payment {
                warehouse,
                district: *rest.first()?,
                customer: u32::from_le_bytes(rest.get(1..5)?.try_into().ok()?),
                amount: u64::from_le_bytes(rest.get(5..13)?.try_into().ok()?),
            }),
            2 => Some(JbbRequest::OrderStatus {
                warehouse,
                district: *rest.first()?,
                customer: u32::from_le_bytes(rest.get(1..5)?.try_into().ok()?),
            }),
            3 => Some(JbbRequest::Delivery { warehouse }),
            4 => Some(JbbRequest::StockLevel {
                warehouse,
                district: *rest.first()?,
                threshold: u32::from_le_bytes(rest.get(1..5)?.try_into().ok()?),
            }),
            _ => None,
        }
    }
}

/// The specjbb-substitute middleware application.
#[derive(Debug)]
pub struct SpecJbbApp {
    company: Company,
}

impl SpecJbbApp {
    /// Wraps a company backend.
    #[must_use]
    pub fn new(company: Company) -> Self {
        SpecJbbApp { company }
    }

    /// Standard configuration.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(Company::standard())
    }

    /// Reduced configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        Self::new(Company::small())
    }

    /// The backend company.
    #[must_use]
    pub fn company(&self) -> &Company {
        &self.company
    }

    fn work_profile(request: &JbbRequest, outcome: &TxnOutcome) -> WorkProfile {
        let rows = u64::from(outcome.rows_touched);
        // Java middleware burns a lot of instructions per row (object churn, dispatch),
        // which is why specjbb has the highest L1I MPKI of the suite short of shore.
        let base = match request {
            JbbRequest::NewOrder { .. } => 9_000,
            JbbRequest::Payment { .. } => 4_000,
            JbbRequest::OrderStatus { .. } => 3_000,
            JbbRequest::Delivery { .. } => 7_000,
            JbbRequest::StockLevel { .. } => 6_000,
        };
        WorkProfile {
            instructions: base + 900 * rows,
            mem_reads: 40 + 25 * rows,
            mem_writes: 15 + 10 * rows,
            footprint_bytes: 4_096 + 256 * rows,
            locality: 0.6,
            critical_fraction: 0.06,
        }
    }
}

impl ServerApp for SpecJbbApp {
    fn name(&self) -> &str {
        "specjbb"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(request) = codec::decode(payload) else {
            return Response::new(vec![0xFF]);
        };
        let outcome = match &request {
            JbbRequest::NewOrder {
                warehouse,
                district,
                customer,
                lines,
            } => self
                .company
                .new_order(*warehouse as usize, *district as usize, *customer, lines),
            JbbRequest::Payment {
                warehouse,
                district,
                customer,
                amount,
            } => self
                .company
                .payment(*warehouse as usize, *district as usize, *customer, *amount),
            JbbRequest::OrderStatus {
                warehouse,
                district,
                customer,
            } => self
                .company
                .order_status(*warehouse as usize, *district as usize, *customer),
            JbbRequest::Delivery { warehouse } => self.company.delivery(*warehouse as usize),
            JbbRequest::StockLevel {
                warehouse,
                district,
                threshold,
            } => self
                .company
                .stock_level(*warehouse as usize, *district as usize, *threshold),
        };
        let mut out = Vec::with_capacity(13);
        out.push(u8::from(outcome.committed));
        out.extend_from_slice(&outcome.rows_touched.to_le_bytes());
        out.extend_from_slice(&outcome.amount.to_le_bytes());
        Response::with_work(out, Self::work_profile(&request, &outcome))
    }
}

/// Generates the SPECjbb request mix.
#[derive(Debug)]
pub struct JbbRequestFactory {
    warehouses: u16,
    customers: u32,
    items: u32,
    rng: SuiteRng,
}

impl JbbRequestFactory {
    /// Creates a factory matching a company's dimensions.
    #[must_use]
    pub fn new(company: &Company, seed: u64) -> Self {
        JbbRequestFactory {
            warehouses: company.warehouses() as u16,
            customers: company.customers_per_warehouse() as u32,
            items: company.items() as u32,
            rng: seeded_rng(seed, 600),
        }
    }

    fn next(&mut self) -> JbbRequest {
        let warehouse = self.rng.gen_range(0..self.warehouses);
        let district = self.rng.gen_range(0..DISTRICTS as u8);
        let customer = self.rng.gen_range(0..self.customers);
        let roll: f64 = self.rng.gen();
        if roll < 0.45 {
            let n = self.rng.gen_range(5..=15);
            let lines = (0..n)
                .map(|_| {
                    (
                        self.rng.gen_range(0..self.items),
                        self.rng.gen_range(1..=10u32),
                    )
                })
                .collect();
            JbbRequest::NewOrder {
                warehouse,
                district,
                customer,
                lines,
            }
        } else if roll < 0.88 {
            JbbRequest::Payment {
                warehouse,
                district,
                customer,
                amount: self.rng.gen_range(100..500_000),
            }
        } else if roll < 0.92 {
            JbbRequest::OrderStatus {
                warehouse,
                district,
                customer,
            }
        } else if roll < 0.96 {
            JbbRequest::Delivery { warehouse }
        } else {
            JbbRequest::StockLevel {
                warehouse,
                district,
                threshold: self.rng.gen_range(10..=20),
            }
        }
    }
}

impl RequestFactory for JbbRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode(&self.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_all_variants() {
        let requests = vec![
            JbbRequest::NewOrder {
                warehouse: 1,
                district: 3,
                customer: 42,
                lines: vec![(1, 2), (7, 3)],
            },
            JbbRequest::Payment {
                warehouse: 0,
                district: 9,
                customer: 7,
                amount: 123_456,
            },
            JbbRequest::OrderStatus {
                warehouse: 0,
                district: 1,
                customer: 3,
            },
            JbbRequest::Delivery { warehouse: 1 },
            JbbRequest::StockLevel {
                warehouse: 0,
                district: 5,
                threshold: 15,
            },
        ];
        for r in requests {
            assert_eq!(codec::decode(&codec::encode(&r)), Some(r));
        }
        assert_eq!(codec::decode(&[]), None);
        assert_eq!(codec::decode(&[9, 0, 0]), None);
    }

    #[test]
    fn app_executes_the_request_mix() {
        let app = SpecJbbApp::small();
        let mut factory = JbbRequestFactory::new(app.company(), 1);
        let mut committed = 0;
        for _ in 0..500 {
            let resp = app.handle(&factory.next_request());
            assert!(resp.payload.len() == 13);
            if resp.payload[0] == 1 {
                committed += 1;
            }
            assert!(resp.work.instructions > 0);
        }
        assert!(committed > 490, "committed = {committed}");
    }

    #[test]
    fn new_orders_report_more_work_than_order_status() {
        let app = SpecJbbApp::small();
        let new_order = codec::encode(&JbbRequest::NewOrder {
            warehouse: 0,
            district: 0,
            customer: 1,
            lines: vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
        });
        let status = codec::encode(&JbbRequest::OrderStatus {
            warehouse: 0,
            district: 0,
            customer: 1,
        });
        assert!(app.handle(&new_order).work.instructions > app.handle(&status).work.instructions);
    }

    #[test]
    fn malformed_request_is_rejected() {
        let app = SpecJbbApp::small();
        assert_eq!(app.handle(&[0, 1]).payload, vec![0xFF]);
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let app = SpecJbbApp::small();
        let mut factory = JbbRequestFactory::new(app.company(), 2);
        let app: Arc<dyn ServerApp> = Arc::new(app);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(2_000.0, 300).with_warmup(30),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "specjbb");
        assert!(report.requests > 250);
    }
}
