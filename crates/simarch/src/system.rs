//! The machine-level cost model.
//!
//! [`SystemModel`] combines the core, cache, memory-contention and synchronization terms
//! into a single [`CostModel`](tailbench_core::app::CostModel) that the harness'
//! discrete-event runner queries for every request.  The modeled machine defaults to the
//! paper's experimental system (Table II): 8 Sandy Bridge cores at 2.4 GHz with 32 KB L1,
//! 256 KB L2 and a 20 MB shared L3.

use crate::cache::CacheHierarchy;
use serde::{Deserialize, Serialize};
use tailbench_core::app::CostModel;
use tailbench_core::request::WorkProfile;

/// Machine parameters (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core frequency in GHz.
    pub frequency_ghz: f64,
    /// Baseline instructions per cycle when not stalled on memory.
    pub base_ipc: f64,
    /// Cache hierarchy geometry.
    pub caches: CacheHierarchy,
    /// Additional DRAM latency (cycles) added per outstanding concurrent thread beyond
    /// the first, modeling shared-cache and memory-bandwidth contention.
    pub contention_cycles_per_thread: f64,
    /// Constant multiplicative performance error of the simulator relative to the real
    /// machine.  The paper reports per-application speed errors of roughly 10–40%
    /// (Fig. 5); a single constant factor captures the same behaviour.
    pub speed_error: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 8,
            frequency_ghz: 2.4,
            base_ipc: 1.6,
            caches: CacheHierarchy::default(),
            contention_cycles_per_thread: 40.0,
            speed_error: 1.0,
        }
    }
}

impl MachineConfig {
    /// The Xeon E5-2670 configuration of Table II.
    #[must_use]
    pub fn table_ii() -> Self {
        Self::default()
    }

    /// Renders the configuration as the rows of Table II.
    #[must_use]
    pub fn describe(&self) -> Vec<(String, String)> {
        vec![
            (
                "Cores".to_string(),
                format!(
                    "{} modeled Sandy Bridge-class cores, {:.1} GHz",
                    self.cores, self.frequency_ghz
                ),
            ),
            (
                "L1 caches".to_string(),
                format!("{} KB, split D/I", self.caches.l1d.capacity_bytes / 1024),
            ),
            (
                "L2 caches".to_string(),
                format!(
                    "{} KB private per-core",
                    self.caches.l2.capacity_bytes / 1024
                ),
            ),
            (
                "L3 cache".to_string(),
                format!("{} MB shared", self.caches.l3.capacity_bytes / 1024 / 1024),
            ),
            (
                "Memory".to_string(),
                format!("{:.0}-cycle DRAM latency", self.caches.dram_latency_cycles),
            ),
        ]
    }
}

/// The complete cost model.
#[derive(Debug, Clone, Copy)]
pub struct SystemModel {
    config: MachineConfig,
    idealized_memory: bool,
}

impl Default for SystemModel {
    fn default() -> Self {
        Self::new(MachineConfig::default())
    }
}

impl SystemModel {
    /// Creates a model of the given machine with a realistic memory system.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        SystemModel {
            config,
            idealized_memory: false,
        }
    }

    /// Creates a model with an idealized memory system: zero-latency DRAM, no cache
    /// misses, no memory contention (the Fig. 8 configuration).  Synchronization costs
    /// remain.
    #[must_use]
    pub fn idealized_memory(config: MachineConfig) -> Self {
        SystemModel {
            config,
            idealized_memory: true,
        }
    }

    /// Whether the memory system is idealized.
    #[must_use]
    pub fn is_idealized(&self) -> bool {
        self.idealized_memory
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Cycles per nanosecond.
    fn cycles_per_ns(&self) -> f64 {
        self.config.frequency_ghz
    }

    /// Total cycles for one request, given how many threads are concurrently active.
    #[must_use]
    pub fn request_cycles(&self, profile: &WorkProfile, active_threads: usize) -> f64 {
        let compute_cycles = profile.instructions as f64 / self.config.base_ipc;

        let memory_cycles = if self.idealized_memory {
            0.0
        } else {
            let base_stall = self.config.caches.stall_cycles(profile);
            // Contention: every additional concurrently active thread adds latency to
            // off-chip accesses (shared L3 and memory bandwidth pressure).
            let extra_threads = active_threads.saturating_sub(1).min(self.config.cores) as f64;
            let p_l3_miss = CacheHierarchy::miss_probability(
                profile.footprint_bytes,
                0.0,
                self.config.caches.l3.capacity_bytes,
            ) * CacheHierarchy::miss_probability(
                profile.footprint_bytes,
                profile.locality,
                self.config.caches.l1d.capacity_bytes,
            );
            let contention = profile.mem_accesses() as f64
                * p_l3_miss
                * self.config.contention_cycles_per_thread
                * extra_threads;
            base_stall + contention
        };

        // Synchronization: the critical fraction of the request serializes against the
        // other active threads (Amdahl-style inflation), independent of the memory system.
        let extra_threads = active_threads.saturating_sub(1) as f64;
        let sync_cycles =
            compute_cycles * profile.critical_fraction.clamp(0.0, 1.0) * extra_threads;

        (compute_cycles + memory_cycles + sync_cycles) * self.config.speed_error
    }
}

impl CostModel for SystemModel {
    fn service_time_ns(&self, profile: &WorkProfile, active_threads: usize) -> u64 {
        (self.request_cycles(profile, active_threads) / self.cycles_per_ns()).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_bound_profile() -> WorkProfile {
        WorkProfile {
            instructions: 200_000,
            mem_reads: 40_000,
            mem_writes: 10_000,
            footprint_bytes: 64 * 1024 * 1024,
            locality: 0.2,
            critical_fraction: 0.0,
        }
    }

    fn sync_bound_profile() -> WorkProfile {
        WorkProfile {
            instructions: 50_000,
            mem_reads: 2_000,
            mem_writes: 1_000,
            footprint_bytes: 16 * 1024,
            locality: 0.9,
            critical_fraction: 0.3,
        }
    }

    #[test]
    fn service_time_is_positive_and_scales_with_instructions() {
        let model = SystemModel::default();
        let small = WorkProfile {
            instructions: 10_000,
            ..WorkProfile::default()
        };
        let large = WorkProfile {
            instructions: 1_000_000,
            ..WorkProfile::default()
        };
        assert!(model.service_time_ns(&small, 1) > 0);
        assert!(model.service_time_ns(&large, 1) > 50 * model.service_time_ns(&small, 1));
    }

    #[test]
    fn idealized_memory_helps_memory_bound_work() {
        let real = SystemModel::new(MachineConfig::default());
        let ideal = SystemModel::idealized_memory(MachineConfig::default());
        assert!(ideal.is_idealized());
        let p = memory_bound_profile();
        assert!(
            (ideal.service_time_ns(&p, 4) as f64) < 0.7 * real.service_time_ns(&p, 4) as f64,
            "idealizing memory must substantially shorten a memory-bound request"
        );
    }

    #[test]
    fn idealized_memory_does_not_help_sync_bound_work() {
        // This is the Fig. 8 dichotomy: silo-style requests barely improve under an
        // idealized memory system because their overhead is synchronization.
        let real = SystemModel::new(MachineConfig::default());
        let ideal = SystemModel::idealized_memory(MachineConfig::default());
        let p = sync_bound_profile();
        let real_t = real.service_time_ns(&p, 4) as f64;
        let ideal_t = ideal.service_time_ns(&p, 4) as f64;
        assert!(ideal_t > 0.6 * real_t, "ideal {ideal_t} vs real {real_t}");
    }

    #[test]
    fn memory_contention_grows_with_active_threads() {
        let model = SystemModel::default();
        let p = memory_bound_profile();
        let one = model.service_time_ns(&p, 1);
        let four = model.service_time_ns(&p, 4);
        assert!(
            four > one,
            "contention must inflate service time ({one} -> {four})"
        );
    }

    #[test]
    fn sync_inflation_grows_with_active_threads_even_with_ideal_memory() {
        let model = SystemModel::idealized_memory(MachineConfig::default());
        let p = sync_bound_profile();
        assert!(model.service_time_ns(&p, 4) > model.service_time_ns(&p, 1));
    }

    #[test]
    fn speed_error_scales_everything() {
        let config = MachineConfig {
            speed_error: 2.0,
            ..MachineConfig::default()
        };
        let slow = SystemModel::new(config);
        let fast = SystemModel::default();
        let p = memory_bound_profile();
        let ratio = slow.service_time_ns(&p, 1) as f64 / fast.service_time_ns(&p, 1) as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn table_ii_description_has_five_rows() {
        let rows = MachineConfig::table_ii().describe();
        assert_eq!(rows.len(), 5);
        assert!(rows[0].1.contains("2.4 GHz"));
        assert!(rows[3].1.contains("20 MB"));
    }
}
