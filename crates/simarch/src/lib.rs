//! Analytic microarchitectural cost model for simulated TailBench runs.
//!
//! The paper measures tail latency *in simulation* with zsim, an execution-driven x86
//! simulator, and uses an idealized-memory configuration to attribute multithreaded
//! scaling losses to either memory contention or synchronization (§VI–§VII).  Shipping a
//! binary-translation simulator is out of scope for this reproduction, so this crate
//! provides the piece the methodology actually relies on: a *consistent cost model* that
//! turns each request's [`WorkProfile`](tailbench_core::request::WorkProfile) into a
//! simulated service time, with
//!
//! * a core model (frequency × base IPC),
//! * a cache-hierarchy model that estimates per-level miss rates from the request's
//!   footprint and locality (also used to reproduce the MPKI columns of Table I),
//! * a memory-contention model that inflates miss penalties as more worker threads are
//!   concurrently active,
//! * a synchronization model driven by the profile's critical-section fraction, and
//! * an **idealized memory** switch (zero-latency, infinite-bandwidth DRAM) that turns
//!   off the memory terms, as used by the Fig. 8 case study.
//!
//! The [`SystemModel`] implements [`CostModel`](tailbench_core::app::CostModel), so it
//! plugs directly into the harness' discrete-event simulation runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod system;

pub use cache::{CacheHierarchy, CacheLevelConfig, MissRates};
pub use system::{MachineConfig, SystemModel};
