//! Cache-hierarchy model.
//!
//! A full set-associative cache simulation per memory access would make simulated runs as
//! slow as real ones; instead this module uses a standard analytic working-set model:
//! given a request's memory footprint and locality, the fraction of accesses that miss a
//! cache of capacity `C` follows a smooth saturating curve in `footprint / C`.  The model
//! is calibrated so that the per-application MPKI ordering matches the paper's Table I
//! (e.g. img-dnn has by far the highest L1D MPKI, silo the lowest L3 MPKI).

use serde::{Deserialize, Serialize};
use tailbench_core::request::WorkProfile;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Hit latency in cycles (used by the system model).
    pub hit_latency_cycles: f64,
}

/// Per-level miss counts per kilo-instruction (the Table I metrics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MissRates {
    /// L1 instruction-cache MPKI.
    pub l1i_mpki: f64,
    /// L1 data-cache MPKI.
    pub l1d_mpki: f64,
    /// L2 MPKI.
    pub l2_mpki: f64,
    /// L3 MPKI.
    pub l3_mpki: f64,
}

/// The three-level cache hierarchy of the modeled machine (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// Private L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Private L2.
    pub l2: CacheLevelConfig,
    /// Shared L3.
    pub l3: CacheLevelConfig,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: f64,
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        // Table II: 32 KB L1, 256 KB private L2, 20 MB shared L3, DDR3-1333.
        CacheHierarchy {
            l1d: CacheLevelConfig {
                capacity_bytes: 32 * 1024,
                hit_latency_cycles: 4.0,
            },
            l2: CacheLevelConfig {
                capacity_bytes: 256 * 1024,
                hit_latency_cycles: 12.0,
            },
            l3: CacheLevelConfig {
                capacity_bytes: 20 * 1024 * 1024,
                hit_latency_cycles: 35.0,
            },
            dram_latency_cycles: 200.0,
        }
    }
}

impl CacheHierarchy {
    /// Probability that an access to a working set of `footprint` bytes with the given
    /// locality misses a cache of `capacity` bytes.
    ///
    /// Locality 1.0 means almost all accesses hit regardless of footprint (streaming a
    /// small hot structure); locality 0.0 means accesses are spread uniformly over the
    /// footprint.
    #[must_use]
    pub fn miss_probability(footprint: u64, locality: f64, capacity: u64) -> f64 {
        if footprint == 0 {
            return 0.0;
        }
        let locality = locality.clamp(0.0, 1.0);
        let pressure = footprint as f64 / capacity as f64;
        // Saturating curve: tiny footprints miss almost never, footprints far larger
        // than the cache miss on most non-local accesses.
        let uncached_fraction = pressure / (1.0 + pressure);
        (1.0 - locality) * uncached_fraction
    }

    /// Estimates per-level miss rates for a request's work profile.
    #[must_use]
    pub fn miss_rates(&self, profile: &WorkProfile) -> MissRates {
        if profile.instructions == 0 {
            return MissRates::default();
        }
        let accesses = profile.mem_accesses() as f64;
        let kilo_instr = profile.instructions as f64 / 1_000.0;
        let p_l1 = Self::miss_probability(
            profile.footprint_bytes,
            profile.locality,
            self.l1d.capacity_bytes,
        );
        // Misses filter through the hierarchy: an access can only miss L2 if it missed
        // L1, and locality of the surviving stream is lower.
        let p_l2 = p_l1
            * Self::miss_probability(
                profile.footprint_bytes,
                profile.locality * 0.5,
                self.l2.capacity_bytes,
            )
            .min(1.0)
            / Self::miss_probability(
                profile.footprint_bytes,
                profile.locality,
                self.l1d.capacity_bytes,
            )
            .max(1e-12);
        let p_l2 = p_l2.min(p_l1);
        let p_l3 = p_l2
            * Self::miss_probability(profile.footprint_bytes, 0.0, self.l3.capacity_bytes).min(1.0);
        let p_l3 = p_l3.min(p_l2);

        // The instruction stream is small and loop-heavy for compute codes; model L1I
        // misses as driven by instruction-footprint ~ instructions per request capped at
        // a realistic code size, scaled down by locality.
        let code_footprint = (profile.instructions / 16).min(4 * 1024 * 1024);
        let p_l1i = Self::miss_probability(code_footprint, 0.9, self.l1d.capacity_bytes);

        MissRates {
            l1i_mpki: p_l1i * profile.instructions as f64 / 64.0 / kilo_instr,
            l1d_mpki: accesses * p_l1 / kilo_instr,
            l2_mpki: accesses * p_l2 / kilo_instr,
            l3_mpki: accesses * p_l3 / kilo_instr,
        }
    }

    /// Average memory-stall cycles per access implied by the given miss rates path,
    /// excluding contention (added separately by the system model).
    #[must_use]
    pub fn stall_cycles(&self, profile: &WorkProfile) -> f64 {
        let accesses = profile.mem_accesses() as f64;
        if accesses == 0.0 {
            return 0.0;
        }
        let p_l1 = Self::miss_probability(
            profile.footprint_bytes,
            profile.locality,
            self.l1d.capacity_bytes,
        );
        let p_l2 = p_l1
            * Self::miss_probability(
                profile.footprint_bytes,
                profile.locality * 0.5,
                self.l2.capacity_bytes,
            );
        let p_l3 =
            p_l2 * Self::miss_probability(profile.footprint_bytes, 0.0, self.l3.capacity_bytes);
        accesses
            * (p_l1 * self.l2.hit_latency_cycles
                + p_l2 * self.l3.hit_latency_cycles
                + p_l3 * self.dram_latency_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(footprint: u64, locality: f64) -> WorkProfile {
        WorkProfile {
            instructions: 100_000,
            mem_reads: 20_000,
            mem_writes: 5_000,
            footprint_bytes: footprint,
            locality,
            critical_fraction: 0.0,
        }
    }

    #[test]
    fn miss_probability_behaviour() {
        // Tiny footprints barely miss; huge footprints with no locality miss a lot.
        assert!(CacheHierarchy::miss_probability(1_024, 0.5, 32 * 1024) < 0.02);
        assert!(CacheHierarchy::miss_probability(64 * 1024 * 1024, 0.0, 32 * 1024) > 0.9);
        // Perfect locality never misses; zero footprint never misses.
        assert_eq!(
            CacheHierarchy::miss_probability(1 << 30, 1.0, 32 * 1024),
            0.0
        );
        assert_eq!(CacheHierarchy::miss_probability(0, 0.0, 32 * 1024), 0.0);
    }

    #[test]
    fn miss_rates_are_monotone_across_levels() {
        let h = CacheHierarchy::default();
        let rates = h.miss_rates(&profile(8 * 1024 * 1024, 0.3));
        assert!(rates.l1d_mpki >= rates.l2_mpki);
        assert!(rates.l2_mpki >= rates.l3_mpki);
        assert!(rates.l1d_mpki > 0.0);
    }

    #[test]
    fn larger_footprints_miss_more() {
        let h = CacheHierarchy::default();
        let small = h.miss_rates(&profile(16 * 1024, 0.3));
        let large = h.miss_rates(&profile(64 * 1024 * 1024, 0.3));
        assert!(large.l1d_mpki > small.l1d_mpki);
        assert!(large.l3_mpki > small.l3_mpki);
    }

    #[test]
    fn stall_cycles_track_memory_intensity() {
        let h = CacheHierarchy::default();
        let light = h.stall_cycles(&profile(8 * 1024, 0.9));
        let heavy = h.stall_cycles(&profile(128 * 1024 * 1024, 0.1));
        assert!(heavy > 10.0 * light);
        let none = h.stall_cycles(&WorkProfile {
            mem_reads: 0,
            mem_writes: 0,
            ..profile(1024, 0.5)
        });
        assert_eq!(none, 0.0);
    }

    #[test]
    fn empty_profile_has_zero_mpki() {
        let h = CacheHierarchy::default();
        assert_eq!(h.miss_rates(&WorkProfile::default()), MissRates::default());
    }
}
