//! Queueing models for the TailBench case study.
//!
//! The paper's §VII case study compares measured 95th-percentile latencies against the
//! prediction of an M/G/n queueing model: Poisson arrivals, an empirical ("general")
//! service-time distribution, and `n` servers.  The model predicts the latency the
//! system *would* achieve if adding threads had no overhead; the gap between the model
//! and measurements is then attributed to memory contention or synchronization.
//!
//! * [`mg1`] — the exact Pollaczek–Khinchine formula for the M/G/1 *mean* waiting time
//!   (used for sanity checks and unit tests).
//! * [`mgk`] — a discrete-event simulation of an M/G/k queue fed by an empirical
//!   service-time distribution, which yields full sojourn-time distributions and hence
//!   tail percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mg1;
pub mod mgk;

pub use mg1::Mg1Model;
pub use mgk::{EmpiricalDistribution, MgkSimulation};
