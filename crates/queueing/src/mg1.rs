//! The analytic M/G/1 model (Pollaczek–Khinchine).

/// An M/G/1 queue characterized by the first two moments of its service-time
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mg1Model {
    /// Mean service time in seconds.
    pub mean_service_s: f64,
    /// Second moment of the service time (E[S²]) in seconds².
    pub service_second_moment: f64,
}

impl Mg1Model {
    /// Builds the model from raw service-time samples (in nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples_ns(samples: &[u64]) -> Self {
        assert!(!samples.is_empty(), "need at least one service-time sample");
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&s| s as f64 * 1e-9).sum::<f64>() / n;
        let second = samples
            .iter()
            .map(|&s| (s as f64 * 1e-9).powi(2))
            .sum::<f64>()
            / n;
        Mg1Model {
            mean_service_s: mean,
            service_second_moment: second,
        }
    }

    /// Server utilization at arrival rate `lambda` (per second).
    #[must_use]
    pub fn utilization(&self, lambda: f64) -> f64 {
        lambda * self.mean_service_s
    }

    /// Mean waiting (queuing) time in seconds at arrival rate `lambda`, by
    /// Pollaczek–Khinchine.  Returns `f64::INFINITY` at or beyond saturation.
    #[must_use]
    pub fn mean_wait_s(&self, lambda: f64) -> f64 {
        let rho = self.utilization(lambda);
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        lambda * self.service_second_moment / (2.0 * (1.0 - rho))
    }

    /// Mean sojourn time (waiting + service) in seconds at arrival rate `lambda`.
    #[must_use]
    pub fn mean_sojourn_s(&self, lambda: f64) -> f64 {
        self.mean_wait_s(lambda) + self.mean_service_s
    }

    /// The saturation arrival rate (requests per second).
    #[must_use]
    pub fn saturation_rate(&self) -> f64 {
        1.0 / self.mean_service_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_service_matches_md1() {
        // M/D/1: W = rho * s / (2 (1 - rho)).
        let model = Mg1Model {
            mean_service_s: 0.001,
            service_second_moment: 0.001f64.powi(2),
        };
        let lambda = 500.0; // rho = 0.5
        let expected = 0.5 * 0.001 / (2.0 * 0.5);
        assert!((model.mean_wait_s(lambda) - expected).abs() < 1e-9);
        assert!((model.mean_sojourn_s(lambda) - (expected + 0.001)).abs() < 1e-9);
    }

    #[test]
    fn exponential_service_matches_mm1() {
        // M/M/1: W = rho / (mu - lambda). E[S^2] = 2 / mu^2 for exponential service.
        let mu = 1_000.0f64;
        let model = Mg1Model {
            mean_service_s: 1.0 / mu,
            service_second_moment: 2.0 / (mu * mu),
        };
        let lambda = 700.0;
        let expected = (lambda / mu) / (mu - lambda);
        assert!((model.mean_wait_s(lambda) - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn saturation_gives_infinite_wait() {
        let model = Mg1Model {
            mean_service_s: 0.01,
            service_second_moment: 2e-4,
        };
        assert_eq!(model.mean_wait_s(100.0), f64::INFINITY);
        assert_eq!(model.mean_wait_s(150.0), f64::INFINITY);
        assert!((model.saturation_rate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn from_samples_computes_moments() {
        let samples = vec![1_000_000u64, 3_000_000]; // 1 ms and 3 ms
        let model = Mg1Model::from_samples_ns(&samples);
        assert!((model.mean_service_s - 0.002).abs() < 1e-12);
        assert!(
            (model.service_second_moment - (0.001f64.powi(2) + 0.003f64.powi(2)) / 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn wait_increases_with_load() {
        let model = Mg1Model {
            mean_service_s: 0.001,
            service_second_moment: 2e-6,
        };
        assert!(model.mean_wait_s(800.0) > model.mean_wait_s(200.0));
    }
}
