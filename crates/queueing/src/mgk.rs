//! Discrete-event simulation of an M/G/k queue.
//!
//! Percentiles of an M/G/k queue have no convenient closed form, so the case study's
//! model predictions (Fig. 8) are obtained by simulating the queue directly: Poisson
//! arrivals at rate λ, k servers, and service times resampled from an empirical
//! distribution of measured per-request service times.  Because the model reuses the
//! *measured single-threaded* service times, it predicts what an n-thread system would
//! achieve if threads added no overhead — the comparison baseline the paper uses.

use rand::Rng;
use std::collections::{BinaryHeap, VecDeque};
use tailbench_histogram::LatencySummary;
use tailbench_workloads::interarrival::InterarrivalProcess;
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// An empirical distribution resampled uniformly from observed values.
#[derive(Debug, Clone)]
pub struct EmpiricalDistribution {
    samples: Vec<u64>,
}

impl EmpiricalDistribution {
    /// Creates a distribution from observed samples (nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn new(samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        EmpiricalDistribution { samples }
    }

    /// Mean of the observed samples in nanoseconds.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut SuiteRng) -> u64 {
        self.samples[rng.gen_range(0..self.samples.len())]
    }
}

/// Result of one M/G/k simulation.
#[derive(Debug, Clone)]
pub struct MgkResult {
    /// Sojourn-time distribution (nanoseconds).
    pub sojourn: LatencySummary,
    /// Offered utilization λ·E[S]/k.
    pub utilization: f64,
}

impl MgkResult {
    /// 95th-percentile sojourn time in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> u64 {
        self.sojourn.value_at_quantile(0.95)
    }

    /// Mean sojourn time in nanoseconds.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        self.sojourn.mean()
    }
}

/// An M/G/k queueing simulation.
#[derive(Debug, Clone)]
pub struct MgkSimulation {
    service: EmpiricalDistribution,
    servers: usize,
}

impl MgkSimulation {
    /// Creates a simulation with `servers` servers and the given service distribution.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn new(service: EmpiricalDistribution, servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        MgkSimulation { service, servers }
    }

    /// Simulates `requests` arrivals at `qps` queries per second and returns the sojourn
    /// distribution.  The first 10% of requests are discarded as warmup.
    #[must_use]
    pub fn run(&self, qps: f64, requests: usize, seed: u64) -> MgkResult {
        let mut rng = seeded_rng(seed, 900);
        let arrivals = InterarrivalProcess::poisson(qps).schedule(&mut rng, requests);
        let warmup = requests / 10;

        let mut sojourn = LatencySummary::new();
        // Completion-time min-heap.
        let mut completions: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        let mut waiting: VecDeque<u64> = VecDeque::new();
        let mut busy = 0usize;

        let serve = |arrival: u64,
                     start: u64,
                     idx: usize,
                     rng: &mut SuiteRng,
                     sojourn: &mut LatencySummary,
                     completions: &mut BinaryHeap<std::cmp::Reverse<u64>>| {
            let service = self.service.sample(rng).max(1);
            let done = start + service;
            if idx >= warmup {
                sojourn.record(done - arrival);
            }
            completions.push(std::cmp::Reverse(done));
        };

        // Indices of waiting requests follow arrival order, so we track (arrival, idx).
        let mut waiting_idx: VecDeque<usize> = VecDeque::new();
        for (idx, &arrival) in arrivals.iter().enumerate() {
            // Drain completions that happen before this arrival.
            while let Some(&std::cmp::Reverse(done)) = completions.peek() {
                if done > arrival {
                    break;
                }
                completions.pop();
                busy -= 1;
                if let (Some(queued_arrival), Some(queued_idx)) =
                    (waiting.pop_front(), waiting_idx.pop_front())
                {
                    busy += 1;
                    serve(
                        queued_arrival,
                        done,
                        queued_idx,
                        &mut rng,
                        &mut sojourn,
                        &mut completions,
                    );
                }
            }
            if busy < self.servers {
                busy += 1;
                serve(
                    arrival,
                    arrival,
                    idx,
                    &mut rng,
                    &mut sojourn,
                    &mut completions,
                );
            } else {
                waiting.push_back(arrival);
                waiting_idx.push_back(idx);
            }
        }
        // Drain the remaining queue (no new arrivals, so the busy count no longer matters).
        while let Some(std::cmp::Reverse(done)) = completions.pop() {
            if let (Some(queued_arrival), Some(queued_idx)) =
                (waiting.pop_front(), waiting_idx.pop_front())
            {
                serve(
                    queued_arrival,
                    done,
                    queued_idx,
                    &mut rng,
                    &mut sojourn,
                    &mut completions,
                );
            }
        }

        MgkResult {
            utilization: qps * self.service.mean_ns() * 1e-9 / self.servers as f64,
            sojourn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1Model;

    fn exponential_samples(mean_ns: f64, n: usize) -> Vec<u64> {
        let mut rng = seeded_rng(42, 0);
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-u.ln() * mean_ns) as u64
            })
            .collect()
    }

    #[test]
    fn empirical_distribution_resamples_observed_values() {
        let dist = EmpiricalDistribution::new(vec![100, 200, 300]);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..100 {
            assert!([100, 200, 300].contains(&dist.sample(&mut rng)));
        }
        assert!((dist.mean_ns() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn low_load_sojourn_is_close_to_service_time() {
        let dist = EmpiricalDistribution::new(vec![1_000_000; 100]); // 1 ms deterministic
        let sim = MgkSimulation::new(dist, 1);
        let result = sim.run(10.0, 20_000, 1); // 1% utilization
        assert!(result.utilization < 0.02);
        let mean = result.mean_ns();
        assert!(
            (mean - 1_000_000.0).abs() / 1_000_000.0 < 0.05,
            "mean = {mean}"
        );
    }

    #[test]
    fn matches_mm1_mean_at_moderate_load() {
        let mean_service = 100_000.0; // 100 us
        let samples = exponential_samples(mean_service, 20_000);
        let analytic = Mg1Model::from_samples_ns(&samples);
        let sim = MgkSimulation::new(EmpiricalDistribution::new(samples), 1);
        let qps = 5_000.0; // rho = 0.5
        let result = sim.run(qps, 200_000, 7);
        let simulated_mean_s = result.mean_ns() * 1e-9;
        let analytic_mean_s = analytic.mean_sojourn_s(qps);
        let err = (simulated_mean_s - analytic_mean_s).abs() / analytic_mean_s;
        assert!(
            err < 0.1,
            "simulated {simulated_mean_s}, analytic {analytic_mean_s}, err {err}"
        );
    }

    #[test]
    fn more_servers_cut_tail_latency_at_fixed_total_load() {
        let samples = exponential_samples(1_000_000.0, 5_000);
        let dist = EmpiricalDistribution::new(samples);
        let one = MgkSimulation::new(dist.clone(), 1).run(800.0, 50_000, 3);
        let four = MgkSimulation::new(dist, 4).run(3_200.0, 50_000, 3);
        // Same per-server load (0.8) but pooling lowers the tail (standard M/G/k result).
        assert!(four.p95_ns() < one.p95_ns());
    }

    #[test]
    fn tail_grows_sharply_near_saturation() {
        let samples = exponential_samples(1_000_000.0, 5_000);
        let dist = EmpiricalDistribution::new(samples);
        let sim = MgkSimulation::new(dist, 1);
        let low = sim.run(200.0, 30_000, 5);
        let high = sim.run(900.0, 30_000, 5);
        assert!(high.p95_ns() > 3 * low.p95_ns());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = MgkSimulation::new(EmpiricalDistribution::new(vec![1]), 0);
    }
}
