//! Translation models: phrase table and n-gram language model.
//!
//! moses is a phrase-based statistical machine translation decoder: it segments the
//! source sentence into phrases, looks up translation options in a *phrase table*, and
//! scores candidate target sentences with a *language model* plus translation and
//! distortion scores.  This module provides synthetic but structurally faithful versions
//! of both models: a phrase table over a synthetic bilingual vocabulary with several
//! translation options per phrase, and a bigram language model with backoff, trained on a
//! synthetic target-language corpus generated from the same vocabulary.

use rand::Rng;
use std::collections::HashMap;
use tailbench_workloads::rng::{seeded_rng, SuiteRng};
use tailbench_workloads::zipf::Zipfian;

/// A translation option for a source phrase.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationOption {
    /// Target-language word ids.
    pub target: Vec<u32>,
    /// Log translation probability (negative).
    pub log_prob: f32,
}

/// Configuration of the synthetic translation model.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Source vocabulary size.
    pub source_vocab: u32,
    /// Target vocabulary size.
    pub target_vocab: u32,
    /// Maximum source phrase length covered by the phrase table.
    pub max_phrase_len: usize,
    /// Translation options generated per source phrase.
    pub options_per_phrase: usize,
    /// Seed for model synthesis.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            source_vocab: 20_000,
            target_vocab: 20_000,
            max_phrase_len: 3,
            options_per_phrase: 8,
            seed: 0x5E7,
        }
    }
}

impl ModelConfig {
    /// A small configuration for unit tests.
    #[must_use]
    pub fn small() -> Self {
        ModelConfig {
            source_vocab: 500,
            target_vocab: 500,
            max_phrase_len: 2,
            options_per_phrase: 4,
            seed: 3,
        }
    }
}

/// Phrase table: maps source word sequences to translation options.
///
/// Options are synthesized on demand from a deterministic hash of the source phrase, so
/// the table covers the whole (exponentially large) phrase space without materializing
/// it, while remaining reproducible — the same source phrase always yields the same
/// options and probabilities.  This mirrors how a real phrase table behaves from the
/// decoder's perspective (a lookup returning a handful of scored options).
#[derive(Debug, Clone)]
pub struct PhraseTable {
    config: ModelConfig,
}

impl PhraseTable {
    /// Creates a phrase table for the given configuration.
    #[must_use]
    pub fn new(config: ModelConfig) -> Self {
        PhraseTable { config }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn phrase_hash(phrase: &[u32]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in phrase {
            h ^= u64::from(w);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Looks up the translation options for a source phrase.  Phrases longer than the
    /// configured maximum have no entry.
    #[must_use]
    pub fn lookup(&self, phrase: &[u32]) -> Vec<TranslationOption> {
        if phrase.is_empty() || phrase.len() > self.config.max_phrase_len {
            return Vec::new();
        }
        let h = Self::phrase_hash(phrase);
        let n = self.config.options_per_phrase;
        (0..n)
            .map(|i| {
                let mut x = h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                x ^= x >> 29;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 32;
                // Target phrase length: same as source +-1.
                let len = (phrase.len() as i64 + (x % 3) as i64 - 1).clamp(1, 4) as usize;
                let target = (0..len)
                    .map(|j| ((x >> (j * 8)) as u32) % self.config.target_vocab)
                    .collect();
                // More likely options come first; log-probs spread over about 4 nats with
                // a small per-option perturbation that never reorders options.
                let log_prob = -0.5 - 0.5 * i as f32 - 0.4 * ((x >> 48) as f32 / 65_536.0);
                TranslationOption { target, log_prob }
            })
            .collect()
    }
}

/// A bigram language model with stupid-backoff smoothing over the target vocabulary.
#[derive(Debug, Clone)]
pub struct LanguageModel {
    unigram_log_prob: Vec<f32>,
    bigram_log_prob: HashMap<(u32, u32), f32>,
    backoff_log: f32,
    vocab: u32,
}

impl LanguageModel {
    /// Trains the model on a synthetic target-language corpus of `sentences` sentences
    /// drawn from a Zipfian vocabulary (natural-language-like frequencies).
    #[must_use]
    pub fn train_synthetic(config: &ModelConfig, sentences: usize) -> Self {
        let mut rng = seeded_rng(config.seed, 7);
        let dist = Zipfian::new(u64::from(config.target_vocab), 0.9);
        let mut unigram_counts = vec![1u64; config.target_vocab as usize]; // add-one smoothing
        let mut bigram_counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut total = config.target_vocab as u64;
        for _ in 0..sentences {
            let len = rng.gen_range(4..=18);
            let mut prev: Option<u32> = None;
            for _ in 0..len {
                let w = dist.sample(&mut rng) as u32;
                unigram_counts[w as usize] += 1;
                total += 1;
                if let Some(p) = prev {
                    *bigram_counts.entry((p, w)).or_insert(0) += 1;
                }
                prev = Some(w);
            }
        }
        let unigram_log_prob = unigram_counts
            .iter()
            .map(|&c| ((c as f64 / total as f64) as f32).ln())
            .collect::<Vec<_>>();
        let bigram_log_prob = bigram_counts
            .into_iter()
            .map(|((a, b), c)| {
                let denom = unigram_counts[a as usize];
                ((a, b), ((c as f64 / denom as f64) as f32).ln())
            })
            .collect();
        LanguageModel {
            unigram_log_prob,
            bigram_log_prob,
            backoff_log: (0.4f32).ln(),
            vocab: config.target_vocab,
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// Log probability of `word` following `prev` (unigram with backoff when the bigram
    /// was never observed).
    #[must_use]
    pub fn log_prob(&self, prev: Option<u32>, word: u32) -> f32 {
        if word >= self.vocab {
            return -20.0;
        }
        match prev {
            Some(p) => match self.bigram_log_prob.get(&(p, word)) {
                Some(&lp) => lp,
                None => self.backoff_log + self.unigram_log_prob[word as usize],
            },
            None => self.unigram_log_prob[word as usize],
        }
    }

    /// Scores a whole target word sequence.
    #[must_use]
    pub fn score_sequence(&self, words: &[u32]) -> f32 {
        let mut prev = None;
        let mut total = 0.0;
        for &w in words {
            total += self.log_prob(prev, w);
            prev = Some(w);
        }
        total
    }
}

/// Generates synthetic source-language sentences (the request stream for moses).
#[derive(Debug)]
pub struct SentenceGenerator {
    dist: Zipfian,
    min_len: usize,
    max_len: usize,
}

impl SentenceGenerator {
    /// Creates a generator of source sentences of `min_len..=max_len` words.
    #[must_use]
    pub fn new(config: &ModelConfig, min_len: usize, max_len: usize) -> Self {
        SentenceGenerator {
            dist: Zipfian::new(u64::from(config.source_vocab), 0.9),
            min_len: min_len.max(1),
            max_len: max_len.max(min_len.max(1)),
        }
    }

    /// Dialogue-like defaults (3–20 words), matching the opensubtitles snippets the paper
    /// uses.
    #[must_use]
    pub fn dialogue(config: &ModelConfig) -> Self {
        Self::new(config, 3, 20)
    }

    /// Draws the next source sentence.
    pub fn next_sentence(&self, rng: &mut SuiteRng) -> Vec<u32> {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| self.dist.sample(rng) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrase_table_lookup_is_deterministic_and_bounded() {
        let table = PhraseTable::new(ModelConfig::small());
        let a = table.lookup(&[1, 2]);
        let b = table.lookup(&[1, 2]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a
            .iter()
            .all(|o| !o.target.is_empty() && o.target.len() <= 4));
        assert!(a.iter().all(|o| o.log_prob < 0.0));
        // Options are ordered from most to least probable.
        assert!(a.windows(2).all(|w| w[0].log_prob >= w[1].log_prob));
        assert!(table.lookup(&[]).is_empty());
        assert!(table.lookup(&[1, 2, 3, 4]).is_empty());
    }

    #[test]
    fn different_phrases_get_different_options() {
        let table = PhraseTable::new(ModelConfig::small());
        assert_ne!(table.lookup(&[1]), table.lookup(&[2]));
    }

    #[test]
    fn language_model_probabilities_are_sane() {
        let config = ModelConfig::small();
        let lm = LanguageModel::train_synthetic(&config, 2_000);
        assert_eq!(lm.vocab(), 500);
        // All log probs are negative; frequent words are more likely than rare ones.
        assert!(lm.log_prob(None, 0) < 0.0);
        assert!(lm.log_prob(None, 0) > lm.log_prob(None, 499));
        // Out-of-vocabulary words get a floor.
        assert_eq!(lm.log_prob(None, 10_000), -20.0);
        // Sequence scores add up.
        let s = lm.score_sequence(&[0, 1, 2]);
        assert!(s < 0.0 && s.is_finite());
    }

    #[test]
    fn sentence_generator_respects_length_bounds() {
        let config = ModelConfig::small();
        let gen = SentenceGenerator::dialogue(&config);
        let mut rng = seeded_rng(1, 0);
        for _ in 0..200 {
            let s = gen.next_sentence(&mut rng);
            assert!((3..=20).contains(&s.len()));
            assert!(s.iter().all(|&w| w < config.source_vocab));
        }
    }
}
