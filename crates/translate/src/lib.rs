//! The moses substitute: phrase-based statistical machine translation.
//!
//! TailBench drives moses' phrase-based decoder with dialogue snippets (paper §III).
//! This crate implements the same decoding pipeline from scratch:
//!
//! * [`model`] — a synthetic phrase table, a bigram language model with backoff trained
//!   on a synthetic target corpus, and a dialogue-sentence generator;
//! * [`decoder`] — the stack-based beam-search decoder with histogram pruning, hypothesis
//!   recombination and a distortion limit;
//! * [`service`] — the harness adapter ([`MosesApp`]) and request factory.
//!
//! # Example
//!
//! ```
//! use tailbench_translate::decoder::{Decoder, DecoderConfig};
//! use tailbench_translate::model::{LanguageModel, ModelConfig, PhraseTable};
//!
//! let config = ModelConfig::small();
//! let decoder = Decoder::new(
//!     PhraseTable::new(config.clone()),
//!     LanguageModel::train_synthetic(&config, 500),
//!     DecoderConfig::default(),
//! );
//! let translation = decoder.translate(&[1, 2, 3]);
//! assert!(!translation.target.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decoder;
pub mod model;
pub mod service;

pub use decoder::{Decoder, DecoderConfig, Translation};
pub use model::{LanguageModel, ModelConfig, PhraseTable, SentenceGenerator};
pub use service::{MosesApp, TranslateRequestFactory};
