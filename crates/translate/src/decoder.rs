//! The phrase-based stack decoder.
//!
//! moses' phrase-based decoder performs a beam search over partial translations
//! ("hypotheses"): hypotheses are organized into stacks by the number of source words
//! covered, each expansion applies one phrase-table option to an uncovered source span,
//! and stacks are pruned to a fixed beam width (histogram pruning).  Decoding cost grows
//! with sentence length × beam width × phrase options, which gives moses its
//! moderate-variance, millisecond-scale service times (paper Fig. 2).

use crate::model::{LanguageModel, PhraseTable};

/// Decoder tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct DecoderConfig {
    /// Maximum hypotheses kept per stack (beam width).
    pub beam_width: usize,
    /// Maximum reordering distance (distortion limit), in source words.
    pub distortion_limit: usize,
    /// Weight of the language-model score.
    pub lm_weight: f32,
    /// Weight of the translation-model score.
    pub tm_weight: f32,
    /// Per-word distortion penalty.
    pub distortion_penalty: f32,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        DecoderConfig {
            beam_width: 40,
            distortion_limit: 4,
            lm_weight: 0.5,
            tm_weight: 1.0,
            distortion_penalty: 0.1,
        }
    }
}

/// A partial translation hypothesis.
#[derive(Debug, Clone)]
struct Hypothesis {
    /// Bitmap of covered source positions.
    coverage: u64,
    /// Last target word emitted (LM context).
    last_word: Option<u32>,
    /// End position of the last translated source phrase (for distortion).
    last_end: usize,
    /// Accumulated model score (higher is better).
    score: f32,
    /// Emitted target words.
    target: Vec<u32>,
}

/// The result of decoding one sentence.
#[derive(Debug, Clone, PartialEq)]
pub struct Translation {
    /// Target-language word ids.
    pub target: Vec<u32>,
    /// Final model score of the chosen hypothesis.
    pub score: f32,
    /// Number of hypothesis expansions performed (a proxy for decoding work).
    pub expansions: u64,
}

/// A phrase-based beam-search decoder.
#[derive(Debug)]
pub struct Decoder {
    table: PhraseTable,
    lm: LanguageModel,
    config: DecoderConfig,
}

impl Decoder {
    /// Creates a decoder from its models and configuration.
    #[must_use]
    pub fn new(table: PhraseTable, lm: LanguageModel, config: DecoderConfig) -> Self {
        Decoder { table, lm, config }
    }

    /// The decoder configuration.
    #[must_use]
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Translates a source sentence (word ids).  Sentences longer than 63 words are
    /// truncated (the coverage bitmap is a `u64`), which comfortably covers the dialogue
    /// workload.
    #[must_use]
    pub fn translate(&self, source: &[u32]) -> Translation {
        let source = &source[..source.len().min(63)];
        let n = source.len();
        if n == 0 {
            return Translation {
                target: Vec::new(),
                score: 0.0,
                expansions: 0,
            };
        }
        let max_phrase = self.table.config().max_phrase_len;
        let mut stacks: Vec<Vec<Hypothesis>> = vec![Vec::new(); n + 1];
        stacks[0].push(Hypothesis {
            coverage: 0,
            last_word: None,
            last_end: 0,
            score: 0.0,
            target: Vec::new(),
        });
        let mut expansions = 0u64;

        for covered in 0..n {
            // Histogram pruning: keep only the best `beam_width` hypotheses per stack.
            stacks[covered].sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            stacks[covered].truncate(self.config.beam_width);
            // Recombination: keep the best hypothesis per (coverage, last_word) state.
            dedup_states(&mut stacks[covered]);

            for h_idx in 0..stacks[covered].len() {
                let hyp = stacks[covered][h_idx].clone();
                for start in 0..n {
                    // Distortion limit relative to the end of the previous phrase.
                    if start.abs_diff(hyp.last_end) > self.config.distortion_limit {
                        continue;
                    }
                    for len in 1..=max_phrase.min(n - start) {
                        let span_mask = ((1u64 << len) - 1) << start;
                        if hyp.coverage & span_mask != 0 {
                            continue;
                        }
                        let options = self.table.lookup(&source[start..start + len]);
                        for option in &options {
                            expansions += 1;
                            let mut lm_score = 0.0;
                            let mut prev = hyp.last_word;
                            for &w in &option.target {
                                lm_score += self.lm.log_prob(prev, w);
                                prev = Some(w);
                            }
                            let distortion = -(start.abs_diff(hyp.last_end) as f32)
                                * self.config.distortion_penalty;
                            let score = hyp.score
                                + self.config.tm_weight * option.log_prob
                                + self.config.lm_weight * lm_score
                                + distortion;
                            let mut target = hyp.target.clone();
                            target.extend_from_slice(&option.target);
                            stacks[covered + len].push(Hypothesis {
                                coverage: hyp.coverage | span_mask,
                                last_word: prev,
                                last_end: start + len,
                                score,
                                target,
                            });
                        }
                    }
                }
            }
        }

        let best = stacks[n].iter().max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        match best {
            Some(h) => Translation {
                target: h.target.clone(),
                score: h.score,
                expansions,
            },
            None => Translation {
                // No full-coverage hypothesis survived pruning (possible for degenerate
                // inputs); fall back to an empty translation.
                target: Vec::new(),
                score: f32::NEG_INFINITY,
                expansions,
            },
        }
    }
}

/// Keeps only the best-scoring hypothesis for each (coverage, last_word) pair.
fn dedup_states(stack: &mut Vec<Hypothesis>) {
    use std::collections::HashMap;
    let mut best: HashMap<(u64, Option<u32>), usize> = HashMap::new();
    let mut keep = vec![false; stack.len()];
    for (i, h) in stack.iter().enumerate() {
        match best.entry((h.coverage, h.last_word)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
                keep[i] = true;
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if stack[*e.get()].score < h.score {
                    keep[*e.get()] = false;
                    keep[i] = true;
                    e.insert(i);
                }
            }
        }
    }
    let mut idx = 0;
    stack.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn decoder() -> Decoder {
        let config = ModelConfig::small();
        Decoder::new(
            PhraseTable::new(config.clone()),
            LanguageModel::train_synthetic(&config, 1_000),
            DecoderConfig {
                beam_width: 12,
                ..DecoderConfig::default()
            },
        )
    }

    #[test]
    fn empty_sentence_translates_to_empty() {
        let d = decoder();
        let t = d.translate(&[]);
        assert!(t.target.is_empty());
        assert_eq!(t.expansions, 0);
    }

    #[test]
    fn translation_covers_the_sentence() {
        let d = decoder();
        let t = d.translate(&[1, 2, 3, 4, 5]);
        assert!(!t.target.is_empty());
        assert!(t.score.is_finite());
        assert!(t.expansions > 10);
        // Target length is within a reasonable factor of the source length.
        assert!(t.target.len() >= 3 && t.target.len() <= 20);
    }

    #[test]
    fn decoding_is_deterministic() {
        let d = decoder();
        let a = d.translate(&[7, 8, 9, 10]);
        let b = d.translate(&[7, 8, 9, 10]);
        assert_eq!(a, b);
    }

    #[test]
    fn longer_sentences_cost_more() {
        let d = decoder();
        let short = d.translate(&[1, 2, 3]);
        let long = d.translate(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        assert!(long.expansions > short.expansions * 2);
    }

    #[test]
    fn wider_beam_scores_at_least_as_well() {
        let config = ModelConfig::small();
        let narrow = Decoder::new(
            PhraseTable::new(config.clone()),
            LanguageModel::train_synthetic(&config, 1_000),
            DecoderConfig {
                beam_width: 2,
                ..DecoderConfig::default()
            },
        );
        let wide = Decoder::new(
            PhraseTable::new(config.clone()),
            LanguageModel::train_synthetic(&config, 1_000),
            DecoderConfig {
                beam_width: 64,
                ..DecoderConfig::default()
            },
        );
        let sentence = [3u32, 14, 15, 92, 6, 53];
        assert!(wide.translate(&sentence).score >= narrow.translate(&sentence).score - 1e-3);
    }
}
