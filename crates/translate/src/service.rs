//! moses as a TailBench application.

use crate::decoder::{Decoder, DecoderConfig, Translation};
use crate::model::{LanguageModel, ModelConfig, PhraseTable, SentenceGenerator};
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// Wire encoding of translation requests/responses (plain `u32` word-id sequences).
pub mod codec {
    /// Encodes a word-id sequence.
    #[must_use]
    pub fn encode_words(words: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + words.len() * 4);
        out.extend_from_slice(&(words.len() as u16).to_le_bytes());
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a word-id sequence; `None` if malformed.
    #[must_use]
    pub fn decode_words(payload: &[u8]) -> Option<Vec<u32>> {
        if payload.len() < 2 {
            return None;
        }
        let n = u16::from_le_bytes(payload[..2].try_into().ok()?) as usize;
        let body = payload.get(2..2 + n * 4)?;
        Some(
            (0..n)
                .map(|i| u32::from_le_bytes(body[i * 4..i * 4 + 4].try_into().unwrap()))
                .collect(),
        )
    }
}

/// The moses-substitute machine translation application.
#[derive(Debug)]
pub struct MosesApp {
    decoder: Decoder,
}

impl MosesApp {
    /// Builds the phrase table and language model and wraps them in a decoder.
    #[must_use]
    pub fn new(model_config: ModelConfig, decoder_config: DecoderConfig) -> Self {
        let table = PhraseTable::new(model_config.clone());
        let lm = LanguageModel::train_synthetic(&model_config, 5_000);
        MosesApp {
            decoder: Decoder::new(table, lm, decoder_config),
        }
    }

    /// Default full-scale configuration.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(ModelConfig::default(), DecoderConfig::default())
    }

    /// Reduced configuration for tests.
    #[must_use]
    pub fn small() -> Self {
        Self::new(
            ModelConfig::small(),
            DecoderConfig {
                beam_width: 8,
                ..DecoderConfig::default()
            },
        )
    }

    fn work_profile(&self, translation: &Translation) -> WorkProfile {
        // Each hypothesis expansion touches the phrase-table entry, the LM hash table and
        // the hypothesis stack: ~150 instructions and ~6 memory reads, with a large and
        // poorly cached footprint (moses is the most memory-intensive app in Table I).
        let e = translation.expansions;
        WorkProfile {
            instructions: 5_000 + 150 * e,
            mem_reads: 100 + 6 * e,
            mem_writes: 50 + 2 * e,
            footprint_bytes: 64 * 1024 + 96 * e,
            locality: 0.25,
            critical_fraction: 0.02,
        }
    }
}

impl ServerApp for MosesApp {
    fn name(&self) -> &str {
        "moses"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(source) = codec::decode_words(payload) else {
            return Response::new(vec![0xFF]);
        };
        let translation = self.decoder.translate(&source);
        let work = self.work_profile(&translation);
        Response::with_work(codec::encode_words(&translation.target), work)
    }
}

/// Generates dialogue-snippet translation requests.
#[derive(Debug)]
pub struct TranslateRequestFactory {
    generator: SentenceGenerator,
    rng: SuiteRng,
}

impl TranslateRequestFactory {
    /// Creates a factory matching the given model configuration.
    #[must_use]
    pub fn new(model_config: &ModelConfig, seed: u64) -> Self {
        TranslateRequestFactory {
            generator: SentenceGenerator::dialogue(model_config),
            rng: seeded_rng(seed, 300),
        }
    }
}

impl RequestFactory for TranslateRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode_words(&self.generator.next_sentence(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let words = vec![1u32, 500, 19_999];
        assert_eq!(
            codec::decode_words(&codec::encode_words(&words)),
            Some(words)
        );
        assert_eq!(codec::decode_words(&[5]), None);
    }

    #[test]
    fn app_translates_requests() {
        let app = MosesApp::small();
        let resp = app.handle(&codec::encode_words(&[1, 2, 3, 4, 5, 6]));
        let target = codec::decode_words(&resp.payload).unwrap();
        assert!(!target.is_empty());
        assert!(resp.work.instructions > 5_000);
        assert!(resp.work.locality < 0.5, "moses is memory-intensive");
    }

    #[test]
    fn malformed_request_is_rejected() {
        let app = MosesApp::small();
        assert_eq!(app.handle(&[9]).payload, vec![0xFF]);
    }

    #[test]
    fn longer_sentences_report_more_work() {
        let app = MosesApp::small();
        let short = app.handle(&codec::encode_words(&[1, 2, 3]));
        let long = app.handle(&codec::encode_words(&(0u32..14).collect::<Vec<_>>()));
        assert!(long.work.instructions > short.work.instructions);
    }

    #[test]
    fn factory_produces_valid_sentences() {
        let config = ModelConfig::small();
        let mut factory = TranslateRequestFactory::new(&config, 4);
        for _ in 0..50 {
            let words = codec::decode_words(&factory.next_request()).unwrap();
            assert!((3..=20).contains(&words.len()));
        }
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let app: Arc<dyn ServerApp> = Arc::new(MosesApp::small());
        let config = ModelConfig::small();
        let mut factory = TranslateRequestFactory::new(&config, 8);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(200.0, 120).with_warmup(10),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "moses");
        assert!(report.requests > 100);
    }
}
