//! Regenerates Fig. 4: 95th-percentile latency vs per-thread request rate as the number
//! of worker threads grows from 1 to 4, for silo, masstree, xapian and moses.

use tailbench_bench::{
    build_app, capacity_qps, format_latency, print_table, sweep_load, AppId, Scale,
};
use tailbench_core::config::HarnessMode;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 2_500);
    let fractions = [0.2, 0.4, 0.6, 0.8, 0.9];
    let apps = [AppId::Silo, AppId::Masstree, AppId::Xapian, AppId::Moses];

    for id in apps {
        let bench = build_app(id, scale);
        let single_thread_capacity = capacity_qps(&bench, 1, requests.min(800));
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4] {
            // Offered load scales with the thread count so the x-axis is QPS per thread.
            let capacity = single_thread_capacity * threads as f64;
            let points = sweep_load(
                &bench,
                HarnessMode::Integrated,
                capacity,
                &fractions,
                threads,
                requests * threads,
            );
            for (fraction, report) in points {
                rows.push(vec![
                    threads.to_string(),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0) / threads as f64),
                    format!("{:.0}%", fraction * 100.0),
                    format_latency(report.sojourn.p95_ns as f64),
                    if report.is_saturated(0.1) {
                        "saturated".into()
                    } else {
                        String::new()
                    },
                ]);
            }
        }
        print_table(
            &format!("Fig. 4 — {} (p95 vs QPS/thread)", id.name()),
            &["threads", "QPS / thread", "load", "p95", ""],
            &rows,
        );
    }
}
