//! Regenerates Fig. 4: 95th-percentile latency vs per-thread request rate as the number
//! of worker threads grows from 1 to 4, for silo, masstree, xapian and moses.
//!
//! One `ExperimentSpec` per (application, thread count): a load-fraction sweep through
//! the unified experiment layer.  The measured-request budget scales with the thread
//! count (as in the original binary) so per-run sample counts keep pace with
//! throughput, and capacity is probed per thread count, so per-thread rates come
//! straight off the report.

use tailbench_bench::{format_latency, print_table, AppId, Scale};
use tailbench_experiment::{Experiment, ExperimentSpec, LoadSpec, SweepAxis};

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 2_500);
    let apps = [AppId::Silo, AppId::Masstree, AppId::Xapian, AppId::Moses];

    for id in apps {
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4] {
            let spec = ExperimentSpec::new(format!("fig4_{}_{threads}t", id.name()), id.name())
                .with_scale(scale)
                .with_threads(threads)
                .with_requests(requests * threads)
                .with_load(LoadSpec::FractionOfCapacity(0.5))
                .with_axis(SweepAxis::LoadFraction(vec![0.2, 0.4, 0.6, 0.8, 0.9]));
            let output = Experiment::new(spec).run().expect("fig4 experiment failed");
            for point in &output.points {
                let report = point.report.headline();
                rows.push(vec![
                    threads.to_string(),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0) / threads as f64),
                    format!("{:.0}%", point.coords.load_fraction.unwrap_or(0.0) * 100.0),
                    format_latency(report.sojourn.p95_ns as f64),
                    if report.is_saturated(0.1) {
                        "saturated".into()
                    } else {
                        String::new()
                    },
                ]);
            }
        }
        print_table(
            &format!("Fig. 4 — {} (p95 vs QPS/thread)", id.name()),
            &["threads", "QPS / thread", "load", "p95", ""],
            &rows,
        );
    }
}
