//! Regenerates Fig. 2: the cumulative distribution of request service times for each
//! application, measured by timing the request handler directly (no queuing).

use tailbench_bench::{
    build_app, format_latency, measure_service_samples, print_table, AppId, Scale,
};
use tailbench_histogram::LatencySummary;

fn main() {
    let scale = Scale::from_env();
    let samples_per_app = scale.requests(200, 5_000);
    let quantiles = [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00];
    let mut rows = Vec::new();

    for id in AppId::ALL {
        let bench = build_app(id, scale);
        let mut summary = LatencySummary::new();
        for sample in measure_service_samples(&bench, samples_per_app, 0xF162) {
            summary.record(sample);
        }
        let mut row = vec![id.name().to_string()];
        for q in quantiles {
            row.push(format_latency(summary.value_at_quantile(q) as f64));
        }
        rows.push(row);
        eprintln!("fig2: finished {}", id.name());
    }

    print_table(
        "Fig. 2 — service-time CDF (value at cumulative probability)",
        &[
            "app", "p10", "p25", "p50", "p75", "p90", "p95", "p99", "max",
        ],
        &rows,
    );
}
