//! Fig. 9 (extension): tail amplification under partition-aggregate fan-out.
//!
//! TailBench measures one client against one server; the tail-at-scale effect appears
//! once a request fans out across many servers and waits for the slowest shard.  The
//! `fig9` preset sweeps the shard count of a web-search cluster (one xapian leaf per
//! shard, document-partitioned) under broadcast fan-out in both the integrated
//! (real-time) and simulated (discrete-event) harness configurations; the capacity
//! prober folds the host's core budget into real-time cluster estimates.  Run
//! `tailbench preset fig9` for the same result plus JSON output.

use tailbench_experiment::{presets, Experiment, Scale};

fn main() {
    let spec = presets::fig9(Scale::from_env());
    let output = Experiment::new(spec).run().expect("fig9 experiment failed");
    for point in &output.points {
        if let Some(cluster) = point.report.cluster() {
            assert!(
                cluster.shards == 1 || cluster.cluster.sojourn.p99_ns >= cluster.max_shard_p99_ns(),
                "the end-to-end tail must wait for the slowest shard"
            );
        }
    }
    print!("{}", output.to_markdown());
    println!(
        "\nThe cluster p99 waits for the slowest of N shards, so it tracks the shards'\n\
         p99.9+ as N grows — the tail-at-scale effect that forces per-leaf tail SLOs far\n\
         below the end-to-end target."
    );
}
