//! Fig. 9 (extension): tail amplification under partition-aggregate fan-out.
//!
//! TailBench measures one client against one server; the tail-at-scale effect appears
//! once a request fans out across many servers and waits for the slowest shard.  This
//! binary sweeps the shard count of a web-search cluster (one xapian leaf per shard,
//! document-partitioned) under broadcast fan-out and reports, per shard count, the mean
//! per-shard p99 against the end-to-end p99 — the amplification is the ratio.  The sweep
//! runs in both the integrated (real-time) and simulated (discrete-event) harness
//! configurations.

use tailbench_bench::{build_search_cluster, format_latency, print_table, Scale, SearchCluster};
use tailbench_core::config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode};
use tailbench_core::report::ClusterReport;
use tailbench_core::runner;
use tailbench_simarch::SystemModel;

fn run_point(
    cluster_app: &SearchCluster,
    mode: HarnessMode,
    qps: f64,
    requests: usize,
    seed: u64,
) -> ClusterReport {
    let shards = cluster_app.leaves.len();
    let config = BenchmarkConfig::new(qps, requests)
        .with_mode(mode)
        .with_warmup((requests / 10).max(5))
        .with_seed(seed);
    let cluster = ClusterConfig::new(shards, FanoutPolicy::Broadcast);
    let mut factory = cluster_app.factory(seed);
    let model = SystemModel::default();
    runner::run_cluster(
        &cluster_app.leaves,
        factory.as_mut(),
        &config,
        &cluster,
        Some(&model),
    )
    .expect("cluster run failed")
}

/// Estimates a leaf's capacity under `mode` from a low-load probe (every shard sees the
/// full broadcast rate, so one leaf's capacity bounds the sweep).  The estimate averages
/// the *per-shard* service means — the cluster-level service time is the slowest leg's,
/// which would understate capacity more and more as the fan-out grows.
fn leaf_capacity_qps(cluster_app: &SearchCluster, mode: HarnessMode, requests: usize) -> f64 {
    let probe = run_point(cluster_app, mode, 200.0, requests.min(300), 0xF19);
    let shard_service_mean = probe
        .per_shard
        .iter()
        .map(|s| s.service.mean_ns)
        .sum::<f64>()
        / probe.per_shard.len().max(1) as f64;
    1e9 / shard_service_mean.max(1.0)
}

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(1_500, 10_000);
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Rows per mode, so the table stays grouped while the (expensive) corpus and leaf
    // indexes are built once per shard count and reused by both modes.
    let mut rows_by_mode: Vec<(&str, Vec<Vec<String>>)> =
        vec![("integrated", Vec::new()), ("simulated", Vec::new())];

    for shards in [1usize, 2, 4, 8, 16] {
        let cluster_app = build_search_cluster(shards, scale);
        for (mode_name, mode) in [
            ("integrated", HarnessMode::Integrated),
            ("simulated", HarnessMode::Simulated),
        ] {
            let capacity = leaf_capacity_qps(&cluster_app, mode.clone(), requests);
            // Broadcast sends every request to every shard.  Simulated stations are
            // virtual servers (run at 80% load, where queue divergence across the
            // shards drives the fan-out tail); in real-time modes the shards share the
            // host's cores, so the sustainable rate also shrinks with the fan-out.
            let load_fraction = match mode {
                HarnessMode::Simulated => 0.8,
                _ => 0.6 * (parallelism as f64 / shards as f64).min(1.0),
            };
            let report = run_point(
                &cluster_app,
                mode.clone(),
                (capacity * load_fraction).max(50.0),
                requests,
                0x5EED + shards as u64,
            );
            assert!(
                shards == 1 || report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns(),
                "the end-to-end tail must wait for the slowest shard"
            );
            let row = vec![
                mode_name.to_string(),
                shards.to_string(),
                format_latency(report.mean_shard_p99_ns()),
                format_latency(report.cluster.sojourn.p99_ns as f64),
                format!("{:.2}x", report.p99_amplification()),
            ];
            rows_by_mode
                .iter_mut()
                .find(|(name, _)| *name == mode_name)
                .expect("mode registered above")
                .1
                .push(row);
        }
    }

    let rows: Vec<Vec<String>> = rows_by_mode
        .into_iter()
        .flat_map(|(_, rows)| rows)
        .collect();
    print_table(
        "Fig. 9 — fan-out tail amplification (xapian leaves, broadcast fan-out)",
        &[
            "setup",
            "shards",
            "shard p99 (mean)",
            "cluster p99",
            "amplification",
        ],
        &rows,
    );
    println!(
        "\nThe cluster p99 waits for the slowest of N shards, so it tracks the shards'\n\
         p99.9+ as N grows — the tail-at-scale effect that forces per-leaf tail SLOs far\n\
         below the end-to-end target."
    );
}
