//! Fig. 10 (extension): tail latency under time-varying, multi-tenant load.
//!
//! TailBench's client is a stationary Poisson process; real services face bursts —
//! and it is during bursts that the tail blows up, long before mean load looks
//! dangerous.  This binary drives the masstree key-value store with a three-phase
//! scenario (steady → square-wave bursts → steady) shared by two client classes — an
//! interactive tenant issuing YCSB-B point reads (80% of the rate) and a batch tenant
//! issuing YCSB-E scans (20%) — and sweeps the burst amplitude.  Per-phase and
//! per-class p99s come straight out of the scenario engine's tagged collector, so the
//! burst-phase amplification and the batch tenant's impact on the interactive tenant
//! are read directly off the report.  Runs under the discrete-event simulated harness:
//! deterministic, host-independent, and fast enough to sweep.

use std::sync::Arc;
use std::time::Duration;
use tailbench_bench::{format_latency, print_table, Scale};
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::config::HarnessMode;
use tailbench_kvstore::{MasstreeApp, YcsbRequestFactory};
use tailbench_scenario::{execute_scenario, ClientClass, LoadPhase, Scenario};
use tailbench_simarch::SystemModel;
use tailbench_workloads::ycsb::{OpMix, YcsbConfig};

fn class_factories(
    interactive: &YcsbConfig,
    batch: &YcsbConfig,
    seed: u64,
) -> Vec<Box<dyn RequestFactory>> {
    vec![
        Box::new(YcsbRequestFactory::new(interactive, seed)),
        Box::new(YcsbRequestFactory::new(batch, seed ^ 0xBA7C4)) as Box<dyn RequestFactory>,
    ]
}

fn main() {
    let scale = Scale::from_env();
    let budget = scale.requests(3_000, 30_000);

    let records = match scale {
        Scale::Quick | Scale::Smoke => 100_000,
        Scale::Full => 1_000_000,
    };
    let interactive = YcsbConfig {
        records,
        mix: OpMix::YCSB_B,
        ..YcsbConfig::default()
    };
    let batch = YcsbConfig {
        records,
        mix: OpMix::YCSB_E,
        ..YcsbConfig::default()
    };
    let app: Arc<dyn ServerApp> = Arc::new(MasstreeApp::new(&interactive));
    let model = SystemModel::default();
    let classes = vec![
        ClientClass::new("interactive", 0.8),
        ClientClass::new("batch", 0.2),
    ];

    // Probe the simulated capacity with a light constant scenario: at trivial load the
    // sojourn is pure service time, and 1/service_mean bounds the sustainable rate.
    let probe = Scenario::new(
        "fig10-probe",
        vec![LoadPhase::constant(1_000.0, Duration::from_millis(300))],
    )
    .with_classes(classes.clone());
    let probe_report = execute_scenario(
        &app,
        class_factories(&interactive, &batch, 0xF10),
        &probe,
        HarnessMode::Simulated,
        1,
        0xF10,
        Some(&model),
    )
    .expect("probe run failed");
    let capacity = 1e9 / probe_report.service.mean_ns.max(1.0);
    let steady = (capacity * 0.4).max(100.0);
    // Total span sized so the steady baseline alone offers ~`budget` requests.
    let span_s = budget as f64 / steady;
    let steady_len = Duration::from_secs_f64(span_s * 0.3);
    let burst_len = Duration::from_secs_f64(span_s * 0.4);
    let period = Duration::from_secs_f64(span_s * 0.05); // 8 bursts per run

    let mut rows = Vec::new();
    let mut worst_report = None;
    for amplitude in [1u32, 2, 4, 8] {
        let scenario = Scenario::new(
            format!("fig10-x{amplitude}"),
            vec![
                LoadPhase::constant(steady, steady_len),
                LoadPhase::burst(
                    steady,
                    steady * f64::from(amplitude),
                    period,
                    0.5,
                    burst_len,
                ),
                LoadPhase::constant(steady, steady_len),
            ],
        )
        .with_classes(classes.clone());
        let report = execute_scenario(
            &app,
            class_factories(&interactive, &batch, 0x5EED),
            &scenario,
            HarnessMode::Simulated,
            1,
            0x5EED,
            Some(&model),
        )
        .expect("scenario run failed");
        assert_eq!(report.per_phase.len(), 3);
        assert_eq!(report.per_class.len(), 2);
        // Burst tails are only meaningful if the harness held its schedule: surface
        // pacing skew instead of silently reporting distorted amplification.  (Under
        // DES the virtual clock paces exactly and this never fires.)
        if let Some(warning) = report.pacing_warning(tailbench_scenario::PACING_WARN_THRESHOLD_NS) {
            eprintln!("fig10 {amplitude}x: {warning}");
        }
        rows.push(vec![
            format!("{amplitude}x"),
            format_latency(report.per_phase[0].sojourn.p99_ns as f64),
            format_latency(report.per_phase[1].sojourn.p99_ns as f64),
            format_latency(report.per_phase[2].sojourn.p99_ns as f64),
            format_latency(report.per_class[0].sojourn.p99_ns as f64),
            format_latency(report.per_class[1].sojourn.p99_ns as f64),
        ]);
        worst_report = Some(report);
    }

    print_table(
        "Fig. 10 — time-varying load: burst-amplitude sweep (masstree, 2 tenant classes)",
        &[
            "burst",
            "steady p99",
            "burst-phase p99",
            "recovery p99",
            "interactive p99",
            "batch p99",
        ],
        &rows,
    );
    if let Some(report) = worst_report {
        println!("\nBreakdown of the 8x run (per class, then per phase):\n");
        print!("{}", report.breakdown_markdown());
    }
    println!(
        "\nMean load alone hides the burst: the steady phases sit at 40% capacity, yet\n\
         the burst phase drives the p99 orders of magnitude up — the regime that fixed-\n\
         rate TailBench clients never exercise."
    );
}
