//! Fig. 12 (extension): the tail-mitigation policy suite head-to-head.
//!
//! One slow replica plus a bursty multi-tenant load is the canonical tail regime, and
//! the literature offers a menu of mitigations: hedged requests, tied requests,
//! load-aware replica selection (least-loaded and power-of-two-choices), and
//! deadline-based load shedding.  The `fig12` preset runs each of them — plus the
//! unmitigated baseline — over the *same* deterministic scenario: a 2-shard ×
//! 2-replica xapian broadcast cluster under the fig10 burst trace (interactive and
//! batch tenant classes, square-wave bursts mid-run) with one replica slowed 4× over
//! the middle window.  Every row resets all other policies to the baseline before
//! applying its own, so the p50/p95/p99 columns compare single policies directly.
//! Runs under the discrete-event simulated harness, so every row is deterministic.
//! Run `tailbench preset fig12` for the same result plus JSON output.

use tailbench_experiment::{presets, Experiment, Scale};

fn main() {
    let spec = presets::fig12(Scale::from_env());
    let output = Experiment::new(spec)
        .run()
        .expect("fig12 experiment failed");
    print!("{}", output.to_markdown());
    println!(
        "\nEvery mitigation attacks the same tail differently: hedges and tied requests\n\
         race a second replica, load-aware selectors route around the straggler, and\n\
         deadline shedding gives up on requests that would blow the SLO anyway.  The\n\
         baseline row shows the unmitigated burst-plus-straggler tail they all beat."
    );
}
