//! Regenerates Fig. 5: 95th-percentile latency vs offered QPS for every application
//! under the four measurement setups — networked, loopback, integrated (all real-time)
//! and simulated (discrete-event with the analytic cost model).  Also reports each
//! setup's saturation QPS so the networked-vs-integrated gap of the paper (silo, specjbb)
//! can be read off directly.

use tailbench_bench::{
    build_app, capacity_qps, format_latency, print_table, sweep_load, AppId, Scale,
};
use tailbench_core::config::HarnessMode;

/// Constructor for one harness configuration.
type ModeCtor = fn() -> HarnessMode;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 2_500);
    let fractions = [0.2, 0.5, 0.8];
    let modes: [(&str, ModeCtor); 4] = [
        ("networked", HarnessMode::networked),
        ("loopback", HarnessMode::loopback),
        ("integrated", || HarnessMode::Integrated),
        ("simulated", || HarnessMode::Simulated),
    ];

    for id in AppId::ALL {
        let bench = build_app(id, scale);
        let capacity = capacity_qps(&bench, 1, requests.min(800));
        let mut rows = Vec::new();
        for (mode_name, make_mode) in modes {
            let points = sweep_load(&bench, make_mode(), capacity, &fractions, 1, requests);
            // Estimate the saturation point as the highest offered load that still kept up.
            let sustained = points
                .iter()
                .filter(|(_, r)| !r.is_saturated(0.1))
                .map(|(_, r)| r.achieved_qps)
                .fold(0.0f64, f64::max);
            for (fraction, report) in &points {
                rows.push(vec![
                    mode_name.to_string(),
                    format!("{:.0}%", fraction * 100.0),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0)),
                    format_latency(report.sojourn.p95_ns as f64),
                    format!("{:.0}", sustained),
                ]);
            }
        }
        print_table(
            &format!("Fig. 5 — {} (p95 under the four setups)", id.name()),
            &["setup", "load", "offered QPS", "p95", "sustained QPS"],
            &rows,
        );
        eprintln!("fig5: finished {}", id.name());
    }
}
