//! Regenerates Fig. 5: 95th-percentile latency vs offered QPS for every application
//! under the four measurement setups — networked, loopback, integrated (all real-time)
//! and simulated (discrete-event with the analytic cost model).  Also reports each
//! setup's saturation QPS so the networked-vs-integrated gap of the paper (silo, specjbb)
//! can be read off directly.
//!
//! One `ExperimentSpec` per application: a mode × load-fraction sweep through the
//! unified experiment layer (the single-server capacity probe is shared across modes,
//! as the paper's load normalization requires).

use tailbench_bench::{format_latency, print_table, AppId, Scale};
use tailbench_experiment::{Experiment, ExperimentSpec, LoadSpec, ModeSpec, SweepAxis};

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 2_500);

    for id in AppId::ALL {
        let spec = ExperimentSpec::new(format!("fig5_{}", id.name()), id.name())
            .with_scale(scale)
            .with_requests(requests)
            .with_load(LoadSpec::FractionOfCapacity(0.5))
            .with_axis(SweepAxis::Mode(vec![
                ModeSpec::networked(),
                ModeSpec::loopback(),
                ModeSpec::Integrated,
                ModeSpec::Simulated,
            ]))
            .with_axis(SweepAxis::LoadFraction(vec![0.2, 0.5, 0.8]));
        let output = Experiment::new(spec).run().expect("fig5 experiment failed");

        let mut rows = Vec::new();
        for mode in ["networked", "loopback", "integrated", "simulated"] {
            let points: Vec<_> = output
                .points
                .iter()
                .filter(|p| p.coords.mode.name() == mode)
                .collect();
            // Estimate the saturation point as the highest offered load that still
            // kept up.
            let sustained = points
                .iter()
                .map(|p| p.report.headline())
                .filter(|r| !r.is_saturated(0.1))
                .map(|r| r.achieved_qps)
                .fold(0.0f64, f64::max);
            for point in points {
                let report = point.report.headline();
                rows.push(vec![
                    mode.to_string(),
                    format!("{:.0}%", point.coords.load_fraction.unwrap_or(0.0) * 100.0),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0)),
                    format_latency(report.sojourn.p95_ns as f64),
                    format!("{sustained:.0}"),
                ]);
            }
        }
        print_table(
            &format!("Fig. 5 — {} (p95 under the four setups)", id.name()),
            &["setup", "load", "offered QPS", "p95", "sustained QPS"],
            &rows,
        );
        eprintln!("fig5: finished {}", id.name());
    }
}
