//! Regenerates Table II: the configuration of the modelled experimental system.

use tailbench_bench::print_table;
use tailbench_simarch::MachineConfig;

fn main() {
    let rows: Vec<Vec<String>> = MachineConfig::table_ii()
        .describe()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print_table(
        "Table II — configuration of the modelled system",
        &["component", "configuration"],
        &rows,
    );
}
