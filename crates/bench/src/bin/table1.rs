//! Regenerates Table I: per-application cache/branch behaviour (MPKI, from the analytic
//! cache model over measured work profiles) and 95th-percentile latency at 20%, 50% and
//! 70% of the measured single-threaded capacity.
//!
//! The latency columns come from one load-fraction sweep per application through the
//! unified experiment layer; the MPKI columns still need direct work-profile sampling
//! (`aggregate_work_profile`), which the experiment reports do not carry.

use tailbench_bench::{
    aggregate_work_profile, build_app, format_latency, print_table, AppId, Scale,
};
use tailbench_experiment::{Experiment, ExperimentSpec, LoadSpec, SweepAxis};
use tailbench_simarch::CacheHierarchy;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(300, 3_000);
    let caches = CacheHierarchy::default();
    let mut rows = Vec::new();

    for id in AppId::ALL {
        let bench = build_app(id, scale);
        let profile = aggregate_work_profile(&bench, 40, 0xAB1E);
        let mpki = caches.miss_rates(&profile);

        let spec = ExperimentSpec::new(format!("table1_{}", id.name()), id.name())
            .with_scale(scale)
            .with_requests(requests)
            .with_load(LoadSpec::FractionOfCapacity(0.5))
            .with_axis(SweepAxis::LoadFraction(vec![0.2, 0.5, 0.7]));
        let output = Experiment::new(spec)
            .run()
            .expect("table1 experiment failed");
        let p95 =
            |i: usize| format_latency(output.points[i].report.headline().sojourn.p95_ns as f64);
        rows.push(vec![
            id.name().to_string(),
            format!("{:.2}", mpki.l1i_mpki),
            format!("{:.2}", mpki.l1d_mpki),
            format!("{:.2}", mpki.l2_mpki),
            format!("{:.2}", mpki.l3_mpki),
            p95(0),
            p95(1),
            p95(2),
        ]);
        eprintln!(
            "table1: finished {} (capacity ~{:.0} QPS)",
            id.name(),
            output.points[0].capacity_qps.unwrap_or(0.0)
        );
    }

    print_table(
        "Table I — application characteristics (modelled MPKI, measured 95th-percentile latency)",
        &[
            "app",
            "L1I MPKI",
            "L1D MPKI",
            "L2 MPKI",
            "L3 MPKI",
            "p95 @ 20% load",
            "p95 @ 50% load",
            "p95 @ 70% load",
        ],
        &rows,
    );
}
