//! Regenerates Table I: per-application cache/branch behaviour (MPKI, from the analytic
//! cache model over measured work profiles) and 95th-percentile latency at 20%, 50% and
//! 70% of the measured single-threaded capacity.

use tailbench_bench::{
    aggregate_work_profile, build_app, capacity_qps, format_latency, print_table, sweep_load,
    AppId, Scale,
};
use tailbench_core::config::HarnessMode;
use tailbench_simarch::CacheHierarchy;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(300, 3_000);
    let caches = CacheHierarchy::default();
    let mut rows = Vec::new();

    for id in AppId::ALL {
        let bench = build_app(id, scale);
        let profile = aggregate_work_profile(&bench, 40, 0xAB1E);
        let mpki = caches.miss_rates(&profile);
        let capacity = capacity_qps(&bench, 1, requests.min(1_000));
        let points = sweep_load(
            &bench,
            HarnessMode::Integrated,
            capacity,
            &[0.2, 0.5, 0.7],
            1,
            requests,
        );
        rows.push(vec![
            id.name().to_string(),
            format!("{:.2}", mpki.l1i_mpki),
            format!("{:.2}", mpki.l1d_mpki),
            format!("{:.2}", mpki.l2_mpki),
            format!("{:.2}", mpki.l3_mpki),
            format_latency(points[0].1.sojourn.p95_ns as f64),
            format_latency(points[1].1.sojourn.p95_ns as f64),
            format_latency(points[2].1.sojourn.p95_ns as f64),
        ]);
        eprintln!(
            "table1: finished {} (capacity ~{:.0} QPS)",
            id.name(),
            capacity
        );
    }

    print_table(
        "Table I — application characteristics (modelled MPKI, measured 95th-percentile latency)",
        &[
            "app",
            "L1I MPKI",
            "L1D MPKI",
            "L2 MPKI",
            "L3 MPKI",
            "p95 @ 20% load",
            "p95 @ 50% load",
            "p95 @ 70% load",
        ],
        &rows,
    );
}
