//! Methodology ablations (§II-B and §IV-C of the paper, argued there via Treadmill):
//!
//! 1. **Coordinated omission** — a closed-loop load generator at the same average
//!    throughput dramatically underestimates tail latency compared with the open-loop
//!    traffic shaper, because it stops issuing requests whenever the server is slow.
//! 2. **HDR-histogram precision** — the histogram used for long runs reports percentiles
//!    within its configured relative-error bound of the exact values.

use rand::Rng;
use tailbench_bench::{build_app, capacity_qps, format_latency, print_table, AppId, Scale};
use tailbench_core::config::BenchmarkConfig;
use tailbench_core::runner;
use tailbench_core::traffic::LoadMode;
use tailbench_histogram::HdrHistogram;
use tailbench_workloads::rng::seeded_rng;

fn main() {
    coordinated_omission();
    histogram_precision();
}

fn coordinated_omission() {
    let scale = Scale::from_env();
    let requests = scale.requests(400, 3_000);
    let bench = build_app(AppId::Xapian, scale);
    let capacity = capacity_qps(&bench, 1, 300);
    let qps = capacity * 0.8;

    // Open loop at 80% of capacity.
    let mut factory = bench.factory(1);
    let open = runner::execute(
        &bench.app,
        factory.as_mut(),
        &BenchmarkConfig::new(qps, requests).with_warmup(requests / 10),
        None,
    )
    .expect("open-loop run");

    // Closed loop with a think time chosen to target the same average rate.
    let think_ns = (1e9 / qps) as u64;
    let mut factory = bench.factory(1);
    let closed = runner::execute(
        &bench.app,
        factory.as_mut(),
        &BenchmarkConfig::new(qps, requests)
            .with_warmup(requests / 10)
            .with_load(LoadMode::Closed { think_ns }),
        None,
    )
    .expect("closed-loop run");

    let underestimate = open.sojourn.p95_ns as f64 / closed.sojourn.p95_ns.max(1) as f64;
    print_table(
        "Ablation — coordinated omission (xapian at ~80% load)",
        &["load generator", "achieved QPS", "p95", "p99"],
        &[
            vec![
                "open loop (TailBench)".into(),
                format!("{:.0}", open.achieved_qps),
                format_latency(open.sojourn.p95_ns as f64),
                format_latency(open.sojourn.p99_ns as f64),
            ],
            vec![
                "closed loop (conventional)".into(),
                format!("{:.0}", closed.achieved_qps),
                format_latency(closed.sojourn.p95_ns as f64),
                format_latency(closed.sojourn.p99_ns as f64),
            ],
        ],
    );
    println!("\nclosed-loop testing underestimates p95 by a factor of {underestimate:.1}x here");
}

fn histogram_precision() {
    let mut rng = seeded_rng(0x48, 0);
    let mut exact: Vec<u64> = Vec::new();
    let mut histogram = HdrHistogram::for_latencies();
    for _ in 0..200_000 {
        // Log-uniform latencies from 1 us to 10 s.
        let exponent: f64 = rng.gen_range(3.0..10.0);
        let v = 10f64.powf(exponent) as u64;
        exact.push(v);
        histogram.record(v);
    }
    exact.sort_unstable();
    let mut rows = Vec::new();
    for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let exact_value = exact[rank - 1];
        let approx = histogram.value_at_quantile(q);
        let err = (approx as f64 - exact_value as f64).abs() / exact_value as f64;
        rows.push(vec![
            format!("p{:.1}", q * 100.0),
            exact_value.to_string(),
            approx.to_string(),
            format!("{:.3}%", err * 100.0),
        ]);
    }
    print_table(
        "Ablation — HDR histogram precision (log-uniform latencies, 1 µs – 10 s)",
        &["quantile", "exact (ns)", "histogram (ns)", "relative error"],
        &rows,
    );
    println!(
        "\nhistogram slots: {} (logarithmic in the tracked range), configured max error {:.1}%",
        histogram.bucket_slots(),
        histogram.max_relative_error() * 100.0
    );
}
