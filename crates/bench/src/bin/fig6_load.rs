//! Regenerates Fig. 6: 95th-percentile latency as a function of *system load* (offered
//! QPS divided by each setup's own capacity) rather than absolute QPS, for shore and
//! img-dnn — the two applications with the largest simulation speed error.  Plotted
//! against load, the real and simulated latency profiles nearly coincide.
//!
//! A thin shim over the `fig6` preset of the unified experiment layer — run
//! `tailbench preset fig6` for the same result plus JSON output.

use tailbench_experiment::{presets, Experiment, Scale};

fn main() {
    let spec = presets::fig6(Scale::from_env());
    let output = Experiment::new(spec).run().expect("fig6 experiment failed");
    print!("{}", output.to_markdown());
}
