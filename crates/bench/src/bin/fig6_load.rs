//! Regenerates Fig. 6: 95th-percentile latency as a function of *system load* (offered
//! QPS divided by each setup's own capacity) rather than absolute QPS, for shore and
//! img-dnn — the two applications with the largest simulation speed error.  Plotted
//! against load, the real and simulated latency profiles nearly coincide.

use tailbench_bench::{
    build_app, capacity_qps, format_latency, print_table, sweep_load, AppId, Scale,
};
use tailbench_core::config::HarnessMode;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 2_500);
    let fractions = [0.2, 0.4, 0.6, 0.8];

    for id in [AppId::Shore, AppId::ImgDnn] {
        let bench = build_app(id, scale);
        let capacity = capacity_qps(&bench, 1, requests.min(600));
        let mut rows = Vec::new();
        for (mode_name, mode) in [
            ("integrated", HarnessMode::Integrated),
            ("simulated", HarnessMode::Simulated),
        ] {
            let points = sweep_load(&bench, mode, capacity, &fractions, 1, requests);
            for (fraction, report) in points {
                rows.push(vec![
                    mode_name.to_string(),
                    format!("{:.2}", fraction),
                    format_latency(report.sojourn.p95_ns as f64),
                ]);
            }
        }
        print_table(
            &format!("Fig. 6 — {} (p95 vs load)", id.name()),
            &["setup", "load", "p95"],
            &rows,
        );
    }
}
