//! Fig. 11 (extension): hedged requests versus the fan-out tail.
//!
//! A partition-aggregate query waits for its slowest leaf, so one straggling replica
//! drags the end-to-end p99 up ("The Tail at Scale").  The classic mitigation is the
//! *hedged request*: if a leg has not responded within a trigger delay, reissue it to
//! another replica and take the first response.  The `fig11` preset runs a 4-shard ×
//! 2-replica xapian search cluster under broadcast fan-out, with one replica slowed 4x
//! for the middle third of the run (a deterministic slow-shard fault window in the
//! spec), and sweeps the hedge trigger across percentiles of the unhedged
//! leg-latency distribution — the percentile → delay resolution against a cached
//! unhedged baseline is part of the experiment machinery.  Runs under the
//! discrete-event simulated harness, so every row is deterministic.  Run
//! `tailbench preset fig11` for the same result plus JSON output.

use tailbench_experiment::{presets, Experiment, Scale};

fn main() {
    let spec = presets::fig11(Scale::from_env());
    let output = Experiment::new(spec)
        .run()
        .expect("fig11 experiment failed");
    print!("{}", output.to_markdown());
    println!(
        "\nAggressive triggers (p50) duplicate a large share of legs to shave the tail;\n\
         conservative ones (p99) hedge only true stragglers.  The sweet spot — big p99\n\
         relief for a few percent extra load — is the \"hedge at the 95th percentile\"\n\
         rule of thumb from the tail-at-scale literature."
    );
}
