//! Fig. 11 (extension): hedged requests versus the fan-out tail.
//!
//! A partition-aggregate query waits for its slowest leaf, so one straggling replica
//! drags the end-to-end p99 up ("The Tail at Scale").  The classic mitigation is the
//! *hedged request*: if a leg has not responded within a trigger delay, reissue it to
//! another replica and take the first response.  This binary runs a 4-shard × 2-replica
//! xapian search cluster under broadcast fan-out, with one replica slowed 4x for the
//! middle third of the run (a deterministic slow-shard fault), and sweeps the hedge
//! trigger across percentiles of the unhedged leg-latency distribution.  Low triggers
//! hedge aggressively (more rescue, more duplicated work); high triggers hedge rarely.
//! Runs under the discrete-event simulated harness, so every row is deterministic.

use std::time::Duration;
use tailbench_bench::{build_replicated_search_cluster, format_latency, print_table, Scale};
use tailbench_core::config::{ClusterConfig, FanoutPolicy, HarnessMode, HedgePolicy};
use tailbench_core::interference::InterferencePlan;
use tailbench_core::report::ClusterReport;
use tailbench_core::HarnessError;
use tailbench_scenario::{run_cluster_scenario, LoadPhase, Scenario};
use tailbench_simarch::SystemModel;

const SHARDS: usize = 4;
const REPLICATION: usize = 2;

fn run_point(
    cluster_app: &tailbench_bench::SearchCluster,
    qps: f64,
    span: Duration,
    hedge: Option<HedgePolicy>,
    slow_window: Option<(u64, u64)>,
) -> Result<ClusterReport, HarnessError> {
    let mut scenario = Scenario::new("fig11", vec![LoadPhase::constant(qps, span)]);
    if let Some((start_ns, end_ns)) = slow_window {
        // Replica 1 of shard 0 (instance 1) runs 4x slower inside the window.
        scenario = scenario
            .with_interference(InterferencePlan::none().slow_instance(1, start_ns, end_ns, 4.0));
    }
    if let Some(policy) = hedge {
        scenario = scenario.with_hedge(policy);
    }
    let cluster = ClusterConfig::new(SHARDS, FanoutPolicy::Broadcast).with_replication(REPLICATION);
    let model = SystemModel::default();
    run_cluster_scenario(
        &cluster_app.leaves,
        vec![cluster_app.factory(0x5EED)],
        &scenario,
        &cluster,
        HarnessMode::Simulated,
        1,
        0x5EED,
        Some(&model),
    )
}

fn main() {
    let scale = Scale::from_env();
    let budget = scale.requests(2_000, 12_000);
    let cluster_app = build_replicated_search_cluster(SHARDS, REPLICATION, scale);

    // Probe the per-leaf simulated capacity at trivial load; each instance serves half
    // its shard's broadcast legs (2 replicas), so the cluster sustains ~2x one leaf.
    let probe = run_point(&cluster_app, 200.0, Duration::from_millis(500), None, None)
        .expect("probe run failed");
    let service_mean = probe
        .per_shard
        .iter()
        .map(|s| s.service.mean_ns)
        .sum::<f64>()
        / probe.per_shard.len().max(1) as f64;
    let qps = (0.7 * 2.0 * 1e9 / service_mean.max(1.0)).max(100.0);
    let span = Duration::from_secs_f64(budget as f64 / qps);
    let span_ns = span.as_nanos() as u64;
    let slow_window = Some((span_ns / 3, 2 * span_ns / 3));

    let unhedged = run_point(&cluster_app, qps, span, None, slow_window).expect("unhedged run");
    let legs = unhedged.shard_union_sojourn;

    let mut rows = vec![vec![
        "none".to_string(),
        "-".to_string(),
        format_latency(unhedged.cluster.sojourn.p99_ns as f64),
        format_latency(unhedged.cluster.sojourn.p50_ns as f64),
        "0".to_string(),
        "0".to_string(),
    ]];
    for (label, trigger_ns) in [
        ("p50", legs.p50_ns),
        ("p90", legs.p90_ns),
        ("p95", legs.p95_ns),
        ("p99", legs.p99_ns),
    ] {
        let hedged = run_point(
            &cluster_app,
            qps,
            span,
            Some(HedgePolicy::after_ns(trigger_ns.max(1))),
            slow_window,
        )
        .expect("hedged run");
        let stats = hedged.hedge.expect("hedged run must report hedge stats");
        rows.push(vec![
            label.to_string(),
            format_latency(trigger_ns as f64),
            format_latency(hedged.cluster.sojourn.p99_ns as f64),
            format_latency(hedged.cluster.sojourn.p50_ns as f64),
            stats.issued.to_string(),
            stats.wins.to_string(),
        ]);
    }

    print_table(
        &format!(
            "Fig. 11 — hedged requests ({SHARDS} shards x {REPLICATION} replicas, broadcast, \
             one replica 4x slow mid-run)"
        ),
        &[
            "trigger",
            "delay",
            "cluster p99",
            "cluster p50",
            "hedges",
            "wins",
        ],
        &rows,
    );
    println!(
        "\nAggressive triggers (p50) duplicate a large share of legs to shave the tail;\n\
         conservative ones (p99) hedge only true stragglers.  The sweet spot — big p99\n\
         relief for a few percent extra load — is the \"hedge at the 95th percentile\"\n\
         rule of thumb from the tail-at-scale literature."
    );
}
