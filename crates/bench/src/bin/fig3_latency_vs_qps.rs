//! Regenerates Fig. 3: mean, 95th- and 99th-percentile sojourn latency as a function of
//! the offered request rate, with a single worker thread, for every application.

use tailbench_bench::{
    build_app, capacity_qps, format_latency, print_table, sweep_load, AppId, Scale,
};
use tailbench_core::config::HarnessMode;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(250, 3_000);
    let fractions = [0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9];

    for id in AppId::ALL {
        let bench = build_app(id, scale);
        let capacity = capacity_qps(&bench, 1, requests.min(800));
        let points = sweep_load(
            &bench,
            HarnessMode::Integrated,
            capacity,
            &fractions,
            1,
            requests,
        );
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|(fraction, report)| {
                vec![
                    format!("{:.0}%", fraction * 100.0),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0)),
                    format!("{:.0}", report.achieved_qps),
                    format_latency(report.sojourn.mean_ns),
                    format_latency(report.sojourn.p95_ns as f64),
                    format_latency(report.sojourn.p99_ns as f64),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 3 — {} (1 thread, capacity ~{:.0} QPS)",
                id.name(),
                capacity
            ),
            &["load", "offered QPS", "achieved QPS", "mean", "p95", "p99"],
            &rows,
        );
    }
}
