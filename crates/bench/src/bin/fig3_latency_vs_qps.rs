//! Regenerates Fig. 3: mean, 95th- and 99th-percentile sojourn latency as a function of
//! the offered request rate, with a single worker thread, for every application.
//!
//! A thin shim over the `fig3` preset of the unified experiment layer: the whole sweep
//! (app axis × load-fraction axis, capacity probing, table rendering) is one
//! `ExperimentSpec` — run `tailbench preset fig3` for the same result plus JSON output.

use tailbench_experiment::{presets, Experiment, Scale};

fn main() {
    let spec = presets::fig3(Scale::from_env());
    let output = Experiment::new(spec).run().expect("fig3 experiment failed");
    print!("{}", output.to_markdown());
}
