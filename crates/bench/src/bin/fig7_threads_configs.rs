//! Regenerates Fig. 7: 95th-percentile latency vs per-thread QPS with four worker
//! threads, for specjbb, masstree, xapian and img-dnn, under all four measurement setups.

use tailbench_bench::{
    build_app, capacity_qps, format_latency, print_table, sweep_load, AppId, Scale,
};
use tailbench_core::config::HarnessMode;

/// Constructor for one harness configuration.
type ModeCtor = fn() -> HarnessMode;

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(300, 3_000);
    let fractions = [0.3, 0.6, 0.85];
    let threads = 4usize;
    let apps = [
        AppId::SpecJbb,
        AppId::Masstree,
        AppId::Xapian,
        AppId::ImgDnn,
    ];
    let modes: [(&str, ModeCtor); 4] = [
        ("networked", HarnessMode::networked),
        ("loopback", HarnessMode::loopback),
        ("integrated", || HarnessMode::Integrated),
        ("simulated", || HarnessMode::Simulated),
    ];

    for id in apps {
        let bench = build_app(id, scale);
        let capacity = capacity_qps(&bench, threads, requests.min(1_000));
        let mut rows = Vec::new();
        for (mode_name, make_mode) in modes {
            let points = sweep_load(&bench, make_mode(), capacity, &fractions, threads, requests);
            for (fraction, report) in points {
                rows.push(vec![
                    mode_name.to_string(),
                    format!("{:.0}%", fraction * 100.0),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0) / threads as f64),
                    format_latency(report.sojourn.p95_ns as f64),
                ]);
            }
        }
        print_table(
            &format!("Fig. 7 — {} (4 threads, p95 vs QPS/thread)", id.name()),
            &["setup", "load", "QPS / thread", "p95"],
            &rows,
        );
        eprintln!("fig7: finished {}", id.name());
    }
}
