//! Regenerates Fig. 7: 95th-percentile latency vs per-thread QPS with four worker
//! threads, for specjbb, masstree, xapian and img-dnn, under all four measurement setups.
//!
//! One `ExperimentSpec` per application: a mode × load-fraction sweep at four worker
//! threads through the unified experiment layer.

use tailbench_bench::{format_latency, print_table, AppId, Scale};
use tailbench_experiment::{Experiment, ExperimentSpec, LoadSpec, ModeSpec, SweepAxis};

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(300, 3_000);
    let threads = 4usize;
    let apps = [
        AppId::SpecJbb,
        AppId::Masstree,
        AppId::Xapian,
        AppId::ImgDnn,
    ];

    for id in apps {
        let spec = ExperimentSpec::new(format!("fig7_{}", id.name()), id.name())
            .with_scale(scale)
            .with_requests(requests)
            .with_threads(threads)
            .with_load(LoadSpec::FractionOfCapacity(0.5))
            .with_axis(SweepAxis::Mode(vec![
                ModeSpec::networked(),
                ModeSpec::loopback(),
                ModeSpec::Integrated,
                ModeSpec::Simulated,
            ]))
            .with_axis(SweepAxis::LoadFraction(vec![0.3, 0.6, 0.85]));
        let output = Experiment::new(spec).run().expect("fig7 experiment failed");

        let rows: Vec<Vec<String>> = output
            .points
            .iter()
            .map(|point| {
                let report = point.report.headline();
                vec![
                    point.coords.mode.name().to_string(),
                    format!("{:.0}%", point.coords.load_fraction.unwrap_or(0.0) * 100.0),
                    format!("{:.0}", report.offered_qps.unwrap_or(0.0) / threads as f64),
                    format_latency(report.sojourn.p95_ns as f64),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 7 — {} (4 threads, p95 vs QPS/thread)", id.name()),
            &["setup", "load", "QPS / thread", "p95"],
            &rows,
        );
        eprintln!("fig7: finished {}", id.name());
    }
}
