//! Regenerates Fig. 8 (the case study of §VII): for moses and silo, compares the
//! 95th-percentile latency predicted by an M/G/n queueing model (no threading overhead)
//! against a discrete-event simulation with an **idealized memory system**, with 1 and 4
//! threads.  Each series is normalized to its own single-threaded low-load value and
//! plotted against load (fraction of the single-threaded capacity per thread), exactly as
//! the paper normalizes both axes.
//!
//! The expected shapes: for moses the idealized-memory simulation tracks the M/G/4 model
//! (its real-system degradation is memory contention, which idealizing removes); for silo
//! the idealized-memory simulation blows up well before the M/G/4 model does (its
//! degradation is synchronization, which an ideal memory system cannot fix).

use tailbench_bench::{
    build_app, capacity_qps, measure_service_samples, print_table, AppId, Scale,
};
use tailbench_core::config::{BenchmarkConfig, HarnessMode};
use tailbench_core::runner;
use tailbench_queueing::{EmpiricalDistribution, MgkSimulation};
use tailbench_simarch::{MachineConfig, SystemModel};

fn main() {
    let scale = Scale::from_env();
    let requests = scale.requests(400, 4_000);
    let fractions = [0.2, 0.4, 0.6, 0.8];

    for id in [AppId::Moses, AppId::Silo] {
        let bench = build_app(id, scale);
        let ideal = SystemModel::idealized_memory(MachineConfig::default());

        // --- Queueing-model series (time base: measured wall-clock service times) -----
        let measured_capacity = capacity_qps(&bench, 1, requests.min(800));
        let service_samples = measure_service_samples(&bench, requests.min(800), 0xF168);
        let service = EmpiricalDistribution::new(service_samples);
        let model_norm = MgkSimulation::new(service.clone(), 1)
            .run(measured_capacity * fractions[0], 50_000, 1)
            .p95_ns() as f64;

        // --- Idealized-memory simulation series (time base: cost-model service times) --
        let sim_run = |threads: usize, per_thread_qps: f64| {
            let config = BenchmarkConfig::new(per_thread_qps * threads as f64, requests)
                .with_mode(HarnessMode::Simulated)
                .with_threads(threads)
                .with_warmup(requests / 10)
                .with_seed(0xF1_68 + threads as u64);
            let mut factory = bench.factory(0xF1_68);
            runner::execute(&bench.app, factory.as_mut(), &config, Some(&ideal))
                .expect("simulated run")
        };
        // Simulated single-thread capacity, from the cost-model mean service time.
        let probe = sim_run(1, measured_capacity * 0.1);
        let sim_capacity = 1e9 / probe.service.mean_ns.max(1.0);
        let sim_norm = sim_run(1, sim_capacity * fractions[0]).sojourn.p95_ns as f64;

        let mut rows = Vec::new();
        for threads in [1usize, 4] {
            let model = MgkSimulation::new(service.clone(), threads);
            for &fraction in &fractions {
                let model_p95 = model
                    .run(measured_capacity * fraction * threads as f64, 50_000, 7)
                    .p95_ns() as f64;
                let sim_p95 = sim_run(threads, sim_capacity * fraction).sojourn.p95_ns as f64;
                rows.push(vec![
                    format!("{:.0}%", fraction * 100.0),
                    format!("{threads}"),
                    format!("{:.2}", model_p95 / model_norm),
                    format!("{:.2}", sim_p95 / sim_norm),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig. 8 — {} (p95 normalized to the 1-thread 20%-load value of each series)",
                id.name()
            ),
            &[
                "load / thread",
                "threads",
                "M/G/n model (norm. p95)",
                "idealized-memory simulation (norm. p95)",
            ],
            &rows,
        );
        eprintln!("fig8: finished {}", id.name());
    }
}
