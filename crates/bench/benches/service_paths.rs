//! Criterion microbenchmarks of every application's request-service path.
//!
//! These are the per-request costs that determine each application's position on the
//! paper's latency spectrum (Table I): masstree and specjbb in the microsecond range,
//! xapian/moses/img-dnn in the millisecond range, sphinx far above everything else.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tailbench_bench::{build_app, AppId, Scale};

fn bench_service_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for id in AppId::ALL {
        let bench = build_app(id, Scale::Quick);
        let mut factory = bench.factory(1);
        // Pre-generate a pool of request payloads so generation cost is excluded.
        let payloads: Vec<Vec<u8>> = (0..64).map(|_| factory.next_request()).collect();
        let mut i = 0usize;
        group.bench_function(id.name(), |b| {
            b.iter(|| {
                let payload = &payloads[i % payloads.len()];
                i += 1;
                std::hint::black_box(bench.app.handle(payload))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_paths);
criterion_main!(benches);
