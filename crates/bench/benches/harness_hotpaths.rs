//! Criterion microbenchmarks of the harness' hot paths: latency recording, queue
//! handoff, arrival-schedule generation and the discrete-event simulation loop.  These
//! are the overheads the harness adds on top of application work; they must stay small
//! relative to even the shortest (masstree-class) requests.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tailbench_core::app::{EchoApp, InstructionRateModel, ServerApp};
use tailbench_core::collector::StatsCollector;
use tailbench_core::config::BenchmarkConfig;
use tailbench_core::pool::BufferPool;
use tailbench_core::queue::{AdmissionPolicy, Completion, RequestQueue};
use tailbench_core::request::{Request, RequestId, RequestRecord};
use tailbench_core::sim::run_simulated;
use tailbench_histogram::HdrHistogram;
use tailbench_workloads::interarrival::InterarrivalProcess;
use tailbench_workloads::rng::seeded_rng;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("harness");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group
}

fn bench_harness(c: &mut Criterion) {
    let mut group = configure(c);

    group.bench_function("histogram_record", |b| {
        let mut histogram = HdrHistogram::for_latencies();
        let mut value = 1u64;
        b.iter(|| {
            value = value.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000_000;
            histogram.record(std::hint::black_box(value));
        });
    });

    group.bench_function("histogram_p99_query", |b| {
        let mut histogram = HdrHistogram::for_latencies();
        let mut rng = seeded_rng(1, 0);
        let process = InterarrivalProcess::poisson(1_000.0);
        for _ in 0..100_000 {
            histogram.record(process.next_gap_ns(&mut rng));
        }
        b.iter(|| std::hint::black_box(histogram.value_at_quantile(0.99)));
    });

    group.bench_function("queue_push_pop", |b| {
        let queue = RequestQueue::new();
        let rx = queue.receiver();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            queue.push(
                Request {
                    id: RequestId(id),
                    payload: Vec::new(),
                    issued_ns: id,
                },
                id,
                Completion::Inline,
            );
            std::hint::black_box(rx.recv().unwrap());
        });
    });

    group.bench_function("bounded_queue_push_pop", |b| {
        let queue = RequestQueue::with_policy(AdmissionPolicy::Drop { capacity: 1024 });
        let rx = queue.receiver();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            queue.push(
                Request {
                    id: RequestId(id),
                    payload: Vec::new(),
                    issued_ns: id,
                },
                id,
                Completion::Inline,
            );
            std::hint::black_box(rx.recv().unwrap());
        });
    });

    group.bench_function("collector_shard_record", |b| {
        // The integrated hot path's statistics cost: one record into a worker's own
        // shard (versus the old cross-thread channel send to a collector thread).
        let mut shard = StatsCollector::new(0);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let issued = id * 1_000;
            shard.record(std::hint::black_box(&RequestRecord {
                id: RequestId(id),
                issued_ns: issued,
                enqueued_ns: issued + 50,
                started_ns: issued + 500,
                completed_ns: issued + 50_000,
                client_received_ns: issued + 50_100,
            }));
        });
    });

    group.bench_function("collector_shard_merge_16", |b| {
        // Merge cost is paid once per run, off the hot path — it just has to be sane.
        let mut shards: Vec<StatsCollector> = (0..16).map(|_| StatsCollector::new(0)).collect();
        for (s, shard) in shards.iter_mut().enumerate() {
            for i in 0..10_000u64 {
                let issued = i * 1_000;
                shard.record(&RequestRecord {
                    id: RequestId(i),
                    issued_ns: issued,
                    enqueued_ns: issued + s as u64,
                    started_ns: issued + 500,
                    completed_ns: issued + 50_000,
                    client_received_ns: issued + 50_100,
                });
            }
        }
        b.iter(|| {
            let mut merged = StatsCollector::new(0);
            for shard in &shards {
                merged.merge(shard);
            }
            std::hint::black_box(merged.measured())
        });
    });

    group.bench_function("buffer_pool_take_recycle", |b| {
        let pool = BufferPool::default();
        pool.recycle(Vec::with_capacity(256));
        b.iter(|| {
            let mut buf = pool.take(256);
            buf.extend_from_slice(std::hint::black_box(&[0u8; 64]));
            pool.recycle(buf);
        });
    });

    group.bench_function("poisson_schedule_10k", |b| {
        let process = InterarrivalProcess::poisson(100_000.0);
        let mut rng = seeded_rng(2, 0);
        b.iter(|| std::hint::black_box(process.schedule(&mut rng, 10_000)));
    });

    group.bench_function("des_run_2k_requests", |b| {
        let app: std::sync::Arc<dyn ServerApp> = std::sync::Arc::new(EchoApp { spin_iters: 64 });
        let model = InstructionRateModel::default();
        b.iter(|| {
            let mut factory = || vec![0u8; 16];
            let config = BenchmarkConfig::new(50_000.0, 2_000)
                .with_warmup(0)
                .with_seed(3);
            std::hint::black_box(run_simulated(&app, &mut factory, &config, &model))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
