//! The xapian substitute: a full-text search engine leaf node.
//!
//! TailBench configures xapian as a web-search leaf node over an English Wikipedia index
//! with Zipfian query popularity (paper §III).  This crate implements the equivalent
//! pipeline from scratch:
//!
//! * [`index`] — an inverted index with BM25 ranking and bounded top-k retrieval;
//! * [`service`] — the harness adapter ([`XapianApp`]) and the Zipfian query factory.
//!
//! # Example
//!
//! ```
//! use tailbench_search::index::InvertedIndex;
//! use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(CorpusConfig::small());
//! let index = InvertedIndex::build(&corpus);
//! let (hits, _scanned) = index.search(&[0, 1], 10);
//! assert!(!hits.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod service;

pub use index::{merge_top_k, Bm25Params, InvertedIndex, SearchHit};
pub use service::{SearchRequestFactory, XapianApp, DEFAULT_TOP_K};
