//! Inverted index and BM25 ranking.
//!
//! xapian is a probabilistic search engine; a leaf node's work per query is dominated by
//! walking the postings lists of the query terms and scoring candidate documents.  This
//! module implements that core: an inverted index with per-term postings (document id +
//! term frequency), BM25 scoring, and top-k retrieval with a bounded heap.  Query cost is
//! proportional to the summed postings length of the query terms, which — with Zipfian
//! term popularity — produces the wide, heavy-tailed service-time distribution the paper
//! reports for xapian (Fig. 2).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tailbench_workloads::text::SyntheticCorpus;

/// One posting: a document that contains a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document identifier.
    pub doc_id: u32,
    /// Number of occurrences of the term in that document.
    pub term_freq: u32,
}

/// A scored search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document identifier.
    pub doc_id: u32,
    /// BM25 relevance score.
    pub score: f32,
}

impl Eq for SearchHit {}

impl Ord for SearchHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order by score; ties broken by doc id for determinism.  NaN never occurs
        // because BM25 scores are finite.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.doc_id.cmp(&other.doc_id))
    }
}

impl PartialOrd for SearchHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation parameter (typically 1.2).
    pub k1: f32,
    /// Length-normalization parameter (typically 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index over a term-id corpus.
///
/// An index can cover the whole corpus or a document partition of it (a *leaf* in the
/// partition-aggregate pattern, built with [`InvertedIndex::build_partition`]): leaves
/// keep global document ids, so the root can merge per-leaf top-k lists directly.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: Vec<Vec<Posting>>,
    doc_lengths: Vec<u32>,
    owned_documents: usize,
    avg_doc_length: f32,
    params: Bm25Params,
}

impl InvertedIndex {
    /// Builds the index from a synthetic corpus.
    #[must_use]
    pub fn build(corpus: &SyntheticCorpus) -> Self {
        Self::build_with_params(corpus, Bm25Params::default())
    }

    /// Builds the index with explicit BM25 parameters.
    #[must_use]
    pub fn build_with_params(corpus: &SyntheticCorpus, params: Bm25Params) -> Self {
        Self::build_filtered(corpus, params, |_| true)
    }

    /// Builds a leaf index over the documents of partition `shard` of `shards`
    /// (documents are assigned round-robin by id: `doc_id % shards == shard`).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards` or `shards == 0`.
    #[must_use]
    pub fn build_partition(corpus: &SyntheticCorpus, shard: usize, shards: usize) -> Self {
        assert!(shards > 0 && shard < shards, "shard {shard} of {shards}");
        Self::build_filtered(corpus, Bm25Params::default(), |doc_id| {
            doc_id as usize % shards == shard
        })
    }

    fn build_filtered(
        corpus: &SyntheticCorpus,
        params: Bm25Params,
        owns: impl Fn(u32) -> bool,
    ) -> Self {
        let vocab = corpus.config().vocabulary;
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); vocab];
        // Lengths are kept for every document (indexed by global id) so owned postings
        // can be scored without remapping ids; only owned documents get postings.
        let mut doc_lengths = Vec::with_capacity(corpus.documents().len());
        let mut owned_documents = 0usize;
        let mut owned_len = 0u64;
        for doc in corpus.documents() {
            doc_lengths.push(doc.terms.len() as u32);
            if !owns(doc.id) {
                continue;
            }
            owned_documents += 1;
            owned_len += doc.terms.len() as u64;
            // Count term frequencies within the document.
            let mut sorted = doc.terms.clone();
            sorted.sort_unstable();
            let mut i = 0;
            while i < sorted.len() {
                let term = sorted[i];
                let mut j = i;
                while j < sorted.len() && sorted[j] == term {
                    j += 1;
                }
                postings[term as usize].push(Posting {
                    doc_id: doc.id,
                    term_freq: (j - i) as u32,
                });
                i = j;
            }
        }
        let avg_doc_length = if owned_documents == 0 {
            1.0
        } else {
            owned_len as f32 / owned_documents as f32
        };
        InvertedIndex {
            postings,
            doc_lengths,
            owned_documents,
            avg_doc_length,
            params,
        }
    }

    /// Number of indexed (owned) documents.
    #[must_use]
    pub fn num_documents(&self) -> usize {
        self.owned_documents
    }

    /// Number of distinct terms with at least one posting.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Length of a term's postings list (0 for unknown terms).
    #[must_use]
    pub fn postings_len(&self, term: u32) -> usize {
        self.postings.get(term as usize).map_or(0, Vec::len)
    }

    /// BM25 inverse document frequency of a term.
    #[must_use]
    pub fn idf(&self, term: u32) -> f32 {
        let n = self.num_documents() as f32;
        let df = self.postings_len(term) as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Evaluates a disjunctive (OR) query and returns the top `k` documents by BM25
    /// score, in descending score order.  Also returns the number of postings scanned,
    /// which the service layer uses for its work profile.
    #[must_use]
    pub fn search(&self, terms: &[u32], k: usize) -> (Vec<SearchHit>, usize) {
        use std::collections::HashMap;
        // No query can return more hits than there are documents.
        let k = k.min(self.num_documents());
        let mut scores: HashMap<u32, f32> = HashMap::new();
        let mut scanned = 0usize;
        for &term in terms {
            let Some(postings) = self.postings.get(term as usize) else {
                continue;
            };
            let idf = self.idf(term);
            for posting in postings {
                scanned += 1;
                let dl = self.doc_lengths[posting.doc_id as usize] as f32;
                let tf = posting.term_freq as f32;
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * dl / self.avg_doc_length);
                let score = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(posting.doc_id).or_insert(0.0) += score;
            }
        }
        // Bounded top-k selection with a max-heap over `SearchHit`'s reverse ordering.
        let mut heap: BinaryHeap<SearchHit> = BinaryHeap::with_capacity((k + 1).min(4_096));
        for (doc_id, score) in scores {
            heap.push(SearchHit { doc_id, score });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap.into_vec();
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
        (hits, scanned)
    }
}

/// Root-side aggregation of the partition-aggregate pattern: merges per-leaf top-k
/// lists into the global top `k`, ordered by descending score (ties broken by document
/// id for determinism).
///
/// Document partitions are disjoint, so each document appears in at most one leaf list
/// and the merge is exact *with respect to the per-leaf scores*.  As in real
/// distributed search, each leaf scores with its own collection statistics (local idf
/// and average document length), so cross-leaf score comparisons — and therefore the
/// merged ranking — can deviate slightly from a single index over the whole corpus.
#[must_use]
pub fn merge_top_k(leaf_hits: &[Vec<SearchHit>], k: usize) -> Vec<SearchHit> {
    let mut all: Vec<SearchHit> = leaf_hits.iter().flatten().copied().collect();
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.doc_id.cmp(&b.doc_id))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};

    fn index() -> (SyntheticCorpus, InvertedIndex) {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let index = InvertedIndex::build(&corpus);
        (corpus, index)
    }

    #[test]
    fn index_covers_all_documents() {
        let (corpus, index) = index();
        assert_eq!(index.num_documents(), corpus.documents().len());
        assert!(index.num_terms() > 100);
    }

    #[test]
    fn popular_terms_have_long_postings() {
        let (_, index) = index();
        // Term 0 is the most popular under the Zipfian vocabulary.
        assert!(index.postings_len(0) > index.postings_len(1_500));
        assert_eq!(index.postings_len(u32::MAX), 0);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let (_, index) = index();
        assert!(index.idf(0) < index.idf(1_500));
    }

    #[test]
    fn search_returns_sorted_top_k() {
        let (_, index) = index();
        let (hits, scanned) = index.search(&[0, 1, 2], 10);
        assert!(hits.len() <= 10);
        assert!(!hits.is_empty());
        assert!(scanned > 0);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn search_for_unknown_terms_is_empty() {
        let (_, index) = index();
        let (hits, scanned) = index.search(&[4_000_000], 10);
        assert!(hits.is_empty());
        assert_eq!(scanned, 0);
    }

    #[test]
    fn documents_containing_query_terms_rank_above_random_ones() {
        let (corpus, index) = index();
        // Pick a moderately rare term and verify the top hit actually contains it.
        let term = (corpus.config().vocabulary / 2) as u32;
        if index.postings_len(term) == 0 {
            return; // extremely rare in the small corpus; nothing to verify
        }
        let (hits, _) = index.search(&[term], 5);
        let top = hits[0].doc_id;
        assert!(corpus.documents()[top as usize].terms.contains(&term));
    }

    #[test]
    fn partitions_are_disjoint_and_cover_the_corpus() {
        let (corpus, full) = index();
        let shards = 4;
        let leaves: Vec<InvertedIndex> = (0..shards)
            .map(|s| InvertedIndex::build_partition(&corpus, s, shards))
            .collect();
        let total: usize = leaves.iter().map(InvertedIndex::num_documents).sum();
        assert_eq!(total, full.num_documents());
        // Every leaf owns a strict subset, and a popular term's postings split across
        // leaves without loss.
        let full_postings = full.postings_len(0);
        let leaf_postings: usize = leaves.iter().map(|l| l.postings_len(0)).sum();
        assert_eq!(leaf_postings, full_postings);
        for (s, leaf) in leaves.iter().enumerate() {
            assert!(leaf.num_documents() < full.num_documents());
            // Leaves keep global document ids from their own partition only.
            let (hits, _) = leaf.search(&[0, 1, 2], 50);
            for hit in hits {
                assert_eq!(hit.doc_id as usize % shards, s);
            }
        }
    }

    #[test]
    fn merged_leaf_topk_matches_document_coverage() {
        let (corpus, full) = index();
        let shards = 4;
        let leaves: Vec<InvertedIndex> = (0..shards)
            .map(|s| InvertedIndex::build_partition(&corpus, s, shards))
            .collect();
        let terms = [0u32, 1, 2];
        let k = 10;
        let per_leaf: Vec<Vec<SearchHit>> = leaves.iter().map(|l| l.search(&terms, k).0).collect();
        let merged = merge_top_k(&per_leaf, k);
        assert_eq!(merged.len(), k.min(per_leaf.iter().map(Vec::len).sum()));
        // Sorted by descending score with deterministic ties.
        assert!(merged
            .windows(2)
            .all(|w| w[0].score > w[1].score
                || (w[0].score == w[1].score && w[0].doc_id < w[1].doc_id)));
        // Each merged hit exists in the full index's candidate set for those terms.
        let (full_hits, _) = full.search(&terms, full.num_documents());
        for hit in &merged {
            assert!(full_hits.iter().any(|f| f.doc_id == hit.doc_id));
        }
    }

    #[test]
    fn merge_top_k_of_empty_input_is_empty() {
        assert!(merge_top_k(&[], 10).is_empty());
        assert!(merge_top_k(&[Vec::new(), Vec::new()], 10).is_empty());
    }

    #[test]
    fn query_cost_scales_with_term_popularity() {
        let (_, index) = index();
        let (_, scanned_popular) = index.search(&[0], 10);
        let (_, scanned_rare) = index.search(&[1_900], 10);
        assert!(scanned_popular > scanned_rare);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn top_k_is_a_prefix_of_full_ranking(terms in prop::collection::vec(0u32..2000, 1..4), k in 1usize..20) {
            let corpus = SyntheticCorpus::generate(CorpusConfig::small());
            let index = InvertedIndex::build(&corpus);
            let (top_k, _) = index.search(&terms, k);
            let (full, _) = index.search(&terms, usize::MAX / 2);
            prop_assert!(top_k.len() <= k);
            // The scores of the top-k must equal the first k scores of the full ranking.
            for (a, b) in top_k.iter().zip(full.iter()) {
                prop_assert!((a.score - b.score).abs() < 1e-4);
            }
        }
    }
}
