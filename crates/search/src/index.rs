//! Inverted index and BM25 ranking.
//!
//! xapian is a probabilistic search engine; a leaf node's work per query is dominated by
//! walking the postings lists of the query terms and scoring candidate documents.  This
//! module implements that core: an inverted index with per-term postings (document id +
//! term frequency), BM25 scoring, and top-k retrieval with a bounded heap.  Query cost is
//! proportional to the summed postings length of the query terms, which — with Zipfian
//! term popularity — produces the wide, heavy-tailed service-time distribution the paper
//! reports for xapian (Fig. 2).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tailbench_workloads::text::SyntheticCorpus;

/// One posting: a document that contains a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document identifier.
    pub doc_id: u32,
    /// Number of occurrences of the term in that document.
    pub term_freq: u32,
}

/// A scored search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document identifier.
    pub doc_id: u32,
    /// BM25 relevance score.
    pub score: f32,
}

impl Eq for SearchHit {}

impl Ord for SearchHit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order by score; ties broken by doc id for determinism.  NaN never occurs
        // because BM25 scores are finite.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.doc_id.cmp(&other.doc_id))
    }
}

impl PartialOrd for SearchHit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation parameter (typically 1.2).
    pub k1: f32,
    /// Length-normalization parameter (typically 0.75).
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An inverted index over a term-id corpus.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: Vec<Vec<Posting>>,
    doc_lengths: Vec<u32>,
    avg_doc_length: f32,
    params: Bm25Params,
}

impl InvertedIndex {
    /// Builds the index from a synthetic corpus.
    #[must_use]
    pub fn build(corpus: &SyntheticCorpus) -> Self {
        Self::build_with_params(corpus, Bm25Params::default())
    }

    /// Builds the index with explicit BM25 parameters.
    #[must_use]
    pub fn build_with_params(corpus: &SyntheticCorpus, params: Bm25Params) -> Self {
        let vocab = corpus.config().vocabulary;
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); vocab];
        let mut doc_lengths = Vec::with_capacity(corpus.documents().len());
        for doc in corpus.documents() {
            doc_lengths.push(doc.terms.len() as u32);
            // Count term frequencies within the document.
            let mut sorted = doc.terms.clone();
            sorted.sort_unstable();
            let mut i = 0;
            while i < sorted.len() {
                let term = sorted[i];
                let mut j = i;
                while j < sorted.len() && sorted[j] == term {
                    j += 1;
                }
                postings[term as usize].push(Posting {
                    doc_id: doc.id,
                    term_freq: (j - i) as u32,
                });
                i = j;
            }
        }
        let total_len: u64 = doc_lengths.iter().map(|&l| u64::from(l)).sum();
        let avg_doc_length = if doc_lengths.is_empty() {
            1.0
        } else {
            total_len as f32 / doc_lengths.len() as f32
        };
        InvertedIndex {
            postings,
            doc_lengths,
            avg_doc_length,
            params,
        }
    }

    /// Number of indexed documents.
    #[must_use]
    pub fn num_documents(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Number of distinct terms with at least one posting.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Length of a term's postings list (0 for unknown terms).
    #[must_use]
    pub fn postings_len(&self, term: u32) -> usize {
        self.postings.get(term as usize).map_or(0, Vec::len)
    }

    /// BM25 inverse document frequency of a term.
    #[must_use]
    pub fn idf(&self, term: u32) -> f32 {
        let n = self.num_documents() as f32;
        let df = self.postings_len(term) as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// Evaluates a disjunctive (OR) query and returns the top `k` documents by BM25
    /// score, in descending score order.  Also returns the number of postings scanned,
    /// which the service layer uses for its work profile.
    #[must_use]
    pub fn search(&self, terms: &[u32], k: usize) -> (Vec<SearchHit>, usize) {
        use std::collections::HashMap;
        // No query can return more hits than there are documents.
        let k = k.min(self.num_documents());
        let mut scores: HashMap<u32, f32> = HashMap::new();
        let mut scanned = 0usize;
        for &term in terms {
            let Some(postings) = self.postings.get(term as usize) else {
                continue;
            };
            let idf = self.idf(term);
            for posting in postings {
                scanned += 1;
                let dl = self.doc_lengths[posting.doc_id as usize] as f32;
                let tf = posting.term_freq as f32;
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * dl / self.avg_doc_length);
                let score = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(posting.doc_id).or_insert(0.0) += score;
            }
        }
        // Bounded top-k selection with a max-heap over `SearchHit`'s reverse ordering.
        let mut heap: BinaryHeap<SearchHit> = BinaryHeap::with_capacity((k + 1).min(4_096));
        for (doc_id, score) in scores {
            heap.push(SearchHit { doc_id, score });
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut hits: Vec<SearchHit> = heap.into_vec();
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
        (hits, scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};

    fn index() -> (SyntheticCorpus, InvertedIndex) {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let index = InvertedIndex::build(&corpus);
        (corpus, index)
    }

    #[test]
    fn index_covers_all_documents() {
        let (corpus, index) = index();
        assert_eq!(index.num_documents(), corpus.documents().len());
        assert!(index.num_terms() > 100);
    }

    #[test]
    fn popular_terms_have_long_postings() {
        let (_, index) = index();
        // Term 0 is the most popular under the Zipfian vocabulary.
        assert!(index.postings_len(0) > index.postings_len(1_500));
        assert_eq!(index.postings_len(u32::MAX), 0);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let (_, index) = index();
        assert!(index.idf(0) < index.idf(1_500));
    }

    #[test]
    fn search_returns_sorted_top_k() {
        let (_, index) = index();
        let (hits, scanned) = index.search(&[0, 1, 2], 10);
        assert!(hits.len() <= 10);
        assert!(!hits.is_empty());
        assert!(scanned > 0);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn search_for_unknown_terms_is_empty() {
        let (_, index) = index();
        let (hits, scanned) = index.search(&[4_000_000], 10);
        assert!(hits.is_empty());
        assert_eq!(scanned, 0);
    }

    #[test]
    fn documents_containing_query_terms_rank_above_random_ones() {
        let (corpus, index) = index();
        // Pick a moderately rare term and verify the top hit actually contains it.
        let term = (corpus.config().vocabulary / 2) as u32;
        if index.postings_len(term) == 0 {
            return; // extremely rare in the small corpus; nothing to verify
        }
        let (hits, _) = index.search(&[term], 5);
        let top = hits[0].doc_id;
        assert!(corpus.documents()[top as usize].terms.contains(&term));
    }

    #[test]
    fn query_cost_scales_with_term_popularity() {
        let (_, index) = index();
        let (_, scanned_popular) = index.search(&[0], 10);
        let (_, scanned_rare) = index.search(&[1_900], 10);
        assert!(scanned_popular > scanned_rare);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tailbench_workloads::text::{CorpusConfig, SyntheticCorpus};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn top_k_is_a_prefix_of_full_ranking(terms in prop::collection::vec(0u32..2000, 1..4), k in 1usize..20) {
            let corpus = SyntheticCorpus::generate(CorpusConfig::small());
            let index = InvertedIndex::build(&corpus);
            let (top_k, _) = index.search(&terms, k);
            let (full, _) = index.search(&terms, usize::MAX / 2);
            prop_assert!(top_k.len() <= k);
            // The scores of the top-k must equal the first k scores of the full ranking.
            for (a, b) in top_k.iter().zip(full.iter()) {
                prop_assert!((a.score - b.score).abs() < 1e-4);
            }
        }
    }
}
