//! xapian as a TailBench application.
//!
//! [`XapianApp`] models a web-search leaf node: it owns an inverted index over a
//! synthetic Wikipedia-like corpus and answers top-k queries.  [`SearchRequestFactory`]
//! draws query terms from the corpus' Zipfian popularity distribution, as the paper does.

use crate::index::InvertedIndex;
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};
use tailbench_workloads::text::{CorpusConfig, QueryGenerator, SyntheticCorpus};

/// Wire encoding of search queries and results.
pub mod codec {
    use crate::index::SearchHit;

    /// Encodes a ranked result list into a response payload.
    #[must_use]
    pub fn encode_results(hits: &[SearchHit]) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + hits.len() * 8);
        out.extend_from_slice(&(hits.len() as u16).to_le_bytes());
        for hit in hits {
            out.extend_from_slice(&hit.doc_id.to_le_bytes());
            out.extend_from_slice(&hit.score.to_le_bytes());
        }
        out
    }

    /// Decodes a result list from a response payload; `None` if malformed.  The root of
    /// a partition-aggregate query uses this to merge its leaves' responses.
    #[must_use]
    pub fn decode_results(payload: &[u8]) -> Option<Vec<SearchHit>> {
        let n = u16::from_le_bytes(payload.get(..2)?.try_into().ok()?) as usize;
        let body = payload.get(2..)?;
        if body.len() < n * 8 {
            return None;
        }
        let mut hits = Vec::with_capacity(n);
        for i in 0..n {
            hits.push(SearchHit {
                doc_id: u32::from_le_bytes(body[i * 8..i * 8 + 4].try_into().ok()?),
                score: f32::from_le_bytes(body[i * 8 + 4..i * 8 + 8].try_into().ok()?),
            });
        }
        Some(hits)
    }

    /// Encodes a query (term ids + result count) into a request payload.
    #[must_use]
    pub fn encode_query(terms: &[u32], k: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + terms.len() * 4);
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&(terms.len() as u16).to_le_bytes());
        for t in terms {
            out.extend_from_slice(&t.to_le_bytes());
        }
        out
    }

    /// Decodes a query payload; returns `None` if malformed.
    #[must_use]
    pub fn decode_query(payload: &[u8]) -> Option<(Vec<u32>, u16)> {
        if payload.len() < 4 {
            return None;
        }
        let k = u16::from_le_bytes(payload[..2].try_into().ok()?);
        let n = u16::from_le_bytes(payload[2..4].try_into().ok()?) as usize;
        let mut terms = Vec::with_capacity(n);
        let body = &payload[4..];
        if body.len() < n * 4 {
            return None;
        }
        for i in 0..n {
            terms.push(u32::from_le_bytes(body[i * 4..i * 4 + 4].try_into().ok()?));
        }
        Some((terms, k))
    }
}

/// Default number of results returned per query.
pub const DEFAULT_TOP_K: u16 = 10;

/// The xapian-substitute search application.
#[derive(Debug)]
pub struct XapianApp {
    index: InvertedIndex,
}

impl XapianApp {
    /// Builds the index from the given corpus configuration.
    #[must_use]
    pub fn new(config: CorpusConfig) -> Self {
        let corpus = SyntheticCorpus::generate(config);
        XapianApp {
            index: InvertedIndex::build(&corpus),
        }
    }

    /// Builds the application from an already-generated corpus (avoids regenerating the
    /// corpus when the factory also needs it).
    #[must_use]
    pub fn from_corpus(corpus: &SyntheticCorpus) -> Self {
        XapianApp {
            index: InvertedIndex::build(corpus),
        }
    }

    /// Builds a *leaf* application owning document partition `shard` of `shards`
    /// (the partition-aggregate pattern: a root fans each query out to every leaf and
    /// merges the per-leaf top-k lists with
    /// [`merge_top_k`](crate::index::merge_top_k)).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards` or `shards == 0`.
    #[must_use]
    pub fn leaf(corpus: &SyntheticCorpus, shard: usize, shards: usize) -> Self {
        XapianApp {
            index: InvertedIndex::build_partition(corpus, shard, shards),
        }
    }

    /// The underlying index.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }
}

impl ServerApp for XapianApp {
    fn name(&self) -> &str {
        "xapian"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some((terms, k)) = codec::decode_query(payload) else {
            return Response::new(vec![0xFF]);
        };
        let (hits, scanned) = self.index.search(&terms, k as usize);
        let out = codec::encode_results(&hits);
        // Query cost is dominated by postings traversal + scoring: ~60 instructions and
        // ~1.5 memory reads per posting (posting entry, doc length, score accumulator).
        let scanned = scanned as u64;
        let work = WorkProfile {
            instructions: 2_000 + 60 * scanned,
            mem_reads: 20 + scanned * 3 / 2,
            mem_writes: 10 + scanned / 4,
            footprint_bytes: 512 + scanned * 12,
            locality: 0.55,
            critical_fraction: 0.0,
        };
        Response::with_work(out, work)
    }
}

/// Generates Zipfian-popularity search queries.
#[derive(Debug)]
pub struct SearchRequestFactory {
    generator: QueryGenerator,
    rng: SuiteRng,
    top_k: u16,
}

impl SearchRequestFactory {
    /// Creates a factory for queries against the given corpus.
    #[must_use]
    pub fn new(corpus: &SyntheticCorpus, seed: u64) -> Self {
        SearchRequestFactory {
            generator: QueryGenerator::web_search(corpus),
            rng: seeded_rng(seed, 200),
            top_k: DEFAULT_TOP_K,
        }
    }
}

impl RequestFactory for SearchRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        let terms = self.generator.next_query(&mut self.rng);
        codec::encode_query(&terms, self.top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SyntheticCorpus, XapianApp) {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let app = XapianApp::from_corpus(&corpus);
        (corpus, app)
    }

    #[test]
    fn codec_round_trips() {
        let payload = codec::encode_query(&[1, 2, 99_999], 25);
        assert_eq!(
            codec::decode_query(&payload),
            Some((vec![1, 2, 99_999], 25))
        );
        assert_eq!(codec::decode_query(&[1]), None);
    }

    #[test]
    fn app_answers_queries_with_ranked_hits() {
        let (_, app) = setup();
        let resp = app.handle(&codec::encode_query(&[0, 1], 5));
        let n = u16::from_le_bytes(resp.payload[..2].try_into().unwrap());
        assert!(n > 0 && n <= 5);
        assert!(resp.work.instructions > 2_000);
    }

    #[test]
    fn popular_queries_cost_more_than_rare_ones() {
        let (_, app) = setup();
        let popular = app.handle(&codec::encode_query(&[0], 10));
        let rare = app.handle(&codec::encode_query(&[1_900], 10));
        assert!(popular.work.instructions > rare.work.instructions);
    }

    #[test]
    fn malformed_query_is_rejected() {
        let (_, app) = setup();
        assert_eq!(app.handle(&[1, 2]).payload, vec![0xFF]);
    }

    #[test]
    fn factory_queries_are_decodable_and_well_sized() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let mut factory = SearchRequestFactory::new(&corpus, 5);
        for _ in 0..100 {
            let payload = factory.next_request();
            let (terms, k) = codec::decode_query(&payload).unwrap();
            assert!((1..=4).contains(&terms.len()));
            assert_eq!(k, DEFAULT_TOP_K);
        }
    }

    #[test]
    fn result_codec_round_trips() {
        use crate::index::SearchHit;
        let hits = vec![
            SearchHit {
                doc_id: 3,
                score: 1.5,
            },
            SearchHit {
                doc_id: 99,
                score: 0.25,
            },
        ];
        assert_eq!(
            codec::decode_results(&codec::encode_results(&hits)),
            Some(hits)
        );
        assert_eq!(codec::decode_results(&[0xFF]), None);
        assert_eq!(codec::decode_results(&[2, 0, 1]), None, "truncated body");
    }

    #[test]
    fn leaf_responses_merge_into_a_global_top_k() {
        use crate::index::merge_top_k;
        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let shards = 3;
        let leaves: Vec<XapianApp> = (0..shards)
            .map(|s| XapianApp::leaf(&corpus, s, shards))
            .collect();
        let query = codec::encode_query(&[0, 1], 5);
        let per_leaf: Vec<Vec<crate::index::SearchHit>> = leaves
            .iter()
            .map(|leaf| codec::decode_results(&leaf.handle(&query).payload).unwrap())
            .collect();
        let merged = merge_top_k(&per_leaf, 5);
        assert!(!merged.is_empty() && merged.len() <= 5);
        assert!(merged.windows(2).all(|w| w[0].score >= w[1].score));
        // Leaves own disjoint partitions, so merged hits never repeat a document.
        let mut ids: Vec<u32> = merged.iter().map(|h| h.doc_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), merged.len());
    }

    #[test]
    fn leaf_cluster_through_harness_fans_out() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;
        use tailbench_core::{ClusterConfig, FanoutPolicy};

        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let shards = 3;
        let apps: Vec<Arc<dyn ServerApp>> = (0..shards)
            .map(|s| Arc::new(XapianApp::leaf(&corpus, s, shards)) as Arc<dyn ServerApp>)
            .collect();
        let mut factory = SearchRequestFactory::new(&corpus, 23);
        let report = tailbench_core::runner::execute_cluster(
            &apps,
            &mut factory,
            &BenchmarkConfig::new(500.0, 200).with_warmup(20),
            &ClusterConfig::new(shards, FanoutPolicy::Broadcast),
            None,
        )
        .unwrap();
        assert_eq!(report.shards, shards);
        assert!(report.cluster.requests > 150);
        // Broadcast: every leaf served every measured query.
        for shard in &report.per_shard {
            assert_eq!(shard.requests, report.cluster.requests);
        }
        assert!(report.cluster.sojourn.p99_ns >= report.max_shard_p99_ns());
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let corpus = SyntheticCorpus::generate(CorpusConfig::small());
        let app: Arc<dyn ServerApp> = Arc::new(XapianApp::from_corpus(&corpus));
        let mut factory = SearchRequestFactory::new(&corpus, 17);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 200).with_warmup(20),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "xapian");
        assert!(report.requests > 150);
    }
}
