//! img-dnn as a TailBench application.

use crate::network::ImgDnnNetwork;
use tailbench_core::app::{RequestFactory, ServerApp};
use tailbench_core::request::{Response, WorkProfile};
use tailbench_workloads::mnist::{DigitGenerator, IMAGE_PIXELS};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// Wire encoding of image requests: 784 little-endian `f32` pixel intensities.
pub mod codec {
    use super::IMAGE_PIXELS;

    /// Encodes an image.
    #[must_use]
    pub fn encode_image(pixels: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(IMAGE_PIXELS * 4);
        for p in pixels.iter().take(IMAGE_PIXELS) {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Decodes an image; `None` if the payload is not exactly 784 floats.
    #[must_use]
    pub fn decode_image(payload: &[u8]) -> Option<Vec<f32>> {
        if payload.len() != IMAGE_PIXELS * 4 {
            return None;
        }
        Some(
            payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
                .collect(),
        )
    }
}

/// The img-dnn server application.
#[derive(Debug)]
pub struct ImgDnnApp {
    network: ImgDnnNetwork,
}

impl ImgDnnApp {
    /// Builds the standard 784-256-64-10 network and trains it briefly on the synthetic
    /// digit generator so classifications are meaningful.
    #[must_use]
    pub fn standard() -> Self {
        let mut network = ImgDnnNetwork::standard(0xD16);
        let _ = network.train(2_000, 0.05, 0xD16);
        ImgDnnApp { network }
    }

    /// A small untrained network for fast tests.
    #[must_use]
    pub fn small() -> Self {
        ImgDnnApp {
            network: ImgDnnNetwork::small(0xD16),
        }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &ImgDnnNetwork {
        &self.network
    }
}

impl ServerApp for ImgDnnApp {
    fn name(&self) -> &str {
        "img-dnn"
    }

    fn handle(&self, payload: &[u8]) -> Response {
        let Some(pixels) = codec::decode_image(payload) else {
            return Response::new(vec![0xFF]);
        };
        let prediction = self.network.classify(&pixels);
        let macs = self.network.macs();
        // One MAC ≈ 2 instructions (multiply + add) plus streaming weight reads; the
        // weight matrices dominate the footprint and are re-read every request, which is
        // why img-dnn has the highest L1D miss rate in Table I.
        let work = WorkProfile {
            instructions: 2 * macs + 5_000,
            mem_reads: macs + 1_000,
            mem_writes: macs / 64 + 200,
            footprint_bytes: 4 * macs,
            locality: 0.35,
            critical_fraction: 0.0,
        };
        Response::with_work(
            vec![prediction.label, (prediction.confidence * 255.0) as u8],
            work,
        )
    }
}

/// Generates synthetic digit-image requests.
#[derive(Debug)]
pub struct ImageRequestFactory {
    generator: DigitGenerator,
    rng: SuiteRng,
}

impl ImageRequestFactory {
    /// Creates a factory with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ImageRequestFactory {
            generator: DigitGenerator::default(),
            rng: seeded_rng(seed, 500),
        }
    }
}

impl RequestFactory for ImageRequestFactory {
    fn next_request(&mut self) -> Vec<u8> {
        codec::encode_image(&self.generator.generate(&mut self.rng).pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let pixels: Vec<f32> = (0..IMAGE_PIXELS).map(|i| i as f32 / 784.0).collect();
        let decoded = codec::decode_image(&codec::encode_image(&pixels)).unwrap();
        assert_eq!(decoded.len(), IMAGE_PIXELS);
        assert!((decoded[100] - pixels[100]).abs() < 1e-7);
        assert_eq!(codec::decode_image(&[0u8; 10]), None);
    }

    #[test]
    fn app_classifies_images() {
        let app = ImgDnnApp::small();
        let mut factory = ImageRequestFactory::new(1);
        let resp = app.handle(&factory.next_request());
        assert_eq!(resp.payload.len(), 2);
        assert!(resp.payload[0] < 10);
        assert!(resp.work.instructions > 10_000);
    }

    #[test]
    fn service_work_is_constant_across_requests() {
        // img-dnn's forward pass is input-independent: every request reports identical work.
        let app = ImgDnnApp::small();
        let mut factory = ImageRequestFactory::new(2);
        let a = app.handle(&factory.next_request()).work;
        let b = app.handle(&factory.next_request()).work;
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.mem_reads, b.mem_reads);
    }

    #[test]
    fn malformed_request_is_rejected() {
        let app = ImgDnnApp::small();
        assert_eq!(app.handle(&[1, 2, 3]).payload, vec![0xFF]);
    }

    #[test]
    fn end_to_end_through_harness() {
        use std::sync::Arc;
        use tailbench_core::config::BenchmarkConfig;

        let app: Arc<dyn ServerApp> = Arc::new(ImgDnnApp::small());
        let mut factory = ImageRequestFactory::new(3);
        let report = tailbench_core::runner::execute(
            &app,
            &mut factory,
            &BenchmarkConfig::new(500.0, 150).with_warmup(15),
            None,
        )
        .unwrap();
        assert_eq!(report.app, "img-dnn");
        assert!(report.requests > 120);
    }
}
