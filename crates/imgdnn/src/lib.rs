//! The img-dnn substitute: dense-network handwriting recognition.
//!
//! TailBench's img-dnn classifies MNIST digits with an autoencoder + softmax network
//! (paper §III).  This crate implements the same fixed-topology pipeline from scratch:
//!
//! * [`network`] — dense layers, sigmoid/softmax activations, a forward pass and a small
//!   SGD trainer fitted against the synthetic digit generator;
//! * [`service`] — the harness adapter ([`ImgDnnApp`]) and image request factory.
//!
//! Because the forward pass is input-independent, img-dnn has nearly constant service
//! times — the role it plays in the paper's service-time-distribution comparison (Fig. 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod network;
pub mod service;

pub use network::{Activation, DenseLayer, ImgDnnNetwork, Prediction};
pub use service::{ImageRequestFactory, ImgDnnApp};
