//! Dense neural network: layers, forward pass and a small SGD trainer.
//!
//! img-dnn couples an autoencoder with softmax regression to classify handwritten
//! characters (paper §III).  This module implements the same topology from scratch:
//! fully connected layers with sigmoid activations (the encoder), a softmax output layer,
//! and a simple SGD trainer used once at startup to fit the synthetic digit generator.
//! Per-request work is a fixed-size forward pass, which is why img-dnn's service times
//! are nearly constant (paper Fig. 2).

use rand::Rng;
use tailbench_workloads::mnist::{DigitGenerator, IMAGE_PIXELS, NUM_CLASSES};
use tailbench_workloads::rng::{seeded_rng, SuiteRng};

/// A fully connected layer `y = act(W x + b)`.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weights: Vec<f32>,
    biases: Vec<f32>,
    inputs: usize,
    outputs: usize,
}

/// Activation applied by a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid.
    Sigmoid,
    /// Softmax (used by the output layer).
    Softmax,
}

impl DenseLayer {
    /// Creates a layer with small random weights.
    #[must_use]
    pub fn new(inputs: usize, outputs: usize, rng: &mut SuiteRng) -> Self {
        let scale = (1.0 / inputs as f32).sqrt();
        DenseLayer {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            biases: vec![0.0; outputs],
            inputs,
            outputs,
        }
    }

    /// Number of input features.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output features.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Number of multiply-accumulate operations per forward pass.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.inputs * self.outputs) as u64
    }

    /// Computes the pre-activation `W x + b`.
    #[must_use]
    pub fn affine(&self, input: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.inputs);
        let mut out = self.biases.clone();
        for (o, out_val) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input.iter()) {
                acc += w * x;
            }
            *out_val += acc;
        }
        out
    }

    /// Forward pass with the given activation.
    #[must_use]
    pub fn forward(&self, input: &[f32], activation: Activation) -> Vec<f32> {
        let mut z = self.affine(input);
        match activation {
            Activation::Sigmoid => {
                for v in &mut z {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Softmax => {
                let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in &mut z {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                for v in &mut z {
                    *v /= sum;
                }
            }
        }
        z
    }
}

/// The img-dnn classifier: encoder (sigmoid) layers followed by a softmax output layer.
#[derive(Debug, Clone)]
pub struct ImgDnnNetwork {
    encoder: Vec<DenseLayer>,
    output: DenseLayer,
}

/// Classification result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted digit class.
    pub label: u8,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
}

impl ImgDnnNetwork {
    /// Creates an untrained network with the given hidden-layer sizes.
    #[must_use]
    pub fn new(hidden: &[usize], seed: u64) -> Self {
        let mut rng = seeded_rng(seed, 50);
        let mut encoder = Vec::new();
        let mut prev = IMAGE_PIXELS;
        for &h in hidden {
            encoder.push(DenseLayer::new(prev, h, &mut rng));
            prev = h;
        }
        let output = DenseLayer::new(prev, NUM_CLASSES, &mut rng);
        ImgDnnNetwork { encoder, output }
    }

    /// The standard topology used by the benchmark (784-256-64-10).
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self::new(&[256, 64], seed)
    }

    /// A tiny topology for unit tests.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self::new(&[32], seed)
    }

    /// Total multiply-accumulate operations per forward pass.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.encoder.iter().map(DenseLayer::macs).sum::<u64>() + self.output.macs()
    }

    /// Full forward pass returning softmax class probabilities.
    #[must_use]
    pub fn probabilities(&self, pixels: &[f32]) -> Vec<f32> {
        let mut x = pixels.to_vec();
        for layer in &self.encoder {
            x = layer.forward(&x, Activation::Sigmoid);
        }
        self.output.forward(&x, Activation::Softmax)
    }

    /// Classifies one image.
    #[must_use]
    pub fn classify(&self, pixels: &[f32]) -> Prediction {
        let probs = self.probabilities(pixels);
        let (label, &confidence) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("softmax output is non-empty");
        Prediction {
            label: label as u8,
            confidence,
        }
    }

    /// Trains the network with plain SGD on `samples` images from the synthetic digit
    /// generator.  Returns the final training accuracy.
    pub fn train(&mut self, samples: usize, learning_rate: f32, seed: u64) -> f64 {
        let generator = DigitGenerator::default();
        let mut rng = seeded_rng(seed, 51);
        let mut correct = 0usize;
        let mut seen = 0usize;
        for _ in 0..samples {
            let img = generator.generate(&mut rng);
            // Forward pass, keeping intermediate activations for backprop.
            let mut activations: Vec<Vec<f32>> = vec![img.pixels.clone()];
            for layer in &self.encoder {
                let a = layer.forward(activations.last().expect("non-empty"), Activation::Sigmoid);
                activations.push(a);
            }
            let probs = self
                .output
                .forward(activations.last().expect("non-empty"), Activation::Softmax);
            if probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u8)
                == Some(img.label)
            {
                correct += 1;
            }
            seen += 1;

            // Backward pass: softmax + cross-entropy gives delta = probs - onehot.
            let mut delta: Vec<f32> = probs;
            delta[img.label as usize] -= 1.0;
            // Output layer gradient step (and propagate delta to the last hidden layer).
            let mut prev_delta = vec![0.0f32; self.output.inputs];
            {
                let input = activations.last().expect("non-empty").clone();
                for (o, &d) in delta.iter().enumerate().take(self.output.outputs) {
                    for i in 0..self.output.inputs {
                        prev_delta[i] += d * self.output.weights[o * self.output.inputs + i];
                        self.output.weights[o * self.output.inputs + i] -=
                            learning_rate * d * input[i];
                    }
                    self.output.biases[o] -= learning_rate * d;
                }
            }
            // Hidden layers (sigmoid derivative = a * (1 - a)).
            let mut delta = prev_delta;
            for l in (0..self.encoder.len()).rev() {
                let a = &activations[l + 1];
                for (d, &act) in delta.iter_mut().zip(a.iter()) {
                    *d *= act * (1.0 - act);
                }
                let input = activations[l].clone();
                let layer = &mut self.encoder[l];
                let mut next_delta = vec![0.0f32; layer.inputs];
                for (o, &d) in delta.iter().enumerate().take(layer.outputs) {
                    for i in 0..layer.inputs {
                        next_delta[i] += d * layer.weights[o * layer.inputs + i];
                        layer.weights[o * layer.inputs + i] -= learning_rate * d * input[i];
                    }
                    layer.biases[o] -= learning_rate * d;
                }
                delta = next_delta;
            }
        }
        correct as f64 / seen.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_pass_produces_a_distribution() {
        let net = ImgDnnNetwork::small(1);
        let pixels = vec![0.5f32; IMAGE_PIXELS];
        let probs = net.probabilities(&pixels);
        assert_eq!(probs.len(), NUM_CLASSES);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn classify_is_deterministic_and_in_range() {
        let net = ImgDnnNetwork::small(2);
        let pixels = vec![0.1f32; IMAGE_PIXELS];
        let a = net.classify(&pixels);
        let b = net.classify(&pixels);
        assert_eq!(a, b);
        assert!(a.label < 10);
        assert!(a.confidence > 0.0);
    }

    #[test]
    fn macs_reflect_topology() {
        let small = ImgDnnNetwork::small(3);
        let standard = ImgDnnNetwork::standard(3);
        assert!(standard.macs() > small.macs());
        assert_eq!(small.macs(), (784 * 32 + 32 * 10) as u64);
    }

    #[test]
    fn training_improves_over_chance() {
        let mut net = ImgDnnNetwork::small(4);
        let accuracy = net.train(1_500, 0.05, 99);
        // Chance is 10%; even a short SGD run on clean synthetic digits does much better.
        assert!(accuracy > 0.4, "training accuracy = {accuracy}");
        // And the trained network classifies a fresh clean digit correctly most of the time.
        let generator = DigitGenerator::default();
        let mut rng = seeded_rng(123, 0);
        let mut correct = 0;
        for _ in 0..50 {
            let img = generator.generate(&mut rng);
            if net.classify(&img.pixels).label == img.label {
                correct += 1;
            }
        }
        assert!(correct > 20, "held-out correct = {correct}/50");
    }
}
