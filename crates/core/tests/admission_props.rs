//! Property tests for the shedding admission policies.
//!
//! Three guarantees, each over randomized push/receive schedules:
//!
//! - **Deadline shedding never serves the expired.**  Under `DropDeadline`, every
//!   request a consumer actually receives was within its queueing-delay SLO at the
//!   moment of delivery; everything older is reclassified as dropped.
//! - **Priority eviction is exact.**  Under `Priority`, a full queue evicts the
//!   youngest request of the lowest class — and only for a strictly higher-class
//!   arrival.  Verified against an independent model of the documented policy.
//! - **Shedding never blocks the producer.**  `Drop`, `DropDeadline` and `Priority`
//!   resolve every push immediately even with no consumer draining (the property the
//!   discrete-event simulator relies on to run them in virtual time).
//!
//! Every schedule also checks the admission ledger: `accepted + dropped == offered`,
//! with `accepted` equal to what the consumer really received once the queue drains.

use proptest::prelude::*;
use std::sync::Arc;
use tailbench_core::collector::RequestTags;
use tailbench_core::queue::{AdmissionPolicy, Completion, PushOutcome, RequestQueue};
use tailbench_core::request::{Request, RequestId};

fn request(id: u64, issued_ns: u64) -> Request {
    Request {
        id: RequestId(id),
        payload: Vec::new(),
        issued_ns,
    }
}

proptest! {
    /// Interleaved pushes and receives on a `DropDeadline` queue: no delivered request
    /// may be past its SLO at delivery time, and the ledger must balance.
    #[test]
    fn deadline_shed_never_delivers_expired_requests(
        capacity in 1usize..8,
        slo_ns in 1u64..400,
        steps in prop::collection::vec(((0u64..250), any::<bool>()), 1..60),
    ) {
        let q = RequestQueue::with_policy(AdmissionPolicy::DropDeadline { capacity, slo_ns });
        let rx = q.receiver();
        let mut now = 0u64;
        let mut offered = 0u64;
        let mut received = 0u64;
        for (id, (gap, also_recv)) in steps.iter().enumerate() {
            now += gap;
            offered += 1;
            let outcome = q.push(request(id as u64, now), now, Completion::Inline);
            prop_assert!(outcome != PushOutcome::Closed);
            // recv_at parks on an empty queue while producers are alive, and deadline
            // shedding can empty the queue mid-call — so only pull when the push just
            // admitted an age-zero item: the shed loop must then deliver *something*.
            if *also_recv && outcome == PushOutcome::Accepted {
                let item = rx.recv_at(&|| now).expect("a fresh item is queued");
                received += 1;
                prop_assert!(
                    now.saturating_sub(item.enqueued_ns) <= slo_ns,
                    "delivered a request {}ns old, past the {}ns SLO",
                    now - item.enqueued_ns,
                    slo_ns
                );
            }
        }
        // Drain the rest at a final instant and settle the ledger.
        let observer = q.observer();
        drop(q);
        now += 1;
        while let Ok(item) = rx.recv_at(&|| now) {
            received += 1;
            prop_assert!(now.saturating_sub(item.enqueued_ns) <= slo_ns);
        }
        let summary = observer.summary();
        prop_assert_eq!(summary.accepted, received);
        prop_assert_eq!(summary.accepted + summary.dropped, offered);
    }

    /// `Priority` admission against an independent model: at capacity, an arrival
    /// evicts the youngest queued request of the lowest class, and only if that class
    /// is strictly lower-priority than the arrival's.
    #[test]
    fn priority_evicts_the_youngest_lowest_class_first(
        capacity in 1usize..6,
        classes in prop::collection::vec(0u16..4, 1..40),
    ) {
        let names = (0..4).map(|c| format!("class-{c}")).collect();
        let tags = Arc::new(RequestTags::new(names, Vec::new(), classes.clone(), Vec::new()));
        let q = RequestQueue::with_policy_and_tags(
            AdmissionPolicy::Priority { capacity },
            Some(Arc::clone(&tags)),
        );
        let rx = q.receiver();

        // The documented policy, modeled independently.
        let mut model: Vec<(u64, u16)> = Vec::new();
        let mut model_dropped = 0u64;
        for (id, class) in classes.iter().enumerate() {
            let outcome = q.push(request(id as u64, id as u64), id as u64, Completion::Inline);
            prop_assert!(outcome != PushOutcome::Closed);
            if model.len() >= capacity {
                // Victim: the youngest (latest) entry of the numerically highest
                // (lowest-priority) class, only if strictly below the arrival.
                let mut victim: Option<(usize, u16)> = None;
                for (index, &(_, queued_class)) in model.iter().enumerate() {
                    if victim.is_none_or(|(_, worst)| queued_class >= worst) {
                        victim = Some((index, queued_class));
                    }
                }
                match victim {
                    Some((index, worst)) if worst > *class => {
                        model.remove(index);
                        model_dropped += 1;
                        model.push((id as u64, *class));
                        prop_assert_eq!(outcome, PushOutcome::Accepted);
                    }
                    _ => {
                        model_dropped += 1;
                        prop_assert_eq!(outcome, PushOutcome::Dropped);
                    }
                }
            } else {
                model.push((id as u64, *class));
                prop_assert_eq!(outcome, PushOutcome::Accepted);
            }
        }

        let observer = q.observer();
        drop(q);
        let mut delivered = Vec::new();
        while let Ok(item) = rx.recv() {
            delivered.push(item.request.id.0);
        }
        let expected: Vec<u64> = model.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(delivered, expected);
        let summary = observer.summary();
        prop_assert_eq!(summary.dropped, model_dropped);
        prop_assert_eq!(summary.accepted + summary.dropped, classes.len() as u64);
    }

    /// Shedding policies resolve every push immediately, even when nothing drains:
    /// the queue never exceeds its capacity and the producer is never parked (a
    /// blocking regression would hang this test rather than fail an assertion).
    #[test]
    fn shedding_policies_never_block_the_producer(
        capacity in 1usize..8,
        extra in 1usize..24,
        policy_pick in 0usize..3,
        slo_ns in 1u64..1_000,
    ) {
        let policy = [
            AdmissionPolicy::Drop { capacity },
            AdmissionPolicy::DropDeadline { capacity, slo_ns },
            AdmissionPolicy::Priority { capacity },
        ][policy_pick];
        let q = RequestQueue::with_policy(policy);
        let _rx = q.receiver(); // alive but idle: nothing ever drains
        let total = capacity + extra;
        for id in 0..total as u64 {
            let outcome = q.push(request(id, id), id, Completion::Inline);
            prop_assert!(outcome != PushOutcome::Closed);
            prop_assert!(q.depth() <= capacity, "depth exceeded the shed capacity");
        }
        let summary = q.observer().summary();
        prop_assert_eq!(summary.accepted + summary.dropped, total as u64);
        // Nothing was delivered, so at most `capacity` requests can still count as
        // accepted — every other offer ended up dropped, whichever shed path took it.
        prop_assert!(summary.dropped >= extra as u64);
    }
}
