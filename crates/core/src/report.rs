//! Run reports.
//!
//! A [`RunReport`] captures everything the paper reports about a single measurement run:
//! offered and achieved load, and the mean / tail latencies of the sojourn, service and
//! queuing time distributions.  [`MultiRunReport`] aggregates repeated runs and carries
//! the confidence intervals mandated by the methodology (§IV-C).

use serde::{Deserialize, Serialize};
use std::fmt;
use tailbench_histogram::{ConfidenceInterval, LatencySummary, RunSeries};

/// Summary statistics of one latency distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (50th percentile).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 95th percentile — the headline metric of most of the paper's figures.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Extracts summary statistics from a latency summary.
    #[must_use]
    pub fn from_summary(summary: &LatencySummary) -> Self {
        LatencyStats {
            count: summary.len(),
            mean_ns: summary.mean(),
            p50_ns: summary.value_at_quantile(0.50),
            p90_ns: summary.value_at_quantile(0.90),
            p95_ns: summary.value_at_quantile(0.95),
            p99_ns: summary.value_at_quantile(0.99),
            p999_ns: summary.value_at_quantile(0.999),
            min_ns: summary.min(),
            max_ns: summary.max(),
        }
    }

    /// Mean in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// 95th percentile in milliseconds.
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns as f64 / 1e6
    }

    /// 99th percentile in milliseconds.
    #[must_use]
    pub fn p99_ms(&self) -> f64 {
        self.p99_ns as f64 / 1e6
    }
}

/// The result of one measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Harness configuration name (`integrated`, `loopback`, `networked`, `simulated`).
    pub configuration: String,
    /// Offered load in QPS (absent for closed-loop runs).
    pub offered_qps: Option<f64>,
    /// Achieved throughput over the measured interval in QPS.
    pub achieved_qps: f64,
    /// Number of measured (non-warmup) requests.
    pub requests: u64,
    /// Number of application worker threads.
    pub worker_threads: usize,
    /// Wall-clock (or virtual-clock) span of the measured interval, ns.
    pub duration_ns: u64,
    /// End-to-end latency distribution.
    pub sojourn: LatencyStats,
    /// Service-time distribution.
    pub service: LatencyStats,
    /// Queuing-time distribution.
    pub queue: LatencyStats,
    /// Transport/harness overhead distribution.
    pub overhead: LatencyStats,
}

impl RunReport {
    /// Returns `true` if the run failed to keep up with the offered load (achieved
    /// throughput more than `tolerance` below offered), i.e. the system was saturated.
    #[must_use]
    pub fn is_saturated(&self, tolerance: f64) -> bool {
        match self.offered_qps {
            Some(offered) if offered > 0.0 => self.achieved_qps < offered * (1.0 - tolerance),
            _ => false,
        }
    }

    /// System load: achieved QPS divided by the provided capacity (saturation QPS).
    #[must_use]
    pub fn load(&self, capacity_qps: f64) -> f64 {
        if capacity_qps <= 0.0 {
            0.0
        } else {
            self.offered_qps.unwrap_or(self.achieved_qps) / capacity_qps
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<11} {:>7} thr={} offered={:>10.1} achieved={:>10.1}  p50={:>9.3}ms p95={:>9.3}ms p99={:>9.3}ms mean={:>9.3}ms",
            self.app,
            self.configuration,
            self.requests,
            self.worker_threads,
            self.offered_qps.unwrap_or(f64::NAN),
            self.achieved_qps,
            self.sojourn.p50_ns as f64 / 1e6,
            self.sojourn.p95_ms(),
            self.sojourn.p99_ms(),
            self.sojourn.mean_ms(),
        )
    }
}

/// The result of one cluster measurement run: the end-to-end (client-observed)
/// distribution plus each shard's own distribution, so the fan-out tail amplification
/// is directly readable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// End-to-end report: a request completes when its last leg completes.
    pub cluster: RunReport,
    /// Per-shard reports, indexed by shard.
    pub per_shard: Vec<RunReport>,
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// Statistics of the union of all shards' legs (the "typical shard" view).
    pub shard_union_sojourn: LatencyStats,
}

impl ClusterReport {
    /// The largest per-shard p99 sojourn, ns.
    #[must_use]
    pub fn max_shard_p99_ns(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|r| r.sojourn.p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Mean of the per-shard p99 sojourns, ns.
    #[must_use]
    pub fn mean_shard_p99_ns(&self) -> f64 {
        if self.per_shard.is_empty() {
            return 0.0;
        }
        self.per_shard
            .iter()
            .map(|r| r.sojourn.p99_ns as f64)
            .sum::<f64>()
            / self.per_shard.len() as f64
    }

    /// Tail amplification: the cluster p99 divided by the mean per-shard p99.  Waiting
    /// for the slowest of N shards pushes the cluster's p99 toward the shards' p99.9+,
    /// so this ratio grows with fan-out (the tail-at-scale effect).
    #[must_use]
    pub fn p99_amplification(&self) -> f64 {
        let shard = self.mean_shard_p99_ns();
        if shard <= 0.0 {
            0.0
        } else {
            self.cluster.sojourn.p99_ns as f64 / shard
        }
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster {}x{}: p99 = {:.3} ms (shard mean p99 = {:.3} ms, amplification {:.2}x)",
            self.shards,
            self.replication,
            self.cluster.sojourn.p99_ms(),
            self.mean_shard_p99_ns() / 1e6,
            self.p99_amplification(),
        )?;
        for (i, shard) in self.per_shard.iter().enumerate() {
            writeln!(f, "  shard {i}: {shard}")?;
        }
        write!(f, "  end-to-end: {}", self.cluster)
    }
}

/// Aggregate of several repeated runs of the same configuration, with the
/// confidence-interval bookkeeping from the paper's methodology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiRunReport {
    /// The individual runs.
    pub runs: Vec<RunReport>,
    /// 95% confidence interval of mean sojourn latency across runs.
    pub mean_ci: ConfidenceInterval,
    /// 95% confidence interval of the 95th-percentile sojourn latency across runs.
    pub p95_ci: ConfidenceInterval,
    /// 95% confidence interval of the 99th-percentile sojourn latency across runs.
    pub p99_ci: ConfidenceInterval,
    /// Whether all tracked metrics converged to the target relative CI width.
    pub converged: bool,
}

impl MultiRunReport {
    /// Builds the aggregate from individual runs and a convergence target (e.g. 0.01 for
    /// the paper's 1% rule).
    #[must_use]
    pub fn from_runs(runs: Vec<RunReport>, target_fraction: f64, min_runs: usize) -> Self {
        let mut mean_series = RunSeries::new("mean_sojourn_ns", target_fraction);
        let mut p95_series = RunSeries::new("p95_sojourn_ns", target_fraction);
        let mut p99_series = RunSeries::new("p99_sojourn_ns", target_fraction);
        for r in &runs {
            mean_series.push(r.sojourn.mean_ns);
            p95_series.push(r.sojourn.p95_ns as f64);
            p99_series.push(r.sojourn.p99_ns as f64);
        }
        let converged = mean_series.converged(min_runs)
            && p95_series.converged(min_runs)
            && p99_series.converged(min_runs);
        MultiRunReport {
            runs,
            mean_ci: mean_series.interval(),
            p95_ci: p95_series.interval(),
            p99_ci: p99_series.interval(),
            converged,
        }
    }

    /// Mean 95th-percentile sojourn latency across runs, in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> f64 {
        self.p95_ci.mean
    }

    /// Mean achieved throughput across runs, in QPS.
    #[must_use]
    pub fn achieved_qps(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().map(|r| r.achieved_qps).sum::<f64>() / self.runs.len() as f64
        }
    }

    /// The most representative single run (the one whose p95 is closest to the mean p95).
    #[must_use]
    pub fn representative_run(&self) -> Option<&RunReport> {
        let target = self.p95_ci.mean;
        self.runs.iter().min_by(|a, b| {
            let da = (a.sojourn.p95_ns as f64 - target).abs();
            let db = (b.sojourn.p95_ns as f64 - target).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p95_ms: f64, offered: f64, achieved: f64) -> RunReport {
        RunReport {
            app: "echo".into(),
            configuration: "integrated".into(),
            offered_qps: Some(offered),
            achieved_qps: achieved,
            requests: 1000,
            worker_threads: 1,
            duration_ns: 1_000_000_000,
            sojourn: LatencyStats {
                count: 1000,
                mean_ns: p95_ms * 0.6e6,
                p50_ns: (p95_ms * 0.5e6) as u64,
                p90_ns: (p95_ms * 0.9e6) as u64,
                p95_ns: (p95_ms * 1e6) as u64,
                p99_ns: (p95_ms * 1.3e6) as u64,
                p999_ns: (p95_ms * 1.8e6) as u64,
                min_ns: 1_000,
                max_ns: (p95_ms * 2e6) as u64,
            },
            service: LatencyStats::default(),
            queue: LatencyStats::default(),
            overhead: LatencyStats::default(),
        }
    }

    #[test]
    fn latency_stats_from_summary() {
        let mut s = LatencySummary::new();
        for i in 1..=100u64 {
            s.record(i * 1_000_000);
        }
        let stats = LatencyStats::from_summary(&s);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p95_ns, 95_000_000);
        assert!((stats.p95_ms() - 95.0).abs() < 1e-9);
        assert_eq!(stats.min_ns, 1_000_000);
        assert_eq!(stats.max_ns, 100_000_000);
    }

    #[test]
    fn saturation_detection() {
        assert!(!report(2.0, 1000.0, 995.0).is_saturated(0.05));
        assert!(report(50.0, 1000.0, 700.0).is_saturated(0.05));
        let mut closed = report(2.0, 1000.0, 700.0);
        closed.offered_qps = None;
        assert!(!closed.is_saturated(0.05));
    }

    #[test]
    fn load_is_relative_to_capacity() {
        let r = report(2.0, 500.0, 498.0);
        assert!((r.load(1000.0) - 0.5).abs() < 1e-9);
        assert_eq!(r.load(0.0), 0.0);
    }

    #[test]
    fn multi_run_report_aggregates_and_converges() {
        let runs = vec![
            report(2.00, 1000.0, 998.0),
            report(2.01, 1000.0, 997.0),
            report(1.99, 1000.0, 999.0),
            report(2.00, 1000.0, 998.0),
        ];
        let multi = MultiRunReport::from_runs(runs, 0.01, 2);
        assert!(multi.converged);
        assert!((multi.p95_ns() - 2.0e6).abs() < 2e4);
        assert!((multi.achieved_qps() - 998.0).abs() < 1.0);
        assert!(multi.representative_run().is_some());
    }

    #[test]
    fn multi_run_report_detects_non_convergence() {
        let runs = vec![report(2.0, 1000.0, 998.0), report(4.0, 1000.0, 998.0)];
        let multi = MultiRunReport::from_runs(runs, 0.01, 2);
        assert!(!multi.converged);
    }

    #[test]
    fn cluster_report_amplification_is_cluster_over_mean_shard() {
        let cluster = ClusterReport {
            cluster: report(4.0, 1000.0, 998.0),
            per_shard: vec![report(2.0, 1000.0, 998.0), report(2.0, 1000.0, 998.0)],
            shards: 2,
            replication: 1,
            shard_union_sojourn: LatencyStats::default(),
        };
        assert_eq!(cluster.max_shard_p99_ns(), (2.0 * 1.3e6) as u64);
        assert!((cluster.mean_shard_p99_ns() - 2.0 * 1.3e6).abs() < 1.0);
        assert!((cluster.p99_amplification() - 2.0).abs() < 1e-9);
        let s = format!("{cluster}");
        assert!(s.contains("amplification"));
        assert!(s.contains("shard 0"));
    }

    #[test]
    fn empty_cluster_report_is_well_behaved() {
        let cluster = ClusterReport {
            cluster: report(1.0, 100.0, 100.0),
            per_shard: Vec::new(),
            shards: 0,
            replication: 1,
            shard_union_sojourn: LatencyStats::default(),
        };
        assert_eq!(cluster.max_shard_p99_ns(), 0);
        assert_eq!(cluster.mean_shard_p99_ns(), 0.0);
        assert_eq!(cluster.p99_amplification(), 0.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = format!("{}", report(2.0, 1000.0, 998.0));
        assert!(s.contains("echo"));
        assert!(s.contains("integrated"));
        assert!(s.contains("p95"));
    }
}
