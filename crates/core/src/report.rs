//! Run reports.
//!
//! A [`RunReport`] captures everything the paper reports about a single measurement run:
//! offered and achieved load, and the mean / tail latencies of the sojourn, service and
//! queuing time distributions.  [`MultiRunReport`] aggregates repeated runs and carries
//! the confidence intervals mandated by the methodology (§IV-C).

use serde::{Deserialize, Serialize};
use std::fmt;
use tailbench_histogram::{ConfidenceInterval, LatencySummary, RunSeries};

/// Summary statistics of one latency distribution, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (50th percentile).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 95th percentile — the headline metric of most of the paper's figures.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Extracts summary statistics from a latency summary.
    #[must_use]
    pub fn from_summary(summary: &LatencySummary) -> Self {
        LatencyStats {
            count: summary.len(),
            mean_ns: summary.mean(),
            p50_ns: summary.value_at_quantile(0.50),
            p90_ns: summary.value_at_quantile(0.90),
            p95_ns: summary.value_at_quantile(0.95),
            p99_ns: summary.value_at_quantile(0.99),
            p999_ns: summary.value_at_quantile(0.999),
            min_ns: summary.min(),
            max_ns: summary.max(),
        }
    }

    /// Mean in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// 95th percentile in milliseconds.
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns as f64 / 1e6
    }

    /// 99th percentile in milliseconds.
    #[must_use]
    pub fn p99_ms(&self) -> f64 {
        self.p99_ns as f64 / 1e6
    }
}

/// Admission and queue-depth accounting of one run's server-side request queue(s).
///
/// Open-loop overload used to be invisible: the unbounded queue silently absorbed any
/// backlog and only the sojourn tail hinted at it.  Every runner now reports how the
/// queue actually behaved — what was admitted, what a `Drop` policy rejected, how deep
/// the queue got, and a sampled depth timeline — so saturation is a first-class result
/// instead of an inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSummary {
    /// Admission-policy label (`unbounded`, `block(N)`, `drop(N)`).
    pub policy: String,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests rejected by a `Drop` admission policy.
    pub dropped: u64,
    /// Maximum instantaneous queue depth observed at any admission.
    pub peak_depth: u64,
    /// Mean depth over the sampled timeline (0 when no samples were taken).
    pub mean_sampled_depth: f64,
    /// Sampled `(ns since run epoch, depth)` timeline, in time order.
    pub depth_timeline: Vec<(u64, u64)>,
}

impl Default for QueueSummary {
    fn default() -> Self {
        QueueSummary {
            policy: "unbounded".to_string(),
            accepted: 0,
            dropped: 0,
            peak_depth: 0,
            mean_sampled_depth: 0.0,
            depth_timeline: Vec::new(),
        }
    }
}

impl QueueSummary {
    /// Aggregates several queues' summaries (a cluster's per-instance queues) into one:
    /// counts add, peaks max, timelines are dropped (they belong to individual queues).
    #[must_use]
    pub fn aggregate<'a>(summaries: impl IntoIterator<Item = &'a QueueSummary>) -> QueueSummary {
        let mut out = QueueSummary::default();
        let mut first = true;
        for s in summaries {
            if first {
                out.policy = s.policy.clone();
                first = false;
            }
            out.accepted += s.accepted;
            out.dropped += s.dropped;
            out.peak_depth = out.peak_depth.max(s.peak_depth);
        }
        out
    }

    /// Fraction of offered requests the queue rejected (0 when nothing was offered).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let offered = self.accepted + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

/// One labelled latency distribution inside a report — a client class, a load phase, or
/// any other slice of the run's requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledLatency {
    /// Slice label (class name or phase name).
    pub name: String,
    /// Sojourn statistics of the slice.
    pub sojourn: LatencyStats,
}

/// Renders one Markdown table — the single table-rendering implementation shared by
/// [`percentile_table`], the report breakdowns and the figure/table binaries
/// (previously copy-pasted per call site).
#[must_use]
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Renders labelled latency distributions as one Markdown percentile table — used by
/// [`RunReport::breakdown_markdown`], the cluster report's per-shard view and the
/// scenario figure binaries.
#[must_use]
pub fn percentile_table(label_header: &str, rows: &[(String, LatencyStats)]) -> String {
    let ms = |ns: f64| format!("{:.3} ms", ns / 1e6);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, stats)| {
            vec![
                name.clone(),
                stats.count.to_string(),
                ms(stats.mean_ns),
                ms(stats.p50_ns as f64),
                ms(stats.p95_ns as f64),
                ms(stats.p99_ns as f64),
                ms(stats.p999_ns as f64),
                ms(stats.max_ns as f64),
            ]
        })
        .collect();
    markdown_table(
        &[
            label_header,
            "n",
            "mean",
            "p50",
            "p95",
            "p99",
            "p99.9",
            "max",
        ],
        &body,
    )
}

/// The result of one measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Harness configuration name (`integrated`, `loopback`, `networked`, `simulated`).
    pub configuration: String,
    /// Offered load in QPS (absent for closed-loop runs).
    pub offered_qps: Option<f64>,
    /// Achieved throughput over the measured interval in QPS.
    pub achieved_qps: f64,
    /// Number of measured (non-warmup) requests.
    pub requests: u64,
    /// Number of application worker threads.
    pub worker_threads: usize,
    /// Wall-clock (or virtual-clock) span of the measured interval, ns.
    pub duration_ns: u64,
    /// End-to-end latency distribution.
    pub sojourn: LatencyStats,
    /// Service-time distribution.
    pub service: LatencyStats,
    /// Queuing-time distribution.
    pub queue: LatencyStats,
    /// Transport/harness overhead distribution.
    pub overhead: LatencyStats,
    /// Per-client-class sojourn distributions (empty for untagged runs).
    pub per_class: Vec<LabeledLatency>,
    /// Per-load-phase sojourn distributions (empty for untagged runs).
    pub per_phase: Vec<LabeledLatency>,
    /// Request-queue admission and depth accounting (default for paths without a
    /// server-side queue, e.g. closed-loop drivers).
    pub queue_depth: QueueSummary,
    /// Distribution of per-request pacing error: actual minus scheduled issue time.
    /// Empty (`count == 0`) for closed-loop runs and for the discrete-event simulator,
    /// whose virtual clock paces exactly.
    pub pacing: LatencyStats,
}

impl RunReport {
    /// The per-class and per-phase breakdowns rendered as Markdown percentile tables
    /// (empty string for untagged runs).
    #[must_use]
    pub fn breakdown_markdown(&self) -> String {
        let mut out = String::new();
        for (header, rows) in [("class", &self.per_class), ("phase", &self.per_phase)] {
            if !rows.is_empty() {
                let rows: Vec<(String, LatencyStats)> =
                    rows.iter().map(|c| (c.name.clone(), c.sojourn)).collect();
                out.push_str(&percentile_table(header, &rows));
                out.push('\n');
            }
        }
        out
    }

    /// Returns `true` if the run failed to keep up with the offered load (achieved
    /// throughput more than `tolerance` below offered), i.e. the system was saturated.
    #[must_use]
    pub fn is_saturated(&self, tolerance: f64) -> bool {
        match self.offered_qps {
            Some(offered) if offered > 0.0 => self.achieved_qps < offered * (1.0 - tolerance),
            _ => false,
        }
    }

    /// Returns a human-readable warning when the run's p99 pacing error exceeds
    /// `threshold_ns` — the harness fell behind its open-loop schedule badly enough to
    /// distort bursts — and `None` when pacing held (or was not recorded).
    #[must_use]
    pub fn pacing_warning(&self, threshold_ns: u64) -> Option<String> {
        if self.pacing.count > 0 && self.pacing.p99_ns > threshold_ns {
            Some(format!(
                "warning: p99 pacing error {:.3} ms exceeds {:.3} ms ({} issues, max {:.3} ms); \
                 open-loop bursts are skewed — reduce offered load or free up client cores",
                self.pacing.p99_ns as f64 / 1e6,
                threshold_ns as f64 / 1e6,
                self.pacing.count,
                self.pacing.max_ns as f64 / 1e6,
            ))
        } else {
            None
        }
    }

    /// System load: achieved QPS divided by the provided capacity (saturation QPS).
    #[must_use]
    pub fn load(&self, capacity_qps: f64) -> f64 {
        if capacity_qps <= 0.0 {
            0.0
        } else {
            self.offered_qps.unwrap_or(self.achieved_qps) / capacity_qps
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<11} {:>7} thr={} offered={:>10.1} achieved={:>10.1}  p50={:>9.3}ms p95={:>9.3}ms p99={:>9.3}ms mean={:>9.3}ms",
            self.app,
            self.configuration,
            self.requests,
            self.worker_threads,
            self.offered_qps.unwrap_or(f64::NAN),
            self.achieved_qps,
            self.sojourn.p50_ns as f64 / 1e6,
            self.sojourn.p95_ms(),
            self.sojourn.p99_ms(),
            self.sojourn.mean_ms(),
        )
    }
}

/// Bookkeeping of the hedged-request policy over one cluster run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgeStats {
    /// Hedge copies issued (legs whose primary had not responded within the trigger
    /// delay).
    pub issued: u64,
    /// Hedges that won their leg (the copy responded before the primary).
    pub wins: u64,
}

/// The result of one cluster measurement run: the end-to-end (client-observed)
/// distribution plus each shard's own distribution, so the fan-out tail amplification
/// is directly readable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// End-to-end report: a request completes when its last leg completes.
    pub cluster: RunReport,
    /// Per-shard reports, indexed by shard.
    pub per_shard: Vec<RunReport>,
    /// Number of shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// Statistics of the union of all shards' legs (the "typical shard" view).
    pub shard_union_sojourn: LatencyStats,
    /// Hedged-request bookkeeping (`None` when no hedge policy was configured).
    pub hedge: Option<HedgeStats>,
    /// Fan-out requests whose legs never all completed — a run cut short, or legs
    /// partially shed by a `Drop` admission policy.  These requests are *excluded*
    /// from the end-to-end distribution, so a non-zero count flags that the cluster
    /// tail is computed over the surviving (least-loaded) requests only.
    pub unmerged: u64,
}

impl ClusterReport {
    /// The per-shard sojourn distributions as a Markdown percentile table (rendered by
    /// the shared [`percentile_table`] helper).
    #[must_use]
    pub fn per_shard_markdown(&self) -> String {
        let rows: Vec<(String, LatencyStats)> = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, shard)| (format!("shard {i}"), shard.sojourn))
            .collect();
        percentile_table("shard", &rows)
    }

    /// The largest per-shard p99 sojourn, ns.
    #[must_use]
    pub fn max_shard_p99_ns(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|r| r.sojourn.p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Mean of the per-shard p99 sojourns, ns.
    #[must_use]
    pub fn mean_shard_p99_ns(&self) -> f64 {
        if self.per_shard.is_empty() {
            return 0.0;
        }
        self.per_shard
            .iter()
            .map(|r| r.sojourn.p99_ns as f64)
            .sum::<f64>()
            / self.per_shard.len() as f64
    }

    /// Tail amplification: the cluster p99 divided by the mean per-shard p99.  Waiting
    /// for the slowest of N shards pushes the cluster's p99 toward the shards' p99.9+,
    /// so this ratio grows with fan-out (the tail-at-scale effect).
    #[must_use]
    pub fn p99_amplification(&self) -> f64 {
        let shard = self.mean_shard_p99_ns();
        if shard <= 0.0 {
            0.0
        } else {
            self.cluster.sojourn.p99_ns as f64 / shard
        }
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster {}x{}: p99 = {:.3} ms (shard mean p99 = {:.3} ms, amplification {:.2}x)",
            self.shards,
            self.replication,
            self.cluster.sojourn.p99_ms(),
            self.mean_shard_p99_ns() / 1e6,
            self.p99_amplification(),
        )?;
        for (i, shard) in self.per_shard.iter().enumerate() {
            writeln!(f, "  shard {i}: {shard}")?;
        }
        write!(f, "  end-to-end: {}", self.cluster)
    }
}

/// Aggregate of several repeated runs of the same configuration, with the
/// confidence-interval bookkeeping from the paper's methodology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiRunReport {
    /// The individual runs.
    pub runs: Vec<RunReport>,
    /// 95% confidence interval of mean sojourn latency across runs.
    pub mean_ci: ConfidenceInterval,
    /// 95% confidence interval of the 95th-percentile sojourn latency across runs.
    pub p95_ci: ConfidenceInterval,
    /// 95% confidence interval of the 99th-percentile sojourn latency across runs.
    pub p99_ci: ConfidenceInterval,
    /// Whether all tracked metrics converged to the target relative CI width.
    pub converged: bool,
}

impl MultiRunReport {
    /// Builds the aggregate from individual runs and a convergence target (e.g. 0.01 for
    /// the paper's 1% rule).
    #[must_use]
    pub fn from_runs(runs: Vec<RunReport>, target_fraction: f64, min_runs: usize) -> Self {
        let mut mean_series = RunSeries::new("mean_sojourn_ns", target_fraction);
        let mut p95_series = RunSeries::new("p95_sojourn_ns", target_fraction);
        let mut p99_series = RunSeries::new("p99_sojourn_ns", target_fraction);
        for r in &runs {
            mean_series.push(r.sojourn.mean_ns);
            p95_series.push(r.sojourn.p95_ns as f64);
            p99_series.push(r.sojourn.p99_ns as f64);
        }
        let converged = mean_series.converged(min_runs)
            && p95_series.converged(min_runs)
            && p99_series.converged(min_runs);
        MultiRunReport {
            runs,
            mean_ci: mean_series.interval(),
            p95_ci: p95_series.interval(),
            p99_ci: p99_series.interval(),
            converged,
        }
    }

    /// Mean 95th-percentile sojourn latency across runs, in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> f64 {
        self.p95_ci.mean
    }

    /// Mean achieved throughput across runs, in QPS.
    #[must_use]
    pub fn achieved_qps(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.runs.iter().map(|r| r.achieved_qps).sum::<f64>() / self.runs.len() as f64
        }
    }

    /// The most representative single run (the one whose p95 is closest to the mean p95).
    #[must_use]
    pub fn representative_run(&self) -> Option<&RunReport> {
        let target = self.p95_ci.mean;
        self.runs.iter().min_by(|a, b| {
            let da = (a.sojourn.p95_ns as f64 - target).abs();
            let db = (b.sojourn.p95_ns as f64 - target).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p95_ms: f64, offered: f64, achieved: f64) -> RunReport {
        RunReport {
            app: "echo".into(),
            configuration: "integrated".into(),
            offered_qps: Some(offered),
            achieved_qps: achieved,
            requests: 1000,
            worker_threads: 1,
            duration_ns: 1_000_000_000,
            sojourn: LatencyStats {
                count: 1000,
                mean_ns: p95_ms * 0.6e6,
                p50_ns: (p95_ms * 0.5e6) as u64,
                p90_ns: (p95_ms * 0.9e6) as u64,
                p95_ns: (p95_ms * 1e6) as u64,
                p99_ns: (p95_ms * 1.3e6) as u64,
                p999_ns: (p95_ms * 1.8e6) as u64,
                min_ns: 1_000,
                max_ns: (p95_ms * 2e6) as u64,
            },
            service: LatencyStats::default(),
            queue: LatencyStats::default(),
            overhead: LatencyStats::default(),
            per_class: Vec::new(),
            per_phase: Vec::new(),
            queue_depth: QueueSummary::default(),
            pacing: LatencyStats::default(),
        }
    }

    #[test]
    fn latency_stats_from_summary() {
        let mut s = LatencySummary::new();
        for i in 1..=100u64 {
            s.record(i * 1_000_000);
        }
        let stats = LatencyStats::from_summary(&s);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p95_ns, 95_000_000);
        assert!((stats.p95_ms() - 95.0).abs() < 1e-9);
        assert_eq!(stats.min_ns, 1_000_000);
        assert_eq!(stats.max_ns, 100_000_000);
    }

    #[test]
    fn saturation_detection() {
        assert!(!report(2.0, 1000.0, 995.0).is_saturated(0.05));
        assert!(report(50.0, 1000.0, 700.0).is_saturated(0.05));
        let mut closed = report(2.0, 1000.0, 700.0);
        closed.offered_qps = None;
        assert!(!closed.is_saturated(0.05));
    }

    #[test]
    fn load_is_relative_to_capacity() {
        let r = report(2.0, 500.0, 498.0);
        assert!((r.load(1000.0) - 0.5).abs() < 1e-9);
        assert_eq!(r.load(0.0), 0.0);
    }

    #[test]
    fn multi_run_report_aggregates_and_converges() {
        let runs = vec![
            report(2.00, 1000.0, 998.0),
            report(2.01, 1000.0, 997.0),
            report(1.99, 1000.0, 999.0),
            report(2.00, 1000.0, 998.0),
        ];
        let multi = MultiRunReport::from_runs(runs, 0.01, 2);
        assert!(multi.converged);
        assert!((multi.p95_ns() - 2.0e6).abs() < 2e4);
        assert!((multi.achieved_qps() - 998.0).abs() < 1.0);
        assert!(multi.representative_run().is_some());
    }

    #[test]
    fn multi_run_report_detects_non_convergence() {
        let runs = vec![report(2.0, 1000.0, 998.0), report(4.0, 1000.0, 998.0)];
        let multi = MultiRunReport::from_runs(runs, 0.01, 2);
        assert!(!multi.converged);
    }

    #[test]
    fn cluster_report_amplification_is_cluster_over_mean_shard() {
        let cluster = ClusterReport {
            cluster: report(4.0, 1000.0, 998.0),
            per_shard: vec![report(2.0, 1000.0, 998.0), report(2.0, 1000.0, 998.0)],
            shards: 2,
            replication: 1,
            shard_union_sojourn: LatencyStats::default(),
            hedge: None,
            unmerged: 0,
        };
        assert_eq!(cluster.max_shard_p99_ns(), (2.0 * 1.3e6) as u64);
        assert!((cluster.mean_shard_p99_ns() - 2.0 * 1.3e6).abs() < 1.0);
        assert!((cluster.p99_amplification() - 2.0).abs() < 1e-9);
        let s = format!("{cluster}");
        assert!(s.contains("amplification"));
        assert!(s.contains("shard 0"));
    }

    #[test]
    fn empty_cluster_report_is_well_behaved() {
        let cluster = ClusterReport {
            cluster: report(1.0, 100.0, 100.0),
            per_shard: Vec::new(),
            shards: 0,
            replication: 1,
            shard_union_sojourn: LatencyStats::default(),
            hedge: None,
            unmerged: 0,
        };
        assert_eq!(cluster.max_shard_p99_ns(), 0);
        assert_eq!(cluster.mean_shard_p99_ns(), 0.0);
        assert_eq!(cluster.p99_amplification(), 0.0);
    }

    #[test]
    fn percentile_table_renders_every_labelled_row() {
        let mut r = report(2.0, 1000.0, 998.0);
        r.per_class = vec![
            LabeledLatency {
                name: "interactive".into(),
                sojourn: r.sojourn,
            },
            LabeledLatency {
                name: "batch".into(),
                sojourn: r.sojourn,
            },
        ];
        r.per_phase = vec![LabeledLatency {
            name: "burst".into(),
            sojourn: r.sojourn,
        }];
        let md = r.breakdown_markdown();
        assert!(md.contains("| class |"));
        assert!(md.contains("| interactive |"));
        assert!(md.contains("| batch |"));
        assert!(md.contains("| phase |"));
        assert!(md.contains("| burst |"));
        // Header + separator + one row per label, via the single shared renderer.
        let table = percentile_table("x", &[("only".into(), r.sojourn)]);
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("p99.9"));
    }

    #[test]
    fn display_contains_key_fields() {
        let s = format!("{}", report(2.0, 1000.0, 998.0));
        assert!(s.contains("echo"));
        assert!(s.contains("integrated"));
        assert!(s.contains("p95"));
    }

    #[test]
    fn queue_summary_aggregates_counts_and_peaks() {
        let a = QueueSummary {
            policy: "drop(64)".into(),
            accepted: 100,
            dropped: 10,
            peak_depth: 40,
            mean_sampled_depth: 12.0,
            depth_timeline: vec![(0, 1), (1_000, 40)],
        };
        let b = QueueSummary {
            accepted: 50,
            dropped: 0,
            peak_depth: 64,
            ..QueueSummary::default()
        };
        let agg = QueueSummary::aggregate([&a, &b]);
        assert_eq!(agg.policy, "drop(64)");
        assert_eq!(agg.accepted, 150);
        assert_eq!(agg.dropped, 10);
        assert_eq!(agg.peak_depth, 64);
        assert!(agg.depth_timeline.is_empty());
        assert!((a.drop_rate() - 10.0 / 110.0).abs() < 1e-12);
        assert_eq!(QueueSummary::default().drop_rate(), 0.0);
        assert_eq!(QueueSummary::default().policy, "unbounded");
    }

    #[test]
    fn pacing_warning_fires_only_above_threshold() {
        let mut r = report(2.0, 1000.0, 998.0);
        assert!(
            r.pacing_warning(1_000_000).is_none(),
            "empty pacing is quiet"
        );
        r.pacing = LatencyStats {
            count: 500,
            mean_ns: 40_000.0,
            p50_ns: 10_000,
            p90_ns: 100_000,
            p95_ns: 300_000,
            p99_ns: 2_500_000,
            p999_ns: 4_000_000,
            min_ns: 0,
            max_ns: 5_000_000,
        };
        let warn = r.pacing_warning(1_000_000).expect("p99 over threshold");
        assert!(warn.contains("pacing error"), "{warn}");
        assert!(r.pacing_warning(10_000_000).is_none());
    }
}
