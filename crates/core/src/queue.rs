//! The shared request queue.
//!
//! The request queue sits between the traffic shaper / network front-end and the
//! application worker threads (paper Fig. 1).  It stores incoming requests, stamps their
//! enqueue time (from which queuing time is derived) and routes each request's completion
//! to the right place: into the worker's own statistics shard in the integrated
//! configuration, or back to the originating connection in the TCP configurations.
//!
//! Unlike the original unbounded channel, the queue now carries an explicit
//! [`AdmissionPolicy`] and keeps its own accounting: accepted/dropped counts, peak
//! depth, and a sampled depth timeline, all surfaced through a [`QueueObserver`] into
//! the run report.  Open-loop overload is therefore *visible* — either as drops (with
//! `Drop`) or as measured queue growth and producer backpressure (with `Block`) —
//! instead of silently buffered.

use crate::collector::RequestTags;
use crate::report::QueueSummary;
use crate::request::{Request, RequestId, RequestRecord, WorkProfile};
use crate::sync::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Interval between queue-depth timeline samples, in nanoseconds of run time.
const DEPTH_SAMPLE_EVERY_NS: u64 = 1_000_000;

/// Cap on retained timeline samples; when reached, the timeline is decimated 2:1 and
/// the sampling interval doubles, keeping memory bounded for arbitrarily long runs
/// while staying deterministic.
const DEPTH_SAMPLE_CAP: usize = 4096;

/// What the queue does when an arrival finds it at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Bounded queue with producer backpressure: `push` blocks until space frees.
    /// Backpressure delays show up in the run's pacing-error summary.
    Block {
        /// Maximum queued requests.
        capacity: usize,
    },
    /// Bounded queue with load shedding: arrivals beyond `capacity` are rejected and
    /// counted as drops in the run's queue summary.
    Drop {
        /// Maximum queued requests.
        capacity: usize,
    },
    /// SLO-aware load shedding: bounded like `Drop`, and additionally a request whose
    /// queueing delay already exceeds `slo_ns` when it reaches the head of the queue
    /// is shed instead of served — serving it would burn a server on a response the
    /// client has already written off ("The Tail at Scale"'s deadline-aware
    /// admission).  Shed requests are reclassified from accepted to dropped, so
    /// `accepted + dropped == offered` always holds.
    DropDeadline {
        /// Maximum queued requests.
        capacity: usize,
        /// Queueing-delay budget in nanoseconds; a head-of-line request older than
        /// this is shed.
        slo_ns: u64,
    },
    /// Class-aware load shedding: bounded like `Drop`, but when full an arrival of a
    /// *higher* class (lower [`RequestTags`] class index) evicts the youngest queued
    /// request of the lowest class instead of being rejected.  Untagged runs treat
    /// every request as class 0, degenerating to `Drop`.
    Priority {
        /// Maximum queued requests.
        capacity: usize,
    },
}

impl AdmissionPolicy {
    /// The default policy: block-on-full with an effectively unlimited capacity, i.e.
    /// the classic unbounded open-loop queue — but now with depth observability.
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionPolicy::Block {
            capacity: usize::MAX,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match *self {
            AdmissionPolicy::Block { capacity }
            | AdmissionPolicy::Drop { capacity }
            | AdmissionPolicy::DropDeadline { capacity, .. }
            | AdmissionPolicy::Priority { capacity } => capacity,
        }
    }

    /// The capacity at which a shedding policy rejects arrivals, `None` for `Block`
    /// (which backpressures instead of shedding).  The discrete-event simulator keys
    /// off this: every `Some` policy is legal in virtual time because it never blocks
    /// the producer.
    #[must_use]
    pub fn shed_capacity(&self) -> Option<usize> {
        match *self {
            AdmissionPolicy::Block { .. } => None,
            AdmissionPolicy::Drop { capacity }
            | AdmissionPolicy::DropDeadline { capacity, .. }
            | AdmissionPolicy::Priority { capacity } => Some(capacity),
        }
    }

    /// The queueing-delay SLO of a `DropDeadline` policy, `None` otherwise.
    #[must_use]
    pub fn slo_ns(&self) -> Option<u64> {
        match *self {
            AdmissionPolicy::DropDeadline { slo_ns, .. } => Some(slo_ns),
            _ => None,
        }
    }

    /// A short label used in reports (`unbounded`, `block(N)`, `drop(N)`,
    /// `drop-deadline(N,SLOns)`, `priority(N)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Block {
                capacity: usize::MAX,
            } => "unbounded".to_string(),
            AdmissionPolicy::Block { capacity } => format!("block({capacity})"),
            AdmissionPolicy::Drop { capacity } => format!("drop({capacity})"),
            AdmissionPolicy::DropDeadline { capacity, slo_ns } => {
                format!("drop-deadline({capacity},{slo_ns}ns)")
            }
            AdmissionPolicy::Priority { capacity } => format!("priority({capacity})"),
        }
    }
}

/// Picks the queued request a `Priority` policy evicts to make room for an arrival of
/// `incoming_class`: the *youngest* request of the lowest class (highest class index),
/// and only if that class is strictly lower-priority than the arrival.  Returns the
/// victim's index into the queue, or `None` when the arrival itself is the lowest
/// class present (the arrival is then dropped instead).
pub(crate) fn priority_victim(
    classes: impl IntoIterator<Item = u16>,
    incoming_class: u16,
) -> Option<usize> {
    let mut victim: Option<(usize, u16)> = None;
    for (index, class) in classes.into_iter().enumerate() {
        if victim.is_none_or(|(_, worst)| class >= worst) {
            victim = Some((index, class));
        }
    }
    victim.and_then(|(index, class)| (class > incoming_class).then_some(index))
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Depth/admission accounting shared by the real-time queue and the discrete-event
/// simulator's FIFO (both produce the same [`QueueSummary`], so reports are comparable
/// across harness modes).  All updates happen under the owner's lock or on the
/// simulator's single thread — no atomics on the hot path.
#[derive(Debug, Clone)]
pub(crate) struct DepthTracker {
    accepted: u64,
    dropped: u64,
    /// Everything that arrived at the queue, admitted or not.  Kept separately so the
    /// invariant `accepted + dropped == offered` is *checked* rather than true by
    /// construction: a path that forgets to account one side trips the assertion in
    /// [`DepthTracker::summary`] instead of silently skewing drop rates.
    offered: u64,
    peak: u64,
    sample_every_ns: u64,
    next_sample_ns: u64,
    samples: Vec<(u64, u64)>,
}

impl Default for DepthTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl DepthTracker {
    pub(crate) fn new() -> Self {
        DepthTracker {
            accepted: 0,
            dropped: 0,
            offered: 0,
            peak: 0,
            sample_every_ns: DEPTH_SAMPLE_EVERY_NS,
            next_sample_ns: 0,
            samples: Vec::new(),
        }
    }

    /// Records one admitted request observed at `now_ns` with `depth` requests queued
    /// behind it (inclusive).
    pub(crate) fn on_push(&mut self, now_ns: u64, depth: u64) {
        self.accepted += 1;
        self.offered += 1;
        self.peak = self.peak.max(depth);
        if now_ns >= self.next_sample_ns {
            self.samples.push((now_ns, depth));
            // Jump past `now` in whole strides so an idle gap doesn't burst samples.
            let strides = (now_ns - self.next_sample_ns) / self.sample_every_ns + 1;
            self.next_sample_ns += strides * self.sample_every_ns;
            if self.samples.len() >= DEPTH_SAMPLE_CAP {
                // Decimate 2:1 and double the stride: bounded memory, still ordered.
                let mut keep = Vec::with_capacity(self.samples.len() / 2 + 1);
                for (i, s) in self.samples.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(s);
                    }
                }
                self.samples = keep;
                self.sample_every_ns *= 2;
            }
        }
    }

    /// Records one rejected (dropped) request.
    pub(crate) fn on_drop(&mut self) {
        self.dropped += 1;
        self.offered += 1;
    }

    /// Reclassifies one previously-admitted request as dropped: it was accepted into
    /// the queue but shed before service (deadline expiry, priority eviction).  The
    /// request was offered exactly once, so `offered` is untouched and the
    /// `accepted + dropped == offered` invariant is preserved.
    pub(crate) fn on_shed_admitted(&mut self) {
        debug_assert!(
            self.accepted > 0,
            "shed an admitted request before any push"
        );
        self.accepted = self.accepted.saturating_sub(1);
        self.dropped += 1;
    }

    /// The summary of everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if admission accounting leaked: every offered request
    /// must end up accepted or dropped, never both, never neither.
    pub(crate) fn summary(&self, policy_label: String) -> QueueSummary {
        debug_assert_eq!(
            self.accepted + self.dropped,
            self.offered,
            "queue accounting leaked: accepted {} + dropped {} != offered {}",
            self.accepted,
            self.dropped,
            self.offered
        );
        let mean = if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&(_, d)| d as f64).sum::<f64>() / self.samples.len() as f64
        };
        QueueSummary {
            policy: policy_label,
            accepted: self.accepted,
            dropped: self.dropped,
            peak_depth: self.peak,
            mean_sampled_depth: mean,
            depth_timeline: self.samples.clone(),
        }
    }
}

/// Server-side completion information for one request, produced by a worker thread.
#[derive(Debug, Clone)]
pub struct ServerCompletion {
    /// Request identifier.
    pub id: RequestId,
    /// Client issue time (copied from the request).
    pub issued_ns: u64,
    /// Time the request entered the queue.
    pub enqueued_ns: u64,
    /// Time a worker started processing.
    pub started_ns: u64,
    /// Time processing finished.
    pub completed_ns: u64,
    /// Work profile reported by the application.
    pub work: WorkProfile,
    /// Response payload to return to the client.
    pub response_payload: Vec<u8>,
}

impl ServerCompletion {
    /// Converts this completion into a full [`RequestRecord`], given the time the client
    /// received the response.
    #[must_use]
    pub fn into_record(self, client_received_ns: u64) -> RequestRecord {
        RequestRecord {
            id: self.id,
            issued_ns: self.issued_ns,
            enqueued_ns: self.enqueued_ns,
            started_ns: self.started_ns,
            completed_ns: self.completed_ns,
            client_received_ns,
        }
    }
}

/// Where a worker should send a finished request.
#[derive(Debug, Clone)]
pub enum Completion {
    /// Integrated configuration: the client and server share the process, so the
    /// response is considered delivered the moment processing completes.  The worker
    /// records the request straight into its own statistics shard — no cross-thread
    /// send on the critical path.
    Inline,
    /// TCP configurations: the completion is handed to the originating connection's
    /// writer, which serializes the response back to the client.
    Responder(crossbeam::channel::Sender<ServerCompletion>),
}

/// A request sitting in the queue, together with its enqueue timestamp and completion
/// route.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The request itself.
    pub request: Request,
    /// When it entered the queue (ns since the run epoch).
    pub enqueued_ns: u64,
    /// Where to deliver the completion.
    pub completion: Completion,
}

/// The outcome of one [`RequestQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The request was admitted.
    Accepted,
    /// The request was rejected by a `Drop` admission policy (counted in the summary).
    Dropped,
    /// Every worker has already shut down; the run is tearing down.
    Closed,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<QueuedRequest>,
    producers: usize,
    consumers: usize,
    tracker: DepthTracker,
}

#[derive(Debug)]
struct QueueShared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    policy: AdmissionPolicy,
    /// Request class tags consulted by the `Priority` policy (`None` = untagged run,
    /// every request is class 0).
    tags: Option<Arc<RequestTags>>,
}

impl QueueShared {
    fn class_of(&self, id: RequestId) -> u16 {
        self.tags.as_ref().map_or(0, |tags| tags.class_of(id.0))
    }
}

/// The shared request queue: a bounded MPMC FIFO with enqueue-time stamping, an
/// explicit [`AdmissionPolicy`], and built-in depth accounting.
///
/// Each `RequestQueue` value is one producer handle: cloning registers another
/// producer, dropping (or [`RequestQueue::close`]) deregisters it, and consumers
/// observe shutdown once every producer is gone.  Workers pull through the
/// [`QueueReceiver`] returned by [`RequestQueue::receiver`].
#[derive(Debug)]
pub struct RequestQueue {
    shared: Arc<QueueShared>,
}

/// The consumer side of a [`RequestQueue`].
#[derive(Debug)]
pub struct QueueReceiver {
    shared: Arc<QueueShared>,
}

/// A passive handle that can read the queue's accounting after the run tears the
/// producer/consumer handles down.
#[derive(Debug, Clone)]
pub struct QueueObserver {
    shared: Arc<QueueShared>,
}

impl Default for RequestQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestQueue {
    /// Creates an empty queue with the default (unbounded-block) admission policy.
    #[must_use]
    pub fn new() -> Self {
        Self::with_policy(AdmissionPolicy::unbounded())
    }

    /// Creates an empty queue with an explicit admission policy.
    #[must_use]
    pub fn with_policy(policy: AdmissionPolicy) -> Self {
        Self::with_policy_and_tags(policy, None)
    }

    /// Creates an empty queue with an explicit admission policy and the request class
    /// tags the `Priority` policy consults (other policies ignore them).
    #[must_use]
    pub fn with_policy_and_tags(policy: AdmissionPolicy, tags: Option<Arc<RequestTags>>) -> Self {
        RequestQueue {
            shared: Arc::new(QueueShared {
                state: Mutex::new(QueueState {
                    items: VecDeque::new(),
                    producers: 1,
                    consumers: 0,
                    tracker: DepthTracker::new(),
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                policy,
                tags,
            }),
        }
    }

    /// Pushes a request into the queue with the given enqueue timestamp, applying the
    /// queue's admission policy (blocking here under `Block` when the queue is full).
    pub fn push(&self, request: Request, enqueued_ns: u64, completion: Completion) -> PushOutcome {
        let shared = &*self.shared;
        let mut state = lock_recover(&shared.state);
        if state.consumers == 0 {
            // Every worker is gone (teardown, or a worker panic unwound its
            // receiver): pushing would buffer into a queue nobody drains.
            return PushOutcome::Closed;
        }
        let capacity = shared.policy.capacity();
        if state.items.len() >= capacity {
            match shared.policy {
                AdmissionPolicy::Drop { .. } => {
                    state.tracker.on_drop();
                    return PushOutcome::Dropped;
                }
                AdmissionPolicy::DropDeadline { slo_ns, .. } => {
                    // Make room by purging already-expired head-of-line requests
                    // (they would be shed at dequeue anyway); if none have expired
                    // yet, the arrival itself is shed.
                    while state
                        .items
                        .front()
                        .is_some_and(|item| enqueued_ns.saturating_sub(item.enqueued_ns) > slo_ns)
                    {
                        state.items.pop_front();
                        state.tracker.on_shed_admitted();
                    }
                    if state.items.len() >= capacity {
                        state.tracker.on_drop();
                        return PushOutcome::Dropped;
                    }
                }
                AdmissionPolicy::Priority { .. } => {
                    let incoming = shared.class_of(request.id);
                    let victim = priority_victim(
                        state
                            .items
                            .iter()
                            .map(|item| shared.class_of(item.request.id)),
                        incoming,
                    );
                    let Some(victim) = victim else {
                        state.tracker.on_drop();
                        return PushOutcome::Dropped;
                    };
                    state.items.remove(victim);
                    state.tracker.on_shed_admitted();
                }
                AdmissionPolicy::Block { .. } => {
                    while state.items.len() >= capacity {
                        if state.consumers == 0 {
                            return PushOutcome::Closed;
                        }
                        state = wait_recover(&shared.not_full, state);
                    }
                }
            }
        }
        state.items.push_back(QueuedRequest {
            request,
            enqueued_ns,
            completion,
        });
        let depth = state.items.len() as u64;
        state.tracker.on_push(enqueued_ns, depth);
        drop(state);
        shared.not_empty.notify_one();
        PushOutcome::Accepted
    }

    /// The worker-side receiver.
    #[must_use]
    pub fn receiver(&self) -> QueueReceiver {
        let mut state = lock_recover(&self.shared.state);
        state.consumers += 1;
        drop(state);
        QueueReceiver {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A passive observer that survives teardown and reports the queue's accounting.
    #[must_use]
    pub fn observer(&self) -> QueueObserver {
        QueueObserver {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A producer-side handle (used by network front-ends); equivalent to `clone`.
    #[must_use]
    pub fn sender(&self) -> RequestQueue {
        self.clone()
    }

    /// Current queue depth (requests waiting for a worker).
    #[must_use]
    pub fn depth(&self) -> usize {
        lock_recover(&self.shared.state).items.len()
    }

    /// Retracts a queued request by id (the tied-request cancellation path: the other
    /// copy won, so the loser is pulled back out of the queue before a worker picks
    /// it up).  Returns `true` if the request was still queued.  A retracted request
    /// stays counted as accepted — it was admitted and occupied the queue; it is not
    /// an overload shed.
    pub fn cancel(&self, id: RequestId) -> bool {
        let mut state = lock_recover(&self.shared.state);
        let Some(index) = state.items.iter().position(|item| item.request.id == id) else {
            return false;
        };
        state.items.remove(index);
        drop(state);
        self.shared.not_full.notify_one();
        true
    }

    /// Drops this producer handle so workers can observe shutdown once every other
    /// producer has also been dropped.
    pub fn close(self) {
        drop(self);
    }
}

impl Clone for RequestQueue {
    fn clone(&self) -> Self {
        let mut state = lock_recover(&self.shared.state);
        state.producers += 1;
        drop(state);
        RequestQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for RequestQueue {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.shared.state);
        state.producers -= 1;
        let last = state.producers == 0;
        drop(state);
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

/// The error returned by [`QueueReceiver::recv`] once the queue is closed and drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl QueueReceiver {
    /// Blocks until a request is available, returning `Err(QueueClosed)` once every
    /// producer has been dropped and the queue is drained.
    ///
    /// Callers without a clock get no deadline shedding: a `DropDeadline` queue only
    /// sheds expired head-of-line requests through [`QueueReceiver::recv_at`] (and
    /// opportunistically at push time).
    pub fn recv(&self) -> Result<QueuedRequest, QueueClosed> {
        self.recv_at(&|| 0)
    }

    /// Like [`QueueReceiver::recv`], but consults `now_ns` (called after each item
    /// becomes available) so a `DropDeadline` policy can shed head-of-line requests
    /// whose queueing delay already exceeds the SLO instead of serving them.  Shed
    /// requests are reclassified as dropped in the queue summary.
    pub fn recv_at(&self, now_ns: &dyn Fn() -> u64) -> Result<QueuedRequest, QueueClosed> {
        let shared = &*self.shared;
        let mut state = lock_recover(&shared.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                if let AdmissionPolicy::DropDeadline { slo_ns, .. } = shared.policy {
                    if now_ns().saturating_sub(item.enqueued_ns) > slo_ns {
                        state.tracker.on_shed_admitted();
                        shared.not_full.notify_one();
                        continue;
                    }
                }
                drop(state);
                shared.not_full.notify_one();
                return Ok(item);
            }
            if state.producers == 0 {
                return Err(QueueClosed);
            }
            state = wait_recover(&shared.not_empty, state);
        }
    }
}

impl Clone for QueueReceiver {
    fn clone(&self) -> Self {
        let mut state = lock_recover(&self.shared.state);
        state.consumers += 1;
        drop(state);
        QueueReceiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for QueueReceiver {
    fn drop(&mut self) {
        let mut state = lock_recover(&self.shared.state);
        state.consumers -= 1;
        let last = state.consumers == 0;
        drop(state);
        if last {
            // Unblock producers stuck in Block-on-full so they can observe Closed.
            self.shared.not_full.notify_all();
        }
    }
}

impl QueueObserver {
    /// The queue's admission/depth summary so far (complete once producers closed).
    #[must_use]
    pub fn summary(&self) -> QueueSummary {
        let state = lock_recover(&self.shared.state);
        state.tracker.summary(self.shared.policy.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn request(id: u64) -> Request {
        Request {
            id: RequestId(id),
            payload: vec![id as u8],
            issued_ns: id * 10,
        }
    }

    #[test]
    fn push_and_receive_preserves_order_and_depth() {
        let q = RequestQueue::new();
        let rx = q.receiver();
        assert_eq!(
            q.push(request(1), 100, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(2), 200, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(q.depth(), 2);
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a.request.id, RequestId(1));
        assert_eq!(a.enqueued_ns, 100);
        assert_eq!(b.request.id, RequestId(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn completion_converts_to_record() {
        let c = ServerCompletion {
            id: RequestId(5),
            issued_ns: 10,
            enqueued_ns: 20,
            started_ns: 30,
            completed_ns: 50,
            work: WorkProfile::default(),
            response_payload: vec![1, 2, 3],
        };
        let r = c.into_record(60);
        assert_eq!(r.queue_ns(), 10);
        assert_eq!(r.service_ns(), 20);
        assert_eq!(r.sojourn_ns(), 50);
    }

    #[test]
    fn receivers_see_channel_close() {
        let q = RequestQueue::new();
        let rx = q.receiver();
        q.close();
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drop_policy_sheds_load_and_counts_it() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Drop { capacity: 2 });
        let observer = q.observer();
        let _rx = q.receiver();
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(1), 10, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(2), 20, Completion::Inline),
            PushOutcome::Dropped
        );
        assert_eq!(q.depth(), 2);
        let summary = observer.summary();
        assert_eq!(summary.policy, "drop(2)");
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.dropped, 1);
        assert_eq!(summary.peak_depth, 2);
        assert!((summary.drop_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn block_policy_applies_backpressure_until_a_worker_drains() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Block { capacity: 1 });
        let rx = q.receiver();
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Accepted
        );
        // A second push must block until the consumer drains one item.
        let producer = q.clone();
        let handle = std::thread::spawn(move || producer.push(request(1), 5, Completion::Inline));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "push must block at capacity");
        let first = rx.recv().unwrap();
        assert_eq!(first.request.id, RequestId(0));
        assert_eq!(handle.join().unwrap(), PushOutcome::Accepted);
        assert_eq!(rx.recv().unwrap().request.id, RequestId(1));
    }

    #[test]
    fn pushes_fail_once_every_consumer_is_gone() {
        // A worker panic drops its receiver; with no consumers left, even an
        // unbounded queue must refuse new work instead of buffering it forever.
        let q = RequestQueue::new();
        let rx = q.receiver();
        drop(rx);
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Closed
        );
    }

    #[test]
    fn blocked_producers_unblock_on_consumer_shutdown() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Block { capacity: 1 });
        let rx = q.receiver();
        let _ = q.push(request(0), 0, Completion::Inline);
        let producer = q.clone();
        let handle = std::thread::spawn(move || producer.push(request(1), 5, Completion::Inline));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), PushOutcome::Closed);
    }

    #[test]
    fn depth_tracker_samples_a_bounded_deterministic_timeline() {
        let mut tracker = DepthTracker::new();
        // Push far more often than the cap at one push per sample interval: the
        // decimation must keep the timeline bounded and ordered.
        for i in 0..20_000u64 {
            tracker.on_push(i * DEPTH_SAMPLE_EVERY_NS, i % 97);
        }
        let summary = tracker.summary("unbounded".into());
        assert_eq!(summary.accepted, 20_000);
        assert!(summary.depth_timeline.len() < DEPTH_SAMPLE_CAP);
        assert!(!summary.depth_timeline.is_empty());
        assert!(summary.depth_timeline.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(summary.peak_depth, 96);
        assert!(summary.mean_sampled_depth > 0.0);
        // Deterministic: the same pushes produce the same timeline.
        let mut again = DepthTracker::new();
        for i in 0..20_000u64 {
            again.on_push(i * DEPTH_SAMPLE_EVERY_NS, i % 97);
        }
        assert_eq!(
            again.summary("unbounded".into()).depth_timeline,
            summary.depth_timeline
        );
    }

    #[test]
    fn admission_policy_labels() {
        assert_eq!(AdmissionPolicy::unbounded().label(), "unbounded");
        assert_eq!(AdmissionPolicy::Block { capacity: 64 }.label(), "block(64)");
        assert_eq!(AdmissionPolicy::Drop { capacity: 128 }.label(), "drop(128)");
        assert_eq!(
            AdmissionPolicy::DropDeadline {
                capacity: 64,
                slo_ns: 5_000_000
            }
            .label(),
            "drop-deadline(64,5000000ns)"
        );
        assert_eq!(
            AdmissionPolicy::Priority { capacity: 32 }.label(),
            "priority(32)"
        );
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::unbounded());
        assert_eq!(AdmissionPolicy::unbounded().shed_capacity(), None);
        assert_eq!(
            AdmissionPolicy::Priority { capacity: 32 }.shed_capacity(),
            Some(32)
        );
        assert_eq!(
            AdmissionPolicy::DropDeadline {
                capacity: 8,
                slo_ns: 9
            }
            .slo_ns(),
            Some(9)
        );
    }

    #[test]
    fn deadline_policy_sheds_expired_head_of_line_requests_at_dequeue() {
        let q = RequestQueue::with_policy(AdmissionPolicy::DropDeadline {
            capacity: 16,
            slo_ns: 100,
        });
        let observer = q.observer();
        let rx = q.receiver();
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(1), 10, Completion::Inline),
            PushOutcome::Accepted
        );
        // At t=500 request 0 has queued 500 ns > 100 ns SLO and must be shed;
        // request 1 (490 ns) is also expired; nothing valid remains until a fresh
        // push arrives.
        assert_eq!(
            q.push(request(2), 500, Completion::Inline),
            PushOutcome::Accepted
        );
        let served = rx.recv_at(&|| 550).unwrap();
        assert_eq!(served.request.id, RequestId(2));
        let summary = observer.summary();
        assert_eq!(summary.accepted, 1);
        assert_eq!(summary.dropped, 2);
        assert!((summary.drop_rate() - 2.0 / 3.0).abs() < 1e-12);
        // recv() without a clock never sheds.
        let q2 = RequestQueue::with_policy(AdmissionPolicy::DropDeadline {
            capacity: 16,
            slo_ns: 100,
        });
        let rx2 = q2.receiver();
        let _ = q2.push(request(7), 0, Completion::Inline);
        assert_eq!(rx2.recv().unwrap().request.id, RequestId(7));
    }

    #[test]
    fn deadline_policy_purges_expired_requests_to_admit_fresh_ones_when_full() {
        let q = RequestQueue::with_policy(AdmissionPolicy::DropDeadline {
            capacity: 2,
            slo_ns: 100,
        });
        let observer = q.observer();
        let _rx = q.receiver();
        let _ = q.push(request(0), 0, Completion::Inline);
        let _ = q.push(request(1), 10, Completion::Inline);
        // Queue is full, but both residents are long expired at t=1000: the arrival
        // evicts them instead of being rejected.
        assert_eq!(
            q.push(request(2), 1_000, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(q.depth(), 1);
        let summary = observer.summary();
        assert_eq!(summary.accepted, 1);
        assert_eq!(summary.dropped, 2);
        // A full queue of *fresh* requests still sheds the arrival itself.
        let _ = q.push(request(3), 1_001, Completion::Inline);
        assert_eq!(
            q.push(request(4), 1_002, Completion::Inline),
            PushOutcome::Dropped
        );
    }

    #[test]
    fn priority_policy_evicts_the_youngest_lowest_class_first() {
        // Requests 0..6: ids 0,2,4 are class 0 (high priority), ids 1,3,5 class 1.
        let tags = Arc::new(RequestTags::new(
            vec!["interactive".into(), "batch".into()],
            vec!["all".into()],
            vec![0, 1, 0, 1, 0, 1],
            vec![0; 6],
        ));
        let q = RequestQueue::with_policy_and_tags(
            AdmissionPolicy::Priority { capacity: 2 },
            Some(tags),
        );
        let observer = q.observer();
        let rx = q.receiver();
        let _ = q.push(request(1), 0, Completion::Inline); // batch
        let _ = q.push(request(3), 1, Completion::Inline); // batch
                                                           // A high-priority arrival evicts the *youngest* batch request (id 3).
        assert_eq!(
            q.push(request(0), 2, Completion::Inline),
            PushOutcome::Accepted
        );
        // A batch arrival into a full queue with an equal-class resident is dropped
        // (never evicts its own class).
        assert_eq!(
            q.push(request(5), 3, Completion::Inline),
            PushOutcome::Dropped
        );
        assert_eq!(rx.recv().unwrap().request.id, RequestId(1));
        assert_eq!(rx.recv().unwrap().request.id, RequestId(0));
        let summary = observer.summary();
        assert_eq!(summary.policy, "priority(2)");
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.dropped, 2);
    }

    #[test]
    fn priority_victim_prefers_the_youngest_of_the_lowest_class() {
        assert_eq!(priority_victim([1, 2, 2, 0], 0), Some(2));
        assert_eq!(priority_victim([1, 1], 1), None, "never evicts equal class");
        assert_eq!(
            priority_victim([0, 0], 1),
            None,
            "never evicts higher classes"
        );
        assert_eq!(priority_victim(Vec::<u16>::new(), 0), None);
        assert_eq!(priority_victim([3], 2), Some(0));
    }

    #[test]
    fn cancel_retracts_a_queued_request_without_touching_drop_accounting() {
        let q = RequestQueue::new();
        let observer = q.observer();
        let rx = q.receiver();
        let _ = q.push(request(0), 0, Completion::Inline);
        let _ = q.push(request(1), 1, Completion::Inline);
        assert!(q.cancel(RequestId(0)));
        assert!(!q.cancel(RequestId(0)), "already retracted");
        assert!(!q.cancel(RequestId(9)), "never queued");
        assert_eq!(rx.recv().unwrap().request.id, RequestId(1));
        let summary = observer.summary();
        assert_eq!(summary.accepted, 2, "retraction is not an overload shed");
        assert_eq!(summary.dropped, 0);
    }
}
