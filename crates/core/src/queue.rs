//! The shared request queue.
//!
//! The request queue sits between the traffic shaper / network front-end and the
//! application worker threads (paper Fig. 1).  It stores incoming requests, stamps their
//! enqueue time (from which queuing time is derived) and routes each request's completion
//! to the right place: into the worker's own statistics shard in the integrated
//! configuration, or back to the originating connection in the TCP configurations.
//!
//! Unlike the original unbounded channel, the queue now carries an explicit
//! [`AdmissionPolicy`] and keeps its own accounting: accepted/dropped counts, peak
//! depth, and a sampled depth timeline, all surfaced through a [`QueueObserver`] into
//! the run report.  Open-loop overload is therefore *visible* — either as drops (with
//! `Drop`) or as measured queue growth and producer backpressure (with `Block`) —
//! instead of silently buffered.

use crate::report::QueueSummary;
use crate::request::{Request, RequestId, RequestRecord, WorkProfile};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Interval between queue-depth timeline samples, in nanoseconds of run time.
const DEPTH_SAMPLE_EVERY_NS: u64 = 1_000_000;

/// Cap on retained timeline samples; when reached, the timeline is decimated 2:1 and
/// the sampling interval doubles, keeping memory bounded for arbitrarily long runs
/// while staying deterministic.
const DEPTH_SAMPLE_CAP: usize = 4096;

/// What the queue does when an arrival finds it at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Bounded queue with producer backpressure: `push` blocks until space frees.
    /// Backpressure delays show up in the run's pacing-error summary.
    Block {
        /// Maximum queued requests.
        capacity: usize,
    },
    /// Bounded queue with load shedding: arrivals beyond `capacity` are rejected and
    /// counted as drops in the run's queue summary.
    Drop {
        /// Maximum queued requests.
        capacity: usize,
    },
}

impl AdmissionPolicy {
    /// The default policy: block-on-full with an effectively unlimited capacity, i.e.
    /// the classic unbounded open-loop queue — but now with depth observability.
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionPolicy::Block {
            capacity: usize::MAX,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match *self {
            AdmissionPolicy::Block { capacity } | AdmissionPolicy::Drop { capacity } => capacity,
        }
    }

    /// A short label used in reports (`unbounded`, `block(N)`, `drop(N)`).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Block {
                capacity: usize::MAX,
            } => "unbounded".to_string(),
            AdmissionPolicy::Block { capacity } => format!("block({capacity})"),
            AdmissionPolicy::Drop { capacity } => format!("drop({capacity})"),
        }
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Depth/admission accounting shared by the real-time queue and the discrete-event
/// simulator's FIFO (both produce the same [`QueueSummary`], so reports are comparable
/// across harness modes).  All updates happen under the owner's lock or on the
/// simulator's single thread — no atomics on the hot path.
#[derive(Debug, Clone)]
pub(crate) struct DepthTracker {
    accepted: u64,
    dropped: u64,
    peak: u64,
    sample_every_ns: u64,
    next_sample_ns: u64,
    samples: Vec<(u64, u64)>,
}

impl DepthTracker {
    pub(crate) fn new() -> Self {
        DepthTracker {
            accepted: 0,
            dropped: 0,
            peak: 0,
            sample_every_ns: DEPTH_SAMPLE_EVERY_NS,
            next_sample_ns: 0,
            samples: Vec::new(),
        }
    }

    /// Records one admitted request observed at `now_ns` with `depth` requests queued
    /// behind it (inclusive).
    pub(crate) fn on_push(&mut self, now_ns: u64, depth: u64) {
        self.accepted += 1;
        self.peak = self.peak.max(depth);
        if now_ns >= self.next_sample_ns {
            self.samples.push((now_ns, depth));
            // Jump past `now` in whole strides so an idle gap doesn't burst samples.
            let strides = (now_ns - self.next_sample_ns) / self.sample_every_ns + 1;
            self.next_sample_ns += strides * self.sample_every_ns;
            if self.samples.len() >= DEPTH_SAMPLE_CAP {
                // Decimate 2:1 and double the stride: bounded memory, still ordered.
                let mut keep = Vec::with_capacity(self.samples.len() / 2 + 1);
                for (i, s) in self.samples.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(s);
                    }
                }
                self.samples = keep;
                self.sample_every_ns *= 2;
            }
        }
    }

    /// Records one rejected (dropped) request.
    pub(crate) fn on_drop(&mut self) {
        self.dropped += 1;
    }

    /// The summary of everything recorded so far.
    pub(crate) fn summary(&self, policy_label: String) -> QueueSummary {
        let mean = if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&(_, d)| d as f64).sum::<f64>() / self.samples.len() as f64
        };
        QueueSummary {
            policy: policy_label,
            accepted: self.accepted,
            dropped: self.dropped,
            peak_depth: self.peak,
            mean_sampled_depth: mean,
            depth_timeline: self.samples.clone(),
        }
    }
}

/// Server-side completion information for one request, produced by a worker thread.
#[derive(Debug, Clone)]
pub struct ServerCompletion {
    /// Request identifier.
    pub id: RequestId,
    /// Client issue time (copied from the request).
    pub issued_ns: u64,
    /// Time the request entered the queue.
    pub enqueued_ns: u64,
    /// Time a worker started processing.
    pub started_ns: u64,
    /// Time processing finished.
    pub completed_ns: u64,
    /// Work profile reported by the application.
    pub work: WorkProfile,
    /// Response payload to return to the client.
    pub response_payload: Vec<u8>,
}

impl ServerCompletion {
    /// Converts this completion into a full [`RequestRecord`], given the time the client
    /// received the response.
    #[must_use]
    pub fn into_record(self, client_received_ns: u64) -> RequestRecord {
        RequestRecord {
            id: self.id,
            issued_ns: self.issued_ns,
            enqueued_ns: self.enqueued_ns,
            started_ns: self.started_ns,
            completed_ns: self.completed_ns,
            client_received_ns,
        }
    }
}

/// Where a worker should send a finished request.
#[derive(Debug, Clone)]
pub enum Completion {
    /// Integrated configuration: the client and server share the process, so the
    /// response is considered delivered the moment processing completes.  The worker
    /// records the request straight into its own statistics shard — no cross-thread
    /// send on the critical path.
    Inline,
    /// TCP configurations: the completion is handed to the originating connection's
    /// writer, which serializes the response back to the client.
    Responder(crossbeam::channel::Sender<ServerCompletion>),
}

/// A request sitting in the queue, together with its enqueue timestamp and completion
/// route.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The request itself.
    pub request: Request,
    /// When it entered the queue (ns since the run epoch).
    pub enqueued_ns: u64,
    /// Where to deliver the completion.
    pub completion: Completion,
}

/// The outcome of one [`RequestQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The request was admitted.
    Accepted,
    /// The request was rejected by a `Drop` admission policy (counted in the summary).
    Dropped,
    /// Every worker has already shut down; the run is tearing down.
    Closed,
}

#[derive(Debug)]
struct QueueState {
    items: VecDeque<QueuedRequest>,
    producers: usize,
    consumers: usize,
    tracker: DepthTracker,
}

#[derive(Debug)]
struct QueueShared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    policy: AdmissionPolicy,
}

/// The shared request queue: a bounded MPMC FIFO with enqueue-time stamping, an
/// explicit [`AdmissionPolicy`], and built-in depth accounting.
///
/// Each `RequestQueue` value is one producer handle: cloning registers another
/// producer, dropping (or [`RequestQueue::close`]) deregisters it, and consumers
/// observe shutdown once every producer is gone.  Workers pull through the
/// [`QueueReceiver`] returned by [`RequestQueue::receiver`].
#[derive(Debug)]
pub struct RequestQueue {
    shared: Arc<QueueShared>,
}

/// The consumer side of a [`RequestQueue`].
#[derive(Debug)]
pub struct QueueReceiver {
    shared: Arc<QueueShared>,
}

/// A passive handle that can read the queue's accounting after the run tears the
/// producer/consumer handles down.
#[derive(Debug, Clone)]
pub struct QueueObserver {
    shared: Arc<QueueShared>,
}

impl Default for RequestQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestQueue {
    /// Creates an empty queue with the default (unbounded-block) admission policy.
    #[must_use]
    pub fn new() -> Self {
        Self::with_policy(AdmissionPolicy::unbounded())
    }

    /// Creates an empty queue with an explicit admission policy.
    #[must_use]
    pub fn with_policy(policy: AdmissionPolicy) -> Self {
        RequestQueue {
            shared: Arc::new(QueueShared {
                state: Mutex::new(QueueState {
                    items: VecDeque::new(),
                    producers: 1,
                    consumers: 0,
                    tracker: DepthTracker::new(),
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                policy,
            }),
        }
    }

    /// Pushes a request into the queue with the given enqueue timestamp, applying the
    /// queue's admission policy (blocking here under `Block` when the queue is full).
    pub fn push(&self, request: Request, enqueued_ns: u64, completion: Completion) -> PushOutcome {
        let shared = &*self.shared;
        let mut state = shared.state.lock().expect("request queue poisoned");
        if state.consumers == 0 {
            // Every worker is gone (teardown, or a worker panic unwound its
            // receiver): pushing would buffer into a queue nobody drains.
            return PushOutcome::Closed;
        }
        let capacity = shared.policy.capacity();
        if state.items.len() >= capacity {
            match shared.policy {
                AdmissionPolicy::Drop { .. } => {
                    state.tracker.on_drop();
                    return PushOutcome::Dropped;
                }
                AdmissionPolicy::Block { .. } => {
                    while state.items.len() >= capacity {
                        if state.consumers == 0 {
                            return PushOutcome::Closed;
                        }
                        state = shared.not_full.wait(state).expect("request queue poisoned");
                    }
                }
            }
        }
        state.items.push_back(QueuedRequest {
            request,
            enqueued_ns,
            completion,
        });
        let depth = state.items.len() as u64;
        state.tracker.on_push(enqueued_ns, depth);
        drop(state);
        shared.not_empty.notify_one();
        PushOutcome::Accepted
    }

    /// The worker-side receiver.
    #[must_use]
    pub fn receiver(&self) -> QueueReceiver {
        let mut state = self.shared.state.lock().expect("request queue poisoned");
        state.consumers += 1;
        drop(state);
        QueueReceiver {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A passive observer that survives teardown and reports the queue's accounting.
    #[must_use]
    pub fn observer(&self) -> QueueObserver {
        QueueObserver {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A producer-side handle (used by network front-ends); equivalent to `clone`.
    #[must_use]
    pub fn sender(&self) -> RequestQueue {
        self.clone()
    }

    /// Current queue depth (requests waiting for a worker).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("request queue poisoned")
            .items
            .len()
    }

    /// Drops this producer handle so workers can observe shutdown once every other
    /// producer has also been dropped.
    pub fn close(self) {
        drop(self);
    }
}

impl Clone for RequestQueue {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().expect("request queue poisoned");
        state.producers += 1;
        drop(state);
        RequestQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for RequestQueue {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("request queue poisoned");
        state.producers -= 1;
        let last = state.producers == 0;
        drop(state);
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

/// The error returned by [`QueueReceiver::recv`] once the queue is closed and drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl QueueReceiver {
    /// Blocks until a request is available, returning `Err(QueueClosed)` once every
    /// producer has been dropped and the queue is drained.
    pub fn recv(&self) -> Result<QueuedRequest, QueueClosed> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().expect("request queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(item);
            }
            if state.producers == 0 {
                return Err(QueueClosed);
            }
            state = shared
                .not_empty
                .wait(state)
                .expect("request queue poisoned");
        }
    }
}

impl Clone for QueueReceiver {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().expect("request queue poisoned");
        state.consumers += 1;
        drop(state);
        QueueReceiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for QueueReceiver {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("request queue poisoned");
        state.consumers -= 1;
        let last = state.consumers == 0;
        drop(state);
        if last {
            // Unblock producers stuck in Block-on-full so they can observe Closed.
            self.shared.not_full.notify_all();
        }
    }
}

impl QueueObserver {
    /// The queue's admission/depth summary so far (complete once producers closed).
    #[must_use]
    pub fn summary(&self) -> QueueSummary {
        let state = self.shared.state.lock().expect("request queue poisoned");
        state.tracker.summary(self.shared.policy.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn request(id: u64) -> Request {
        Request {
            id: RequestId(id),
            payload: vec![id as u8],
            issued_ns: id * 10,
        }
    }

    #[test]
    fn push_and_receive_preserves_order_and_depth() {
        let q = RequestQueue::new();
        let rx = q.receiver();
        assert_eq!(
            q.push(request(1), 100, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(2), 200, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(q.depth(), 2);
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a.request.id, RequestId(1));
        assert_eq!(a.enqueued_ns, 100);
        assert_eq!(b.request.id, RequestId(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn completion_converts_to_record() {
        let c = ServerCompletion {
            id: RequestId(5),
            issued_ns: 10,
            enqueued_ns: 20,
            started_ns: 30,
            completed_ns: 50,
            work: WorkProfile::default(),
            response_payload: vec![1, 2, 3],
        };
        let r = c.into_record(60);
        assert_eq!(r.queue_ns(), 10);
        assert_eq!(r.service_ns(), 20);
        assert_eq!(r.sojourn_ns(), 50);
    }

    #[test]
    fn receivers_see_channel_close() {
        let q = RequestQueue::new();
        let rx = q.receiver();
        q.close();
        assert!(rx.recv().is_err());
    }

    #[test]
    fn drop_policy_sheds_load_and_counts_it() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Drop { capacity: 2 });
        let observer = q.observer();
        let _rx = q.receiver();
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(1), 10, Completion::Inline),
            PushOutcome::Accepted
        );
        assert_eq!(
            q.push(request(2), 20, Completion::Inline),
            PushOutcome::Dropped
        );
        assert_eq!(q.depth(), 2);
        let summary = observer.summary();
        assert_eq!(summary.policy, "drop(2)");
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.dropped, 1);
        assert_eq!(summary.peak_depth, 2);
        assert!((summary.drop_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn block_policy_applies_backpressure_until_a_worker_drains() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Block { capacity: 1 });
        let rx = q.receiver();
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Accepted
        );
        // A second push must block until the consumer drains one item.
        let producer = q.clone();
        let handle = std::thread::spawn(move || producer.push(request(1), 5, Completion::Inline));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "push must block at capacity");
        let first = rx.recv().unwrap();
        assert_eq!(first.request.id, RequestId(0));
        assert_eq!(handle.join().unwrap(), PushOutcome::Accepted);
        assert_eq!(rx.recv().unwrap().request.id, RequestId(1));
    }

    #[test]
    fn pushes_fail_once_every_consumer_is_gone() {
        // A worker panic drops its receiver; with no consumers left, even an
        // unbounded queue must refuse new work instead of buffering it forever.
        let q = RequestQueue::new();
        let rx = q.receiver();
        drop(rx);
        assert_eq!(
            q.push(request(0), 0, Completion::Inline),
            PushOutcome::Closed
        );
    }

    #[test]
    fn blocked_producers_unblock_on_consumer_shutdown() {
        let q = RequestQueue::with_policy(AdmissionPolicy::Block { capacity: 1 });
        let rx = q.receiver();
        let _ = q.push(request(0), 0, Completion::Inline);
        let producer = q.clone();
        let handle = std::thread::spawn(move || producer.push(request(1), 5, Completion::Inline));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), PushOutcome::Closed);
    }

    #[test]
    fn depth_tracker_samples_a_bounded_deterministic_timeline() {
        let mut tracker = DepthTracker::new();
        // Push far more often than the cap at one push per sample interval: the
        // decimation must keep the timeline bounded and ordered.
        for i in 0..20_000u64 {
            tracker.on_push(i * DEPTH_SAMPLE_EVERY_NS, i % 97);
        }
        let summary = tracker.summary("unbounded".into());
        assert_eq!(summary.accepted, 20_000);
        assert!(summary.depth_timeline.len() < DEPTH_SAMPLE_CAP);
        assert!(!summary.depth_timeline.is_empty());
        assert!(summary.depth_timeline.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(summary.peak_depth, 96);
        assert!(summary.mean_sampled_depth > 0.0);
        // Deterministic: the same pushes produce the same timeline.
        let mut again = DepthTracker::new();
        for i in 0..20_000u64 {
            again.on_push(i * DEPTH_SAMPLE_EVERY_NS, i % 97);
        }
        assert_eq!(
            again.summary("unbounded".into()).depth_timeline,
            summary.depth_timeline
        );
    }

    #[test]
    fn admission_policy_labels() {
        assert_eq!(AdmissionPolicy::unbounded().label(), "unbounded");
        assert_eq!(AdmissionPolicy::Block { capacity: 64 }.label(), "block(64)");
        assert_eq!(AdmissionPolicy::Drop { capacity: 128 }.label(), "drop(128)");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::unbounded());
    }
}
