//! The shared request queue.
//!
//! The request queue sits between the traffic shaper / network front-end and the
//! application worker threads (paper Fig. 1).  It stores incoming requests, stamps their
//! enqueue time (from which queuing time is derived) and routes each request's completion
//! to the right place: directly to the statistics collector in the integrated
//! configuration, or back to the originating connection in the TCP configurations.

use crate::request::{Request, RequestId, RequestRecord, WorkProfile};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Server-side completion information for one request, produced by a worker thread.
#[derive(Debug, Clone)]
pub struct ServerCompletion {
    /// Request identifier.
    pub id: RequestId,
    /// Client issue time (copied from the request).
    pub issued_ns: u64,
    /// Time the request entered the queue.
    pub enqueued_ns: u64,
    /// Time a worker started processing.
    pub started_ns: u64,
    /// Time processing finished.
    pub completed_ns: u64,
    /// Work profile reported by the application.
    pub work: WorkProfile,
    /// Response payload to return to the client.
    pub response_payload: Vec<u8>,
}

impl ServerCompletion {
    /// Converts this completion into a full [`RequestRecord`], given the time the client
    /// received the response.
    #[must_use]
    pub fn into_record(self, client_received_ns: u64) -> RequestRecord {
        RequestRecord {
            id: self.id,
            issued_ns: self.issued_ns,
            enqueued_ns: self.enqueued_ns,
            started_ns: self.started_ns,
            completed_ns: self.completed_ns,
            client_received_ns,
        }
    }
}

/// Where a worker should send a finished request.
#[derive(Debug, Clone)]
pub enum Completion {
    /// Integrated configuration: the client and server share the process, so the
    /// response is considered delivered the moment processing completes.  The record is
    /// forwarded straight to the statistics collector.
    Collector(Sender<RequestRecord>),
    /// TCP configurations: the completion is handed to the originating connection's
    /// writer, which serializes the response back to the client.
    Responder(Sender<ServerCompletion>),
}

/// A request sitting in the queue, together with its enqueue timestamp and completion
/// route.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The request itself.
    pub request: Request,
    /// When it entered the queue (ns since the run epoch).
    pub enqueued_ns: u64,
    /// Where to deliver the completion.
    pub completion: Completion,
}

/// The shared request queue: an unbounded MPMC channel with enqueue-time stamping.
///
/// Cloning the handle is cheap; producers push with [`RequestQueue::push`], workers pull
/// via the receiver returned by [`RequestQueue::receiver`].
#[derive(Debug, Clone)]
pub struct RequestQueue {
    tx: Sender<QueuedRequest>,
    rx: Receiver<QueuedRequest>,
}

impl Default for RequestQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        RequestQueue { tx, rx }
    }

    /// Pushes a request into the queue with the given enqueue timestamp.
    ///
    /// Returns `false` if all workers have already shut down (the run is being torn
    /// down), in which case the request is dropped.
    pub fn push(&self, request: Request, enqueued_ns: u64, completion: Completion) -> bool {
        self.tx
            .send(QueuedRequest {
                request,
                enqueued_ns,
                completion,
            })
            .is_ok()
    }

    /// The worker-side receiver.
    #[must_use]
    pub fn receiver(&self) -> Receiver<QueuedRequest> {
        self.rx.clone()
    }

    /// A producer-side sender handle (used by network front-ends).
    #[must_use]
    pub fn sender(&self) -> Sender<QueuedRequest> {
        self.tx.clone()
    }

    /// Current queue depth (requests waiting for a worker).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.rx.len()
    }

    /// Drops the producer handle held by this instance so workers can observe shutdown
    /// once every other producer has also been dropped.
    pub fn close(self) {
        drop(self.tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn request(id: u64) -> Request {
        Request {
            id: RequestId(id),
            payload: vec![id as u8],
            issued_ns: id * 10,
        }
    }

    #[test]
    fn push_and_receive_preserves_order_and_depth() {
        let q = RequestQueue::new();
        let (tx, _rx) = unbounded();
        assert!(q.push(request(1), 100, Completion::Collector(tx.clone())));
        assert!(q.push(request(2), 200, Completion::Collector(tx)));
        assert_eq!(q.depth(), 2);
        let rx = q.receiver();
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a.request.id, RequestId(1));
        assert_eq!(a.enqueued_ns, 100);
        assert_eq!(b.request.id, RequestId(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn completion_converts_to_record() {
        let c = ServerCompletion {
            id: RequestId(5),
            issued_ns: 10,
            enqueued_ns: 20,
            started_ns: 30,
            completed_ns: 50,
            work: WorkProfile::default(),
            response_payload: vec![1, 2, 3],
        };
        let r = c.into_record(60);
        assert_eq!(r.queue_ns(), 10);
        assert_eq!(r.service_ns(), 20);
        assert_eq!(r.sojourn_ns(), 50);
    }

    #[test]
    fn receivers_see_channel_close() {
        let q = RequestQueue::new();
        let rx = q.receiver();
        q.close();
        assert!(rx.recv().is_err());
    }
}
