//! Pooled request/response buffers for the real-time hot paths.
//!
//! The TCP configurations used to allocate a fresh `Vec<u8>` for every request frame
//! read on the server, every response frame read on the client, and every fan-out leg
//! cloned by the cluster router.  At a few hundred thousand requests per second those
//! allocations (and the frees on the other side of the queue) are harness overhead
//! charged to the measured latencies — exactly the perturbation §IV of the paper says
//! the harness must not introduce.  A [`BufferPool`] recycles payload buffers through
//! the request cycle instead: readers take buffers out, workers and writers put them
//! back once the payload has been consumed, and the steady state performs zero
//! payload allocations.
//!
//! The pool is deliberately simple — a mutex-guarded stack of retired buffers — because
//! it is touched once or twice per request, far from every byte copied.  Hit/miss
//! counters are kept so the recycling rate is observable rather than assumed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock_recover;

/// Default cap on retired buffers kept alive (beyond it, `recycle` just frees).
const DEFAULT_MAX_BUFFERS: usize = 4096;

/// Recycling statistics of a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `take` calls served from a recycled buffer.
    pub hits: u64,
    /// `take` calls that had to allocate.
    pub misses: u64,
    /// Buffers returned through `recycle`.
    pub recycled: u64,
}

impl PoolStats {
    /// Fraction of takes served without allocating (1.0 when nothing was taken).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared pool of reusable payload buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_BUFFERS)
    }
}

impl BufferPool {
    /// Creates a pool that retains at most `max_buffers` retired buffers.
    #[must_use]
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::new()),
            max_buffers,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    /// Takes an empty buffer with at least `min_capacity` bytes of capacity, reusing a
    /// recycled one when available.
    #[must_use]
    pub fn take(&self, min_capacity: usize) -> Vec<u8> {
        let reused = lock_recover(&self.free).pop();
        match reused {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if buf.capacity() < min_capacity {
                    buf.reserve(min_capacity - buf.len());
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(min_capacity)
            }
        }
    }

    /// Returns a buffer to the pool (cleared; freed instead if the pool is full).
    pub fn recycle(&self, mut buf: Vec<u8>) {
        buf.clear();
        self.recycled.fetch_add(1, Ordering::Relaxed);
        let mut free = lock_recover(&self.free);
        if free.len() < self.max_buffers {
            free.push(buf);
        }
    }

    /// Copies `payload` into a pooled buffer (the cluster router's leg-clone path).
    #[must_use]
    pub fn duplicate(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = self.take(payload.len());
        buf.extend_from_slice(payload);
        buf
    }

    /// Number of buffers currently retired in the pool.
    #[must_use]
    pub fn idle(&self) -> usize {
        lock_recover(&self.free).len()
    }

    /// Recycling statistics so far.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_cycle_reuses_capacity() {
        let pool = BufferPool::new(8);
        let mut buf = pool.take(128);
        assert!(buf.capacity() >= 128);
        buf.extend_from_slice(&[7u8; 100]);
        pool.recycle(buf);
        assert_eq!(pool.idle(), 1);
        let again = pool.take(64);
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert!(again.capacity() >= 100);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.recycled, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pool_cap_limits_retained_buffers() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.recycle(Vec::with_capacity(16));
        }
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().recycled, 5);
    }

    #[test]
    fn duplicate_copies_payload_bytes() {
        let pool = BufferPool::default();
        let copy = pool.duplicate(b"leg");
        assert_eq!(copy, b"leg");
        pool.recycle(copy);
        let copy2 = pool.duplicate(b"other");
        assert_eq!(copy2, b"other");
        assert_eq!(pool.stats().hits, 1);
    }
}
