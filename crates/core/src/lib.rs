//! The TailBench-RS load-testing harness.
//!
//! This crate reproduces the harness of *TailBench: A Benchmark Suite and Evaluation
//! Methodology for Latency-Critical Applications* (Kasture & Sanchez, IISWC 2016).  The
//! harness controls the end-to-end execution of a latency-critical application and
//! integrates load generation and statistics collection (paper §IV):
//!
//! * an **open-loop traffic shaper** issues requests with exponentially distributed
//!   interarrival times at a configurable rate ([`traffic`]);
//! * a **request queue** shared by the application's worker threads stamps queuing and
//!   service times for every request ([`queue`], [`worker`]);
//! * a **statistics collector** aggregates per-request records into sojourn, service and
//!   queuing-time distributions with HDR-histogram precision — sharded per worker /
//!   per connection and merged at run end, so no statistics maintenance sits on the
//!   measurement hot path ([`collector`], [`report`]);
//! * three **measurement configurations** trade fidelity for cost: networked, loopback
//!   and integrated ([`config::HarnessMode`], [`net`], [`integrated`]), plus a
//!   **discrete-event simulation** runner that replaces wall-clock service times with a
//!   microarchitectural cost model ([`sim`]);
//! * a **repeated-run controller** re-randomizes seeds until 95% confidence intervals are
//!   within 1% of each reported metric ([`runner::run_repeated`]);
//! * a **cluster harness** runs N independent server instances behind a client-side
//!   router that shards single-key requests or fans partition-aggregate requests out to
//!   every shard and merges last-response-wins, reporting per-shard and end-to-end
//!   distributions so the fan-out tail amplification is a first-class result
//!   ([`config::ClusterConfig`], [`runner::execute_cluster`]);
//! * **scenario mechanisms** for the `tailbench-scenario` engine: precompiled phased
//!   arrival traces ([`traffic::LoadTrace`]), per-request class/phase tags with
//!   per-class reporting ([`collector::RequestTags`]), deterministic interference
//!   injection ([`interference`]), and a hedged-request policy on the cluster router
//!   ([`config::HedgePolicy`]) — all available in every harness mode.
//!
//! Applications plug in through the [`ServerApp`] and [`RequestFactory`] traits ([`app`]);
//! the eight TailBench applications live in their own crates (`tailbench-search`,
//! `tailbench-kvstore`, …).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use tailbench_core::app::{EchoApp, ServerApp};
//! use tailbench_core::config::BenchmarkConfig;
//! use tailbench_core::runner;
//!
//! let app: Arc<dyn ServerApp> = Arc::new(EchoApp::with_service_us(5));
//! let mut factory = || b"hello".to_vec();
//! let config = BenchmarkConfig::new(500.0, 200).with_warmup(20);
//! let report = runner::execute(&app, &mut factory, &config, None)?;
//! assert!(report.sojourn.p95_ns > 0);
//! # Ok::<(), tailbench_core::error::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod collector;
pub mod config;
pub mod error;
mod hedge;
pub mod integrated;
pub mod interference;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod report;
pub mod request;
pub mod runner;
pub mod sim;
mod sync;
pub mod time;
pub mod traffic;
pub mod worker;

pub use app::{CostModel, RequestFactory, ServerApp};
pub use collector::{ClusterCollector, RequestTags};
pub use config::{BenchmarkConfig, ClusterConfig, FanoutPolicy, HarnessMode, HedgePolicy, Route};
pub use error::HarnessError;
pub use interference::{FaultEvent, FaultKind, FaultTarget, InterferencePlan};
pub use pool::{BufferPool, PoolStats};
pub use queue::AdmissionPolicy;
pub use report::{
    ClusterReport, HedgeStats, LabeledLatency, LatencyStats, MultiRunReport, QueueSummary,
    RunReport,
};
pub use request::{Request, RequestRecord, Response, WorkProfile};
pub use runner::{execute, execute_cluster, measure_capacity, run_repeated, RepeatPolicy};
#[allow(deprecated)]
pub use runner::{run, run_cluster, run_with_cost_model};
pub use time::{PacingRecorder, RunClock};
pub use traffic::{LoadMode, LoadTrace};
