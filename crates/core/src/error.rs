//! Harness error types.

use std::fmt;

/// Errors produced by the harness runners.
#[derive(Debug)]
pub enum HarnessError {
    /// An operating-system I/O error (socket setup, connection failures).
    Io(std::io::Error),
    /// The requested configuration is inconsistent (e.g. closed-loop load over TCP).
    Config(String),
    /// A broken internal invariant surfaced as an error instead of a panic, so a
    /// wedged run can still be reported and torn down (worker-thread panics,
    /// out-of-range instance indices, lost channel endpoints).
    Internal(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Io(e) => write!(f, "harness i/o error: {e}"),
            HarnessError::Config(msg) => write!(f, "invalid harness configuration: {msg}"),
            HarnessError::Internal(msg) => write!(f, "internal harness invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io(e) => Some(e),
            HarnessError::Config(_) | HarnessError::Internal(_) => None,
        }
    }
}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let io_err = HarnessError::from(std::io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        let cfg = HarnessError::Config("bad".into());
        assert!(cfg.to_string().contains("bad"));
        assert!(std::error::Error::source(&cfg).is_none());
    }
}
