//! Harness configuration.
//!
//! A [`BenchmarkConfig`] describes one measurement run: which harness configuration to
//! use (integrated / loopback / networked / simulated, paper Fig. 1), the offered load,
//! the number of application worker threads, and the warmup and measurement lengths.

use crate::collector::RequestTags;
use crate::interference::InterferencePlan;
use crate::queue::AdmissionPolicy;
use crate::traffic::LoadMode;
use std::sync::Arc;
use std::time::Duration;

/// The measurement setup, mirroring the three harness configurations of the paper plus
/// the simulated runner.
#[derive(Debug, Clone)]
pub enum HarnessMode {
    /// Client, harness and application in a single process communicating through shared
    /// memory (the configuration that can be run under a simulator).
    Integrated,
    /// Client and application on the same machine, communicating over TCP through the
    /// loopback interface.
    Loopback {
        /// Number of client connections (the paper uses several client processes to
        /// avoid client-side queuing; we use several connections, each with its own
        /// sender and receiver thread).
        connections: usize,
    },
    /// Multi-machine configuration. We do not have a second machine, so this is the
    /// loopback transport plus an analytically added constant propagation delay per
    /// direction (see DESIGN.md); the kernel network-stack work is still really executed.
    Networked {
        /// Number of client connections.
        connections: usize,
        /// One-way propagation delay added to each request and each response, ns.
        one_way_delay_ns: u64,
    },
    /// Discrete-event simulation of the integrated configuration using a
    /// [`CostModel`](crate::app::CostModel) to derive service times.
    Simulated,
}

impl HarnessMode {
    /// A short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            HarnessMode::Integrated => "integrated",
            HarnessMode::Loopback { .. } => "loopback",
            HarnessMode::Networked { .. } => "networked",
            HarnessMode::Simulated => "simulated",
        }
    }

    /// Default loopback configuration (8 client connections).
    #[must_use]
    pub fn loopback() -> Self {
        HarnessMode::Loopback { connections: 8 }
    }

    /// Default networked configuration: 16 connections and a 25 µs one-way delay, the
    /// round-trip the paper measured after tuning its switch + NIC setup (§VI-A).
    #[must_use]
    pub fn networked() -> Self {
        HarnessMode::Networked {
            connections: 16,
            one_way_delay_ns: 25_000,
        }
    }
}

/// Where the client-side router sends one request in a cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The request is served by a single shard.
    Shard(usize),
    /// The request fans out to every shard and completes when the last response arrives
    /// (partition-aggregate).
    AllShards,
}

/// How the client-side router maps request payloads onto shards.
///
/// TailBench payloads are opaque bytes, so the sharding policies address key material by
/// byte range instead of by decoding application types — the same payload bytes flow
/// unchanged through every harness configuration.
#[derive(Debug, Clone)]
pub enum FanoutPolicy {
    /// Hash `len` payload bytes starting at `offset` (FNV-1a) and route to
    /// `hash % shards`.  The policy for single-key workloads with unstructured key
    /// spaces (YCSB gets/puts against masstree).
    HashKey {
        /// Byte offset of the key within the payload.
        offset: usize,
        /// Key length in bytes.
        len: usize,
    },
    /// Interpret up to 8 little-endian payload bytes at `offset` as a partition id and
    /// route to `id % shards`.  The policy for pre-partitioned workloads (TPC-C, where
    /// the warehouse id is the partition key).
    Partition {
        /// Byte offset of the partition id within the payload.
        offset: usize,
        /// Partition-id length in bytes (at most 8).
        len: usize,
    },
    /// Fan every request out to all shards and merge on last-response-wins
    /// (partition-aggregate, the web-search leaf/root pattern).
    Broadcast,
}

impl FanoutPolicy {
    /// The sharding policy for the YCSB/masstree wire format: the 8-byte key follows the
    /// 1-byte operation tag.
    #[must_use]
    pub fn ycsb() -> Self {
        FanoutPolicy::HashKey { offset: 1, len: 8 }
    }

    /// The sharding policy for the TPC-C wire format: the 4-byte warehouse id follows
    /// the 1-byte transaction tag, so each shard owns `warehouses / shards` warehouses.
    #[must_use]
    pub fn tpcc() -> Self {
        FanoutPolicy::Partition { offset: 1, len: 4 }
    }

    /// A short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FanoutPolicy::HashKey { .. } => "hash-key",
            FanoutPolicy::Partition { .. } => "partition",
            FanoutPolicy::Broadcast => "broadcast",
        }
    }

    /// Routes one request payload to its destination shard(s).
    ///
    /// Out-of-range byte addresses fall back to hashing whatever payload bytes exist, so
    /// malformed requests still route deterministically instead of panicking.
    #[must_use]
    pub fn route(&self, payload: &[u8], shards: usize) -> Route {
        if shards <= 1 {
            return match self {
                FanoutPolicy::Broadcast => Route::AllShards,
                _ => Route::Shard(0),
            };
        }
        match self {
            FanoutPolicy::Broadcast => Route::AllShards,
            FanoutPolicy::HashKey { offset, len } => {
                let key = slice_or_fallback(payload, *offset, *len);
                Route::Shard((fnv1a(key) % shards as u64) as usize)
            }
            FanoutPolicy::Partition { offset, len } => {
                let bytes = slice_or_fallback(payload, *offset, (*len).min(8));
                let mut id = 0u64;
                for (i, &b) in bytes.iter().take(8).enumerate() {
                    id |= u64::from(b) << (8 * i);
                }
                Route::Shard((id % shards as u64) as usize)
            }
        }
    }
}

fn slice_or_fallback(payload: &[u8], offset: usize, len: usize) -> &[u8] {
    payload.get(offset..offset + len).unwrap_or(payload)
}

/// Deterministic candidate hash for the seeded two-choice selector: FNV-1a over the
/// run seed, request id, shard, and candidate slot, so both candidates are pinned by
/// the seed and the harness stays reproducible in every mode.
fn selector_hash(seed: u64, request_id: u64, shard: u64, slot: u64) -> u64 {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..16].copy_from_slice(&request_id.to_le_bytes());
    bytes[16..24].copy_from_slice(&shard.to_le_bytes());
    bytes[24..].copy_from_slice(&slot.to_le_bytes());
    fnv1a(&bytes)
}

/// FNV-1a, the classic cheap byte-string hash; stable across platforms so cluster
/// routing is deterministic everywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The hedged-request mitigation policy of a cluster's client-side router ("The Tail at
/// Scale", CACM 2013): if a leg's primary replica has not responded within `delay_ns`,
/// the router reissues the leg to the shard's next replica and takes whichever response
/// arrives first.  The loser is not cancelled (it merely wastes server capacity), so
/// hedging trades extra load for a shorter tail — exactly the trade-off the
/// `fig11_hedging` binary sweeps.
///
/// The delay is configured in nanoseconds; callers that want a *percentile* trigger
/// (e.g. "hedge at the leg p95") measure an unhedged run first and pass that
/// percentile's value, which keeps simulated runs bit-for-bit deterministic.
/// Hedging needs somewhere to send the copy: clusters with `replication == 1` ignore
/// the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Reissue delay in nanoseconds.
    pub delay_ns: u64,
}

impl HedgePolicy {
    /// A policy that hedges after `delay_ns` nanoseconds.
    #[must_use]
    pub fn after_ns(delay_ns: u64) -> Self {
        HedgePolicy { delay_ns }
    }
}

/// How the client-side router picks the replica that serves one leg of a request
/// ("The Tail at Scale" catalogs replica selection as a tail mitigation in its own
/// right, distinct from hedging).
///
/// All three selectors are deterministic given the run seed and the observable load
/// state, so simulated runs stay bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaSelector {
    /// Rotate replicas by request id (`request_id % replication`): stateless and
    /// perfectly balanced under uniform ids.  The default, and byte-identical to the
    /// routing the harness used before selectors existed.
    #[default]
    RoundRobin,
    /// Send each leg to the replica with the fewest outstanding requests (queued plus
    /// in service); ties break to the lowest replica index.
    LeastLoaded,
    /// Seeded two-choice ("the power of two choices"): derive two candidate replicas
    /// from a hash of the run seed and request id, send to the less loaded of the
    /// pair.  Ties break to the first candidate.
    PowerOfTwo,
}

impl ReplicaSelector {
    /// A short name used in reports (`round-robin`, `least-loaded`, `p2c`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaSelector::RoundRobin => "round-robin",
            ReplicaSelector::LeastLoaded => "least-loaded",
            ReplicaSelector::PowerOfTwo => "p2c",
        }
    }
}

/// A cluster of server instances layered on top of a [`BenchmarkConfig`].
///
/// A cluster run starts `shards * replication` independent server instances — each with
/// its own request queue and worker pool (or its own simulated station) — and a
/// client-side router that distributes the open-loop request schedule according to
/// `fanout`.  Replicas of a shard serve the same data; single-shard requests are
/// balanced across a shard's replicas by the configured [`ReplicaSelector`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of data shards.
    pub shards: usize,
    /// Replicas per shard (1 = no replication).
    pub replication: usize,
    /// How requests map onto shards.
    pub fanout: FanoutPolicy,
    /// Hedged-request mitigation on the router (`None` = no hedging).  Requires
    /// `replication >= 2` to take effect.
    pub hedge: Option<HedgePolicy>,
    /// How the router picks a replica for each leg.
    pub selector: ReplicaSelector,
    /// Tied requests: issue every leg to two replicas up front, first response wins,
    /// and the loser is cancelled if it is still waiting in a queue.  Requires
    /// `replication >= 2` to take effect and is mutually exclusive with `hedge`.
    pub tied: bool,
}

impl ClusterConfig {
    /// Creates a cluster configuration with no replication.
    #[must_use]
    pub fn new(shards: usize, fanout: FanoutPolicy) -> Self {
        ClusterConfig {
            shards: shards.max(1),
            replication: 1,
            fanout,
            hedge: None,
            selector: ReplicaSelector::RoundRobin,
            tied: false,
        }
    }

    /// Sets the replication factor.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Enables hedged requests with the given policy.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Sets the replica selector.
    #[must_use]
    pub fn with_selector(mut self, selector: ReplicaSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Enables tied requests (two copies up front, first response wins).
    #[must_use]
    pub fn with_tied(mut self, tied: bool) -> Self {
        self.tied = tied;
        self
    }

    /// Whether tied requests are active (configured *and* there is a second replica
    /// to tie to).
    #[must_use]
    pub fn active_tied(&self) -> bool {
        self.tied && self.replication >= 2
    }

    /// Returns the hedging policy if it is active (configured *and* the cluster has a
    /// replica to hedge to).
    #[must_use]
    pub fn active_hedge(&self) -> Option<HedgePolicy> {
        if self.replication >= 2 {
            self.hedge
        } else {
            None
        }
    }

    /// The alternate replica instance for a hedge copy of `shard`'s leg of request
    /// `request_id`: the next replica after the round-robin primary.
    ///
    /// Correct only under [`ReplicaSelector::RoundRobin`]; load-aware selectors must
    /// derive the alternate from the replica that actually served as primary with
    /// [`ClusterConfig::secondary_instance`].
    #[must_use]
    pub fn hedge_instance(&self, shard: usize, request_id: u64) -> usize {
        self.secondary_instance(shard, self.instance(shard, request_id))
    }

    /// The replica instance after `primary` on `shard`, round-robin — where the hedge
    /// or tied copy of a leg goes once the primary is known.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `primary` is not an instance of `shard`.
    #[must_use]
    pub fn secondary_instance(&self, shard: usize, primary: usize) -> usize {
        let base = shard * self.replication;
        debug_assert!(primary >= base && primary < base + self.replication);
        base + (primary - base + 1) % self.replication
    }

    /// The server instance that serves `shard` for request `request_id` under this
    /// cluster's [`ReplicaSelector`], given the per-instance outstanding-request
    /// counts observable at dispatch time (`load_of(instance)`).
    ///
    /// [`ReplicaSelector::RoundRobin`] ignores `seed` and `load_of` and equals
    /// [`ClusterConfig::instance`], so existing round-robin results are unchanged.
    #[must_use]
    pub fn route_replica(
        &self,
        shard: usize,
        request_id: u64,
        seed: u64,
        load_of: &dyn Fn(usize) -> usize,
    ) -> usize {
        let base = shard * self.replication;
        match self.selector {
            ReplicaSelector::RoundRobin => self.instance(shard, request_id),
            ReplicaSelector::LeastLoaded => (base..base + self.replication)
                .min_by_key(|&i| (load_of(i), i))
                .unwrap_or(base),
            ReplicaSelector::PowerOfTwo => {
                let r = self.replication as u64;
                let first = (selector_hash(seed, request_id, shard as u64, 0) % r) as usize;
                let mut second = (selector_hash(seed, request_id, shard as u64, 1) % r) as usize;
                if second == first {
                    second = (first + 1) % self.replication;
                }
                if load_of(base + second) < load_of(base + first) {
                    base + second
                } else {
                    base + first
                }
            }
        }
    }

    /// Total number of server instances (`shards * replication`).
    #[must_use]
    pub fn instances(&self) -> usize {
        self.shards * self.replication
    }

    /// Number of legs a fanned-out request produces (`shards` under broadcast, 1
    /// otherwise).  Constant per policy, which lets the merge path know how many
    /// responses to wait for without per-request bookkeeping.
    #[must_use]
    pub fn fanout_width(&self) -> usize {
        match self.fanout {
            FanoutPolicy::Broadcast => self.shards,
            _ => 1,
        }
    }

    /// The server instance that serves `shard` for the request with id `request_id`
    /// (replicas are selected round-robin by request id).
    #[must_use]
    pub fn instance(&self, shard: usize, request_id: u64) -> usize {
        shard * self.replication + (request_id % self.replication as u64) as usize
    }

    /// A short name for reports, e.g. `cluster4x2-broadcast`.  Non-default mitigation
    /// knobs append suffixes (`+least-loaded`, `+tied`) so report rows stay
    /// distinguishable; the default round-robin untied name is unchanged.
    #[must_use]
    pub fn name(&self) -> String {
        let mut name = format!(
            "cluster{}x{}-{}",
            self.shards,
            self.replication,
            self.fanout.name()
        );
        if self.selector != ReplicaSelector::RoundRobin {
            name.push('+');
            name.push_str(self.selector.name());
        }
        if self.tied {
            name.push_str("+tied");
        }
        name
    }
}

/// Full description of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Harness configuration.
    pub mode: HarnessMode,
    /// Offered-load model.
    pub load: LoadMode,
    /// Number of application worker threads.
    pub worker_threads: usize,
    /// Number of warmup requests excluded from statistics.
    pub warmup_requests: usize,
    /// Number of measured requests.
    pub measure_requests: usize,
    /// Root seed; repeated runs should use different seeds (the runner takes care of it).
    pub seed: u64,
    /// Safety cap on wall-clock duration for real-time runs.
    pub max_duration: Duration,
    /// Deterministic fault-injection schedule (empty = no interference).
    pub interference: InterferencePlan,
    /// Per-request class/phase tags for per-class and per-phase reporting (the scenario
    /// engine fills this in; `None` for plain runs).
    pub tags: Option<Arc<RequestTags>>,
    /// Request-queue admission policy (per server instance in cluster runs).  The
    /// default is the classic unbounded open-loop queue; bounded `Block`/`Drop`
    /// policies make overload visible as backpressure or counted drops.
    pub admission: AdmissionPolicy,
}

impl BenchmarkConfig {
    /// Creates a configuration with sensible defaults: integrated mode, 1 worker thread,
    /// 10% warmup, and the given offered load and measured request count.
    #[must_use]
    pub fn new(qps: f64, measure_requests: usize) -> Self {
        BenchmarkConfig {
            mode: HarnessMode::Integrated,
            load: LoadMode::open_poisson(qps),
            worker_threads: 1,
            warmup_requests: (measure_requests / 10).max(10),
            measure_requests,
            seed: 0x7A11_BE4C,
            max_duration: Duration::from_secs(120),
            interference: InterferencePlan::none(),
            tags: None,
            admission: AdmissionPolicy::unbounded(),
        }
    }

    /// Sets the harness mode.
    #[must_use]
    pub fn with_mode(mut self, mode: HarnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Sets the warmup request count.
    #[must_use]
    pub fn with_warmup(mut self, warmup_requests: usize) -> Self {
        self.warmup_requests = warmup_requests;
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the load mode.
    #[must_use]
    pub fn with_load(mut self, load: LoadMode) -> Self {
        self.load = load;
        self
    }

    /// Sets the wall-clock safety cap.
    #[must_use]
    pub fn with_max_duration(mut self, max_duration: Duration) -> Self {
        self.max_duration = max_duration;
        self
    }

    /// Sets the deterministic fault-injection schedule.
    #[must_use]
    pub fn with_interference(mut self, interference: InterferencePlan) -> Self {
        self.interference = interference;
        self
    }

    /// Attaches per-request class/phase tags for per-class and per-phase reporting.
    #[must_use]
    pub fn with_tags(mut self, tags: Arc<RequestTags>) -> Self {
        self.tags = Some(tags);
        self
    }

    /// Sets the request-queue admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Total number of requests issued per run (warmup + measured).
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.warmup_requests + self.measure_requests
    }

    /// Checks the configuration for the inconsistencies that used to fail silently (or
    /// deep inside a runner with an unhelpful message) and returns an actionable
    /// [`HarnessError::Config`] for each.
    ///
    /// The runners call this on entry, so every entrypoint — `runner::execute`, the
    /// deprecated `run*` wrappers and `Experiment::run` — rejects the same footguns.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] when the configuration cannot produce a valid
    /// measurement: zero worker threads, zero measured requests, an empty arrival
    /// trace, zero client connections in a TCP mode, or closed-loop load under the
    /// discrete-event simulator (which replays open-loop schedules only).
    pub fn validate(&self) -> Result<(), crate::error::HarnessError> {
        use crate::error::HarnessError;
        if self.worker_threads == 0 {
            return Err(HarnessError::Config(
                "worker_threads is 0: the server would never dequeue a request; \
                 use with_threads(n) with n >= 1"
                    .into(),
            ));
        }
        if self.measure_requests == 0 {
            return Err(HarnessError::Config(
                "measure_requests is 0: the run would produce empty statistics; \
                 configure at least one measured request"
                    .into(),
            ));
        }
        if let LoadMode::Trace(trace) = &self.load {
            if trace.is_empty() {
                return Err(HarnessError::Config(
                    "the arrival trace is empty: no request would ever be issued; \
                     compile a scenario with a non-zero span or use LoadMode::open_poisson"
                        .into(),
                ));
            }
        }
        if self.admission.capacity() == 0 {
            return Err(HarnessError::Config(
                "queue admission capacity is 0: every request would be rejected \
                 (Drop) or deadlock the producer (Block); use a capacity >= 1"
                    .into(),
            ));
        }
        match self.mode {
            HarnessMode::Loopback { connections } | HarnessMode::Networked { connections, .. }
                if connections == 0 =>
            {
                return Err(HarnessError::Config(format!(
                    "{} mode with 0 client connections: no request could be sent; \
                     configure connections >= 1",
                    self.mode.name()
                )));
            }
            HarnessMode::Simulated if !self.load.is_open() => {
                return Err(HarnessError::Config(
                    "closed-loop load cannot run under the discrete-event simulator: \
                     the simulator replays precomputed open-loop schedules; use an \
                     open-loop LoadMode (Poisson or trace) or a real-time harness mode"
                        .into(),
                ));
            }
            HarnessMode::Simulated
                if matches!(
                    self.admission,
                    crate::queue::AdmissionPolicy::Block { capacity } if capacity != usize::MAX
                ) =>
            {
                return Err(HarnessError::Config(
                    "a bounded Block admission policy cannot backpressure the \
                     simulator's fixed virtual-time arrivals; use Drop { capacity } \
                     or the unbounded default for simulated runs"
                        .into(),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// Validates this configuration together with a cluster layout
    /// ([`BenchmarkConfig::validate`] plus the cluster-specific footguns).
    ///
    /// One footgun is documented rather than rejected: in the TCP modes the client
    /// opens exactly one connection per server instance, so the `connections` field of
    /// [`HarnessMode::Loopback`]/[`HarnessMode::Networked`] is **ignored** for cluster
    /// runs — it only shapes single-server runs.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Config`] for any [`BenchmarkConfig::validate`] failure,
    /// for closed-loop load (cluster runs are open-loop only), and for a hedge policy
    /// without a replica to hedge to (`replication < 2`).
    pub fn validate_cluster(
        &self,
        cluster: &ClusterConfig,
    ) -> Result<(), crate::error::HarnessError> {
        use crate::error::HarnessError;
        self.validate()?;
        if !self.load.is_open() {
            return Err(HarnessError::Config(
                "cluster runs require an open-loop load mode: closed-loop arrivals \
                 depend on per-connection response times and cannot be routed across \
                 shards; use LoadMode::open_poisson or a trace"
                    .into(),
            ));
        }
        if cluster.hedge.is_some() && cluster.replication < 2 {
            return Err(HarnessError::Config(format!(
                "a hedge policy is configured but replication is {}: hedged requests \
                 need a second replica to send the copy to; use with_replication(2) \
                 or remove the hedge policy",
                cluster.replication
            )));
        }
        if cluster.tied && cluster.replication < 2 {
            return Err(HarnessError::Config(format!(
                "tied requests are configured but replication is {}: the second copy \
                 needs a second replica; use with_replication(2) or disable tied \
                 requests",
                cluster.replication
            )));
        }
        if cluster.tied && cluster.hedge.is_some() {
            return Err(HarnessError::Config(
                "tied requests and hedging are both configured: they are alternative \
                 mitigations for the same leg (tied issues the second copy up front, \
                 hedging issues it after a delay); configure at most one"
                    .into(),
            ));
        }
        if matches!(
            self.mode,
            HarnessMode::Loopback { .. } | HarnessMode::Networked { .. }
        ) && cluster.hedge.is_some()
            && self.admission.shed_capacity().is_some()
        {
            return Err(HarnessError::Config(
                "hedged TCP cluster runs require a non-shedding admission policy: a \
                 server-side shed is invisible to the client-side hedge engine, which \
                 would wait forever for the dropped copy; use the unbounded default \
                 queue, the integrated mode, or the simulator for this combination"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let c = BenchmarkConfig::new(1000.0, 5000);
        assert_eq!(c.mode.name(), "integrated");
        assert_eq!(c.worker_threads, 1);
        assert_eq!(c.warmup_requests, 500);
        assert_eq!(c.total_requests(), 5500);
        assert!((c.load.offered_qps().unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn builder_methods_apply() {
        let c = BenchmarkConfig::new(100.0, 100)
            .with_mode(HarnessMode::networked())
            .with_threads(4)
            .with_warmup(7)
            .with_seed(42)
            .with_max_duration(Duration::from_secs(5));
        assert_eq!(c.mode.name(), "networked");
        assert_eq!(c.worker_threads, 4);
        assert_eq!(c.warmup_requests, 7);
        assert_eq!(c.seed, 42);
        assert_eq!(c.max_duration, Duration::from_secs(5));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let c = BenchmarkConfig::new(100.0, 100).with_threads(0);
        assert_eq!(c.worker_threads, 1);
    }

    #[test]
    fn hash_key_routing_is_deterministic_and_in_range() {
        let policy = FanoutPolicy::ycsb();
        let mut payload = vec![0u8; 9];
        for key in 0u64..200 {
            payload[1..9].copy_from_slice(&key.to_le_bytes());
            let a = policy.route(&payload, 4);
            let b = policy.route(&payload, 4);
            assert_eq!(a, b);
            let Route::Shard(s) = a else {
                panic!("hash-key must route to one shard")
            };
            assert!(s < 4);
        }
    }

    #[test]
    fn hash_key_spreads_keys_across_shards() {
        let policy = FanoutPolicy::ycsb();
        let mut seen = [false; 4];
        let mut payload = vec![0u8; 9];
        for key in 0u64..64 {
            payload[1..9].copy_from_slice(&key.to_le_bytes());
            if let Route::Shard(s) = policy.route(&payload, 4) {
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "64 keys must touch all 4 shards");
    }

    #[test]
    fn partition_routing_uses_the_id_modulo_shards() {
        let policy = FanoutPolicy::tpcc();
        let mut payload = vec![0u8; 5];
        for warehouse in 1u32..=16 {
            payload[1..5].copy_from_slice(&warehouse.to_le_bytes());
            assert_eq!(
                policy.route(&payload, 4),
                Route::Shard((warehouse % 4) as usize)
            );
        }
    }

    #[test]
    fn broadcast_routes_to_all_shards() {
        assert_eq!(FanoutPolicy::Broadcast.route(b"any", 8), Route::AllShards);
        assert_eq!(FanoutPolicy::Broadcast.route(b"any", 1), Route::AllShards);
    }

    #[test]
    fn short_payloads_still_route() {
        // A payload shorter than the addressed key range must not panic.
        let policy = FanoutPolicy::HashKey { offset: 1, len: 8 };
        let Route::Shard(s) = policy.route(&[7], 4) else {
            panic!("must degrade to a single shard")
        };
        assert!(s < 4);
    }

    #[test]
    fn cluster_config_derives_instances_and_width() {
        let c = ClusterConfig::new(4, FanoutPolicy::Broadcast).with_replication(2);
        assert_eq!(c.instances(), 8);
        assert_eq!(c.fanout_width(), 4);
        assert_eq!(c.instance(3, 0), 6);
        assert_eq!(c.instance(3, 1), 7);
        assert_eq!(c.name(), "cluster4x2-broadcast");

        let single = ClusterConfig::new(0, FanoutPolicy::ycsb());
        assert_eq!(single.shards, 1, "shard count clamps to one");
        assert_eq!(single.fanout_width(), 1);
        assert_eq!(single.name(), "cluster1x1-hash-key");
    }

    #[test]
    fn hedging_needs_a_replica_and_picks_the_next_one() {
        let policy = HedgePolicy::after_ns(50_000);
        let unreplicated = ClusterConfig::new(4, FanoutPolicy::Broadcast).with_hedge(policy);
        assert_eq!(unreplicated.active_hedge(), None);
        let replicated = unreplicated.clone().with_replication(2);
        assert_eq!(replicated.active_hedge(), Some(policy));
        // Request 0 on shard 3: primary is replica 0 (instance 6), hedge goes to
        // replica 1 (instance 7) — and vice versa for request 1.
        assert_eq!(replicated.instance(3, 0), 6);
        assert_eq!(replicated.hedge_instance(3, 0), 7);
        assert_eq!(replicated.instance(3, 1), 7);
        assert_eq!(replicated.hedge_instance(3, 1), 6);
    }

    #[test]
    fn validate_accepts_sensible_configs_and_names_each_footgun() {
        let good = BenchmarkConfig::new(1_000.0, 100);
        assert!(good.validate().is_ok());

        let mut zero_workers = BenchmarkConfig::new(1_000.0, 100);
        zero_workers.worker_threads = 0;
        let err = zero_workers.validate().unwrap_err().to_string();
        assert!(err.contains("worker_threads"), "{err}");

        let mut no_requests = BenchmarkConfig::new(1_000.0, 100);
        no_requests.measure_requests = 0;
        let err = no_requests.validate().unwrap_err().to_string();
        assert!(err.contains("measure_requests"), "{err}");

        let empty_trace = BenchmarkConfig::new(1_000.0, 100).with_load(LoadMode::trace(
            crate::traffic::LoadTrace::from_times(Vec::new()),
        ));
        let err = empty_trace.validate().unwrap_err().to_string();
        assert!(err.contains("trace is empty"), "{err}");

        let no_connections =
            BenchmarkConfig::new(1_000.0, 100).with_mode(HarnessMode::Loopback { connections: 0 });
        let err = no_connections.validate().unwrap_err().to_string();
        assert!(err.contains("0 client connections"), "{err}");

        let closed_sim = BenchmarkConfig::new(1_000.0, 100)
            .with_mode(HarnessMode::Simulated)
            .with_load(LoadMode::Closed { think_ns: 0 });
        let err = closed_sim.validate().unwrap_err().to_string();
        assert!(err.contains("closed-loop"), "{err}");

        let zero_capacity = BenchmarkConfig::new(1_000.0, 100)
            .with_admission(AdmissionPolicy::Drop { capacity: 0 });
        let err = zero_capacity.validate().unwrap_err().to_string();
        assert!(err.contains("capacity"), "{err}");
        let bounded = BenchmarkConfig::new(1_000.0, 100)
            .with_admission(AdmissionPolicy::Drop { capacity: 64 });
        assert!(bounded.validate().is_ok());

        // A bounded Block policy cannot backpressure virtual-time arrivals, so the
        // simulator rejects it; Drop and the unbounded default stay legal.
        let block_sim = BenchmarkConfig::new(1_000.0, 100)
            .with_mode(HarnessMode::Simulated)
            .with_admission(AdmissionPolicy::Block { capacity: 64 });
        let err = block_sim.validate().unwrap_err().to_string();
        assert!(err.contains("backpressure"), "{err}");
        let drop_sim = BenchmarkConfig::new(1_000.0, 100)
            .with_mode(HarnessMode::Simulated)
            .with_admission(AdmissionPolicy::Drop { capacity: 64 });
        assert!(drop_sim.validate().is_ok());
        let unbounded_sim = BenchmarkConfig::new(1_000.0, 100).with_mode(HarnessMode::Simulated);
        assert!(unbounded_sim.validate().is_ok());
    }

    #[test]
    fn replica_selectors_route_deterministically_and_respect_load() {
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(4);

        // Round-robin is byte-identical to the historical id rotation and ignores load.
        let rr = cluster.clone().with_selector(ReplicaSelector::RoundRobin);
        for id in 0..16u64 {
            assert_eq!(rr.route_replica(1, id, 99, &|_| 7), rr.instance(1, id));
        }

        // Least-loaded picks the minimum outstanding count, ties to the lowest index.
        let ll = cluster.clone().with_selector(ReplicaSelector::LeastLoaded);
        let loads = [5usize, 3, 3, 9, 1, 1, 1, 1];
        assert_eq!(ll.route_replica(0, 0, 0, &|i| loads[i]), 1);
        assert_eq!(ll.route_replica(1, 0, 0, &|i| loads[i]), 4);

        // Two-choice is pinned by the seed: same seed, same candidates; the less
        // loaded of the pair wins and lives on the addressed shard.
        let p2c = cluster.with_selector(ReplicaSelector::PowerOfTwo);
        for id in 0..64u64 {
            let a = p2c.route_replica(1, id, 0x5EED, &|i| loads[i]);
            let b = p2c.route_replica(1, id, 0x5EED, &|i| loads[i]);
            assert_eq!(a, b);
            assert!((4..8).contains(&a), "shard 1 owns instances 4..8, got {a}");
        }
        // Under uneven load the two-choice pick is never the uniquely worst replica.
        let skewed = [0usize, 0, 0, 0, 100, 0, 0, 0];
        for id in 0..64u64 {
            assert_ne!(p2c.route_replica(1, id, 0x5EED, &|i| skewed[i]), 4);
        }
    }

    #[test]
    fn secondary_instance_follows_the_actual_primary() {
        let c = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_replication(3);
        assert_eq!(c.secondary_instance(0, 0), 1);
        assert_eq!(c.secondary_instance(0, 2), 0);
        assert_eq!(c.secondary_instance(1, 5), 3);
        // Under round-robin the secondary of the id-derived primary is exactly the
        // historical hedge_instance, so hedged goldens are unchanged.
        for id in 0..12u64 {
            for shard in 0..2 {
                assert_eq!(
                    c.secondary_instance(shard, c.instance(shard, id)),
                    c.hedge_instance(shard, id)
                );
            }
        }
    }

    #[test]
    fn cluster_names_tag_non_default_mitigations() {
        let base = ClusterConfig::new(4, FanoutPolicy::Broadcast).with_replication(2);
        assert_eq!(base.name(), "cluster4x2-broadcast");
        assert_eq!(
            base.clone()
                .with_selector(ReplicaSelector::LeastLoaded)
                .name(),
            "cluster4x2-broadcast+least-loaded"
        );
        assert_eq!(
            base.clone().with_tied(true).name(),
            "cluster4x2-broadcast+tied"
        );
        assert_eq!(
            base.with_selector(ReplicaSelector::PowerOfTwo)
                .with_tied(true)
                .name(),
            "cluster4x2-broadcast+p2c+tied"
        );
    }

    #[test]
    fn validate_cluster_rejects_unreplicated_or_hedged_tied_requests() {
        let good = BenchmarkConfig::new(1_000.0, 100);
        let tied_unreplicated = ClusterConfig::new(2, FanoutPolicy::Broadcast).with_tied(true);
        let err = good
            .validate_cluster(&tied_unreplicated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("replication"), "{err}");
        let tied = tied_unreplicated.with_replication(2);
        assert!(good.validate_cluster(&tied).is_ok());
        assert!(tied.active_tied());
        let tied_and_hedged = tied.with_hedge(HedgePolicy::after_ns(1_000));
        let err = good
            .validate_cluster(&tied_and_hedged)
            .unwrap_err()
            .to_string();
        assert!(err.contains("at most one"), "{err}");
    }

    #[test]
    fn validate_cluster_rejects_closed_loop_and_unreplicated_hedge() {
        let cluster = ClusterConfig::new(2, FanoutPolicy::Broadcast);
        let good = BenchmarkConfig::new(1_000.0, 100);
        assert!(good.validate_cluster(&cluster).is_ok());

        let closed = BenchmarkConfig::new(1_000.0, 100).with_load(LoadMode::Closed { think_ns: 0 });
        let err = closed.validate_cluster(&cluster).unwrap_err().to_string();
        assert!(err.contains("open-loop"), "{err}");

        let hedged_unreplicated = cluster.with_hedge(HedgePolicy::after_ns(1_000));
        let err = good
            .validate_cluster(&hedged_unreplicated)
            .unwrap_err()
            .to_string();
        assert!(err.contains("replication"), "{err}");
        let hedged_replicated = hedged_unreplicated.with_replication(2);
        assert!(good.validate_cluster(&hedged_replicated).is_ok());
    }

    #[test]
    fn mode_names_cover_all_variants() {
        assert_eq!(HarnessMode::Integrated.name(), "integrated");
        assert_eq!(HarnessMode::loopback().name(), "loopback");
        assert_eq!(HarnessMode::networked().name(), "networked");
        assert_eq!(HarnessMode::Simulated.name(), "simulated");
    }
}
