//! Harness configuration.
//!
//! A [`BenchmarkConfig`] describes one measurement run: which harness configuration to
//! use (integrated / loopback / networked / simulated, paper Fig. 1), the offered load,
//! the number of application worker threads, and the warmup and measurement lengths.

use crate::traffic::LoadMode;
use std::time::Duration;

/// The measurement setup, mirroring the three harness configurations of the paper plus
/// the simulated runner.
#[derive(Debug, Clone)]
pub enum HarnessMode {
    /// Client, harness and application in a single process communicating through shared
    /// memory (the configuration that can be run under a simulator).
    Integrated,
    /// Client and application on the same machine, communicating over TCP through the
    /// loopback interface.
    Loopback {
        /// Number of client connections (the paper uses several client processes to
        /// avoid client-side queuing; we use several connections, each with its own
        /// sender and receiver thread).
        connections: usize,
    },
    /// Multi-machine configuration. We do not have a second machine, so this is the
    /// loopback transport plus an analytically added constant propagation delay per
    /// direction (see DESIGN.md); the kernel network-stack work is still really executed.
    Networked {
        /// Number of client connections.
        connections: usize,
        /// One-way propagation delay added to each request and each response, ns.
        one_way_delay_ns: u64,
    },
    /// Discrete-event simulation of the integrated configuration using a
    /// [`CostModel`](crate::app::CostModel) to derive service times.
    Simulated,
}

impl HarnessMode {
    /// A short name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            HarnessMode::Integrated => "integrated",
            HarnessMode::Loopback { .. } => "loopback",
            HarnessMode::Networked { .. } => "networked",
            HarnessMode::Simulated => "simulated",
        }
    }

    /// Default loopback configuration (8 client connections).
    #[must_use]
    pub fn loopback() -> Self {
        HarnessMode::Loopback { connections: 8 }
    }

    /// Default networked configuration: 16 connections and a 25 µs one-way delay, the
    /// round-trip the paper measured after tuning its switch + NIC setup (§VI-A).
    #[must_use]
    pub fn networked() -> Self {
        HarnessMode::Networked {
            connections: 16,
            one_way_delay_ns: 25_000,
        }
    }
}

/// Full description of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Harness configuration.
    pub mode: HarnessMode,
    /// Offered-load model.
    pub load: LoadMode,
    /// Number of application worker threads.
    pub worker_threads: usize,
    /// Number of warmup requests excluded from statistics.
    pub warmup_requests: usize,
    /// Number of measured requests.
    pub measure_requests: usize,
    /// Root seed; repeated runs should use different seeds (the runner takes care of it).
    pub seed: u64,
    /// Safety cap on wall-clock duration for real-time runs.
    pub max_duration: Duration,
}

impl BenchmarkConfig {
    /// Creates a configuration with sensible defaults: integrated mode, 1 worker thread,
    /// 10% warmup, and the given offered load and measured request count.
    #[must_use]
    pub fn new(qps: f64, measure_requests: usize) -> Self {
        BenchmarkConfig {
            mode: HarnessMode::Integrated,
            load: LoadMode::open_poisson(qps),
            worker_threads: 1,
            warmup_requests: (measure_requests / 10).max(10),
            measure_requests,
            seed: 0x7A11_BE4C,
            max_duration: Duration::from_secs(120),
        }
    }

    /// Sets the harness mode.
    #[must_use]
    pub fn with_mode(mut self, mode: HarnessMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads.max(1);
        self
    }

    /// Sets the warmup request count.
    #[must_use]
    pub fn with_warmup(mut self, warmup_requests: usize) -> Self {
        self.warmup_requests = warmup_requests;
        self
    }

    /// Sets the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the load mode.
    #[must_use]
    pub fn with_load(mut self, load: LoadMode) -> Self {
        self.load = load;
        self
    }

    /// Sets the wall-clock safety cap.
    #[must_use]
    pub fn with_max_duration(mut self, max_duration: Duration) -> Self {
        self.max_duration = max_duration;
        self
    }

    /// Total number of requests issued per run (warmup + measured).
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.warmup_requests + self.measure_requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let c = BenchmarkConfig::new(1000.0, 5000);
        assert_eq!(c.mode.name(), "integrated");
        assert_eq!(c.worker_threads, 1);
        assert_eq!(c.warmup_requests, 500);
        assert_eq!(c.total_requests(), 5500);
        assert!((c.load.offered_qps().unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn builder_methods_apply() {
        let c = BenchmarkConfig::new(100.0, 100)
            .with_mode(HarnessMode::networked())
            .with_threads(4)
            .with_warmup(7)
            .with_seed(42)
            .with_max_duration(Duration::from_secs(5));
        assert_eq!(c.mode.name(), "networked");
        assert_eq!(c.worker_threads, 4);
        assert_eq!(c.warmup_requests, 7);
        assert_eq!(c.seed, 42);
        assert_eq!(c.max_duration, Duration::from_secs(5));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let c = BenchmarkConfig::new(100.0, 100).with_threads(0);
        assert_eq!(c.worker_threads, 1);
    }

    #[test]
    fn mode_names_cover_all_variants() {
        assert_eq!(HarnessMode::Integrated.name(), "integrated");
        assert_eq!(HarnessMode::loopback().name(), "loopback");
        assert_eq!(HarnessMode::networked().name(), "networked");
        assert_eq!(HarnessMode::Simulated.name(), "simulated");
    }
}
