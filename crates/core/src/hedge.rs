//! Wall-clock hedged-request engine for the cluster router.
//!
//! The discrete-event simulation applies the [`HedgePolicy`](crate::config::HedgePolicy)
//! inside its event loop; the real-time cluster configurations (integrated and TCP) use
//! this engine instead: a dedicated thread that tracks every dispatched leg, reissues a
//! copy to the shard's next replica once the trigger delay expires without a response,
//! and forwards only the *first* response per leg to the cross-shard collector
//! (first-response-wins; the loser is dropped here, never recorded).
//!
//! Message flow: the router announces each leg with [`HedgeMsg::Dispatched`] *before*
//! handing the request to the server, receiver/forwarder threads turn every completed
//! copy into [`HedgeMsg::Completed`], and the router signals the end of pacing with
//! [`HedgeMsg::NoMoreDispatches`].  Because a leg's `Dispatched` is enqueued before the
//! request can possibly complete, the engine never sees a completion for an unknown leg.
//! The engine already serializes every completion on its own thread, so it records
//! winning legs straight into a [`ClusterCollector`] it owns — there is no separate
//! collector thread or channel behind it — and hands the populated collector back at
//! [`HedgeEngine::join`].
//!
//! Shutdown is two-phase to avoid a teardown cycle: the reissue path (which holds
//! clones of the server-side queue senders) is dropped as soon as pacing has ended and
//! every outstanding copy has completed; only then can workers and forwarders unwind,
//! closing the engine's channel and letting it return its [`HedgeStats`].

use crate::collector::ClusterCollector;
use crate::config::{ClusterConfig, HedgePolicy};
use crate::error::HarnessError;
use crate::report::HedgeStats;
use crate::request::{Request, RequestRecord};
use crate::time::RunClock;
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// One message into the hedge engine.
#[derive(Debug)]
pub(crate) enum HedgeMsg {
    /// The router dispatched `request`'s leg on `shard` (sent before the server can see
    /// the request).
    Dispatched {
        /// The leg's request (kept so a hedge copy can be reissued).
        request: Request,
        /// The shard this leg belongs to.
        shard: usize,
        /// The replica instance the primary copy was routed to.  The hedge copy goes to
        /// the shard's *next* replica after this one, so hedging stays correct under
        /// load-aware replica selectors.
        instance: usize,
    },
    /// The router dispatched a *tied* leg: two copies issued up front, `primary` and
    /// `secondary`.  First response wins; the engine retracts the queued loser.
    DispatchedTied {
        /// The leg's request id.
        id: u64,
        /// The shard this leg belongs to.
        shard: usize,
        /// The instance serving the first copy.
        primary: usize,
        /// The instance serving the second copy.
        secondary: usize,
    },
    /// One copy of a leg completed.
    Completed {
        /// The shard the completed copy belongs to.
        shard: usize,
        /// The instance whose connection/queue delivered the copy — identifies whether
        /// the primary or the hedge copy responded (each goes to a distinct replica).
        instance: usize,
        /// The copy's latency record.
        record: RequestRecord,
    },
    /// A previously announced leg was shed at admission and will never complete;
    /// retract its tracking so it is neither hedged nor left pending.
    Cancelled {
        /// The leg's request id.
        id: u64,
        /// The shard the leg belonged to.
        shard: usize,
    },
    /// The router finished pacing; no further `Dispatched` messages will arrive.
    NoMoreDispatches,
}

/// Client-side state of one wall-clock leg.
#[derive(Debug)]
struct WallLeg {
    request: Option<Request>,
    resolved: bool,
    /// The instance the primary copy was routed to.
    primary: usize,
    /// The instance the secondary copy targets: the hedge copy's destination once
    /// reissued, or the tied copy's destination from dispatch (`None` until hedged).
    hedged_to: Option<usize>,
    /// Tied legs dispatched both copies up front; the engine retracts the loser instead
    /// of reissuing anything.
    tied: bool,
    outstanding: u8,
}

/// The engine thread plus its message sender.
#[derive(Debug)]
pub(crate) struct HedgeEngine {
    tx: Sender<HedgeMsg>,
    handle: JoinHandle<(HedgeStats, ClusterCollector)>,
}

impl HedgeEngine {
    /// Spawns the engine.  `policy` arms the reissue deadlines (pass `None` for
    /// tied-only runs, where both copies are dispatched up front and nothing is ever
    /// reissued).  `reissue(instance, request)` injects a hedge copy into the transport
    /// (a queue push in the integrated configuration, a sender-channel send in the TCP
    /// ones); `retract(instance, id)` attempts to pull a still-queued tied loser back
    /// out of the transport, returning `true` if the copy will never run.  `collector`
    /// receives the winning record of every leg and is returned, populated, from
    /// [`HedgeEngine::join`].
    pub(crate) fn spawn(
        policy: Option<HedgePolicy>,
        cluster: ClusterConfig,
        width: usize,
        clock: RunClock,
        mut collector: ClusterCollector,
        reissue: Box<dyn FnMut(usize, Request) -> bool + Send>,
        retract: Box<dyn FnMut(usize, u64) -> bool + Send>,
    ) -> Result<Self, HarnessError> {
        let (tx, rx) = channel::<HedgeMsg>();
        let handle = std::thread::Builder::new()
            .name("tb-hedge-engine".into())
            .spawn(move || {
                // The reissue and retract paths both hold transport handles (queue or
                // channel senders); they are released together once pacing has ended and
                // every outstanding copy is accounted for, so servers can unwind.
                let mut transport = Some((reissue, retract));
                let mut stats = HedgeStats::default();
                let mut pending: HashMap<(u64, usize), WallLeg> = HashMap::new();
                // Hedge deadlines: (deadline_ns, ticket) -> leg key.  The ticket makes
                // keys unique when deadlines collide.
                let mut deadlines: BTreeMap<(u64, u64), (u64, usize)> = BTreeMap::new();
                let mut ticket = 0u64;
                let mut no_more = false;
                loop {
                    // Fire every due hedge.
                    let now = clock.now_ns();
                    while let Some((&slot, &key)) = deadlines.iter().next() {
                        if slot.0 > now {
                            break;
                        }
                        deadlines.remove(&slot);
                        let Some(leg) = pending.get_mut(&key) else {
                            continue;
                        };
                        if leg.resolved || leg.hedged_to.is_some() {
                            continue;
                        }
                        let Some(request) = leg.request.take() else {
                            continue;
                        };
                        // The copy goes to the shard's next replica *after the actual
                        // primary* — under load-aware selectors that is not necessarily
                        // `hedge_instance(shard, id)`.
                        let alt = cluster.secondary_instance(key.1, leg.primary);
                        if let Some((send, _)) = transport.as_mut() {
                            if send(alt, request) {
                                leg.hedged_to = Some(alt);
                                leg.outstanding += 1;
                                stats.issued += 1;
                            }
                        }
                    }
                    // Once pacing is over and every copy has come back, release the
                    // reissue/retract paths so the servers can start unwinding.
                    if no_more && pending.is_empty() && transport.is_some() {
                        transport = None;
                        deadlines.clear();
                    }
                    // Wait for the next message, or until the next hedge deadline.
                    let msg = match deadlines.keys().next() {
                        Some(&(deadline, _)) => {
                            let wait = deadline.saturating_sub(clock.now_ns());
                            match rx.recv_timeout(Duration::from_nanos(wait.max(1))) {
                                Ok(msg) => msg,
                                Err(RecvTimeoutError::Timeout) => continue,
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        None => match rx.recv() {
                            Ok(msg) => msg,
                            Err(_) => break,
                        },
                    };
                    match msg {
                        HedgeMsg::Dispatched {
                            request,
                            shard,
                            instance,
                        } => {
                            let key = (request.id.0, shard);
                            if let Some(policy) = policy {
                                ticket += 1;
                                deadlines.insert((clock.now_ns() + policy.delay_ns, ticket), key);
                            }
                            pending.insert(
                                key,
                                WallLeg {
                                    request: Some(request),
                                    resolved: false,
                                    primary: instance,
                                    hedged_to: None,
                                    tied: false,
                                    outstanding: 1,
                                },
                            );
                        }
                        HedgeMsg::DispatchedTied {
                            id,
                            shard,
                            primary,
                            secondary,
                        } => {
                            stats.issued += 1;
                            pending.insert(
                                (id, shard),
                                WallLeg {
                                    request: None,
                                    resolved: false,
                                    primary,
                                    hedged_to: Some(secondary),
                                    tied: true,
                                    outstanding: 2,
                                },
                            );
                        }
                        HedgeMsg::Completed {
                            shard,
                            instance,
                            record,
                        } => {
                            let key = (record.id.0, shard);
                            if let Some(leg) = pending.get_mut(&key) {
                                leg.outstanding = leg.outstanding.saturating_sub(1);
                                if !leg.resolved {
                                    leg.resolved = true;
                                    // The copy won iff the first response came back on
                                    // the replica the secondary targets (primary and
                                    // secondary always target distinct replicas).
                                    if leg.hedged_to == Some(instance) {
                                        stats.wins += 1;
                                    }
                                    let _ = collector.record_leg(shard, record, width);
                                    // Tied: try to pull the losing copy back off its
                                    // queue.  If the retraction lands, that copy will
                                    // never produce a completion.
                                    if leg.tied && leg.outstanding > 0 {
                                        let loser = if Some(instance) == leg.hedged_to {
                                            leg.primary
                                        } else {
                                            leg.hedged_to.unwrap_or(leg.primary)
                                        };
                                        if let Some((_, cancel)) = transport.as_mut() {
                                            if cancel(loser, key.0) {
                                                leg.outstanding -= 1;
                                            }
                                        }
                                    }
                                }
                                if leg.outstanding == 0 {
                                    pending.remove(&key);
                                }
                            }
                        }
                        HedgeMsg::Cancelled { id, shard } => {
                            // One announced copy was shed at admission and will never
                            // complete.  For tied legs the sibling copy may still be in
                            // flight, so this only retires one copy's bookkeeping.
                            let key = (id, shard);
                            if let Some(leg) = pending.get_mut(&key) {
                                leg.outstanding = leg.outstanding.saturating_sub(1);
                                if leg.outstanding == 0 {
                                    pending.remove(&key);
                                }
                            }
                        }
                        HedgeMsg::NoMoreDispatches => no_more = true,
                    }
                }
                (stats, collector)
            })?;
        Ok(HedgeEngine { tx, handle })
    }

    /// A sender for router and forwarder threads.
    pub(crate) fn sender(&self) -> Sender<HedgeMsg> {
        self.tx.clone()
    }

    /// Drops the local sender and waits for the engine to drain, returning the hedge
    /// bookkeeping and the populated cluster collector.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Internal`] if the engine thread panicked.
    pub(crate) fn join(self) -> Result<(HedgeStats, ClusterCollector), HarnessError> {
        drop(self.tx);
        self.handle
            .join()
            .map_err(|_| HarnessError::Internal("hedge engine thread panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FanoutPolicy;
    use crate::request::RequestId;

    fn leg_request(id: u64) -> Request {
        Request {
            id: RequestId(id),
            payload: vec![id as u8],
            issued_ns: 0,
        }
    }

    fn record(id: u64, enqueued_ns: u64, received_ns: u64) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            issued_ns: 0,
            enqueued_ns,
            started_ns: enqueued_ns,
            completed_ns: received_ns,
            client_received_ns: received_ns,
        }
    }

    #[test]
    fn slow_legs_get_hedged_and_first_response_wins() {
        let cluster = ClusterConfig::new(1, FanoutPolicy::Broadcast).with_replication(2);
        let clock = RunClock::new();
        let (hedged_tx, hedged_rx) = crossbeam::channel::unbounded();
        let engine = HedgeEngine::spawn(
            Some(HedgePolicy::after_ns(2_000_000)), // 2 ms trigger
            cluster,
            1,
            clock,
            ClusterCollector::new(1, 0),
            Box::new(move |instance, request| hedged_tx.send((instance, request)).is_ok()),
            Box::new(|_, _| false),
        )
        .expect("spawn hedge engine");
        let tx = engine.sender();
        // Leg 0 never gets a primary response: the engine must reissue it to the other
        // replica (instance 1) after ~2 ms.
        tx.send(HedgeMsg::Dispatched {
            request: leg_request(0),
            shard: 0,
            instance: 0,
        })
        .unwrap();
        let (alt, copy) = hedged_rx
            .recv()
            .expect("the engine must issue a hedge copy");
        assert_eq!(alt, 1);
        assert_eq!(copy.id, RequestId(0));
        // The hedge copy responds on the alternate replica, then the straggling primary
        // on replica 0: only the first response reaches the collector, and it is
        // classified as a hedge win by its instance.
        let hedge_done = clock.now_ns();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 1,
            record: record(0, hedge_done, hedge_done + 10),
        })
        .unwrap();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 0,
            record: record(0, 0, hedge_done + 500_000),
        })
        .unwrap();
        // Leg 1 (primary replica 1, hedge to replica 0) also gets hedged, but this time
        // the *primary* responds first: the hedge is issued yet must not count as a win.
        tx.send(HedgeMsg::Dispatched {
            request: leg_request(1),
            shard: 0,
            instance: 1,
        })
        .unwrap();
        let (alt, copy) = hedged_rx.recv().expect("second hedge copy");
        assert_eq!(alt, 0);
        assert_eq!(copy.id, RequestId(1));
        let now = clock.now_ns();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 1,
            record: record(1, now, now + 10),
        })
        .unwrap();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 0,
            record: record(1, now, now + 400_000),
        })
        .unwrap();
        tx.send(HedgeMsg::NoMoreDispatches).unwrap();
        drop(tx);
        let (stats, collector) = engine.join().expect("join hedge engine");
        assert_eq!(stats.issued, 2);
        assert_eq!(stats.wins, 1, "only the first leg's hedge won");
        assert_eq!(
            collector.cluster_stats().measured(),
            2,
            "one winning copy per leg"
        );
        // Only the fast first responses were recorded: both losers arrived >= 400 us
        // after `now`, so the recorded sojourns stay well below that.
        assert!(
            collector.cluster_stats().sojourn_stats().max_ns < now + 400_000,
            "a losing (straggler) response must never be recorded"
        );
    }

    #[test]
    fn fast_legs_are_never_hedged() {
        let cluster = ClusterConfig::new(1, FanoutPolicy::Broadcast).with_replication(2);
        let clock = RunClock::new();
        let engine = HedgeEngine::spawn(
            Some(HedgePolicy::after_ns(200_000_000)), // 200 ms: nothing should trigger
            cluster,
            1,
            clock,
            ClusterCollector::new(1, 0),
            Box::new(|_, _| panic!("no hedge expected")),
            Box::new(|_, _| false),
        )
        .expect("spawn hedge engine");
        let tx = engine.sender();
        for id in 0..10u64 {
            tx.send(HedgeMsg::Dispatched {
                request: leg_request(id),
                shard: 0,
                instance: (id % 2) as usize,
            })
            .unwrap();
            tx.send(HedgeMsg::Completed {
                shard: 0,
                instance: (id % 2) as usize,
                record: record(id, 10, 20),
            })
            .unwrap();
        }
        tx.send(HedgeMsg::NoMoreDispatches).unwrap();
        drop(tx);
        let (stats, collector) = engine.join().expect("join hedge engine");
        assert_eq!(stats, HedgeStats::default());
        assert_eq!(collector.cluster_stats().measured(), 10);
    }

    #[test]
    fn tied_legs_record_first_response_and_retract_the_loser() {
        let cluster = ClusterConfig::new(1, FanoutPolicy::Broadcast).with_replication(2);
        let clock = RunClock::new();
        let (retract_tx, retract_rx) = crossbeam::channel::unbounded();
        let engine = HedgeEngine::spawn(
            None, // tied mode: nothing is ever reissued
            cluster,
            1,
            clock,
            ClusterCollector::new(1, 0),
            Box::new(|_, _| panic!("tied mode must not reissue")),
            Box::new(move |instance, id| {
                retract_tx.send((instance, id)).unwrap();
                true // pretend the loser was still queued
            }),
        )
        .expect("spawn hedge engine");
        let tx = engine.sender();
        // Leg 0: secondary (instance 1) answers first -> win + retraction of instance 0.
        tx.send(HedgeMsg::DispatchedTied {
            id: 0,
            shard: 0,
            primary: 0,
            secondary: 1,
        })
        .unwrap();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 1,
            record: record(0, 5, 15),
        })
        .unwrap();
        assert_eq!(
            retract_rx.recv().expect("loser must be retracted"),
            (0, 0),
            "the queued primary copy is pulled back"
        );
        // Leg 1: primary answers first -> no win, retract the secondary.
        tx.send(HedgeMsg::DispatchedTied {
            id: 1,
            shard: 0,
            primary: 0,
            secondary: 1,
        })
        .unwrap();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 0,
            record: record(1, 5, 25),
        })
        .unwrap();
        assert_eq!(retract_rx.recv().unwrap(), (1, 1));
        // Leg 2: one copy shed at admission (Cancelled), the survivor still records.
        tx.send(HedgeMsg::DispatchedTied {
            id: 2,
            shard: 0,
            primary: 0,
            secondary: 1,
        })
        .unwrap();
        tx.send(HedgeMsg::Cancelled { id: 2, shard: 0 }).unwrap();
        tx.send(HedgeMsg::Completed {
            shard: 0,
            instance: 0,
            record: record(2, 5, 35),
        })
        .unwrap();
        tx.send(HedgeMsg::NoMoreDispatches).unwrap();
        drop(tx);
        let (stats, collector) = engine.join().expect("join hedge engine");
        assert_eq!(stats.issued, 3, "every tied leg issues one extra copy");
        assert_eq!(stats.wins, 1, "only leg 0's secondary answered first");
        assert_eq!(collector.cluster_stats().measured(), 3);
        assert!(
            retract_rx.try_recv().is_err(),
            "the shed leg's survivor must not trigger a retraction"
        );
    }
}
