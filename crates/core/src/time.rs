//! Run-local clocks and precise pacing.
//!
//! All timestamps in a run are nanoseconds since a run-local epoch, so that real-time and
//! simulated runs share the same record format.  The open-loop traffic shaper needs to
//! release requests at microsecond-precise instants even when the OS sleep granularity is
//! coarser, so [`sleep_until_ns`] combines coarse sleeping with a short spin phase.

use crate::report::LatencyStats;
use std::time::{Duration, Instant};
use tailbench_histogram::LatencySummary;

/// A monotonic clock anchored at a run-local epoch.
#[derive(Debug, Clone, Copy)]
pub struct RunClock {
    epoch: Instant,
}

impl Default for RunClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RunClock {
    /// Creates a clock whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        RunClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The epoch instant (for interop with APIs that want an [`Instant`]).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Sleeps (coarsely, then spinning) until `target_ns` nanoseconds past the epoch.
    /// Returns the actual time reached, which is never before `target_ns`.
    pub fn sleep_until_ns(&self, target_ns: u64) -> u64 {
        // Sleep in the coarse regime while we are far from the deadline, then spin for
        // the final stretch.  100 µs of spin keeps pacing error well under typical
        // service times without burning a whole core at low request rates.
        const SPIN_THRESHOLD_NS: u64 = 100_000;
        loop {
            let now = self.now_ns();
            if now >= target_ns {
                return now;
            }
            let remaining = target_ns - now;
            if remaining > SPIN_THRESHOLD_NS {
                std::thread::sleep(Duration::from_nanos(remaining - SPIN_THRESHOLD_NS));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Accumulates per-request pacing error — the gap between a request's *scheduled*
/// open-loop issue time and the instant the pacing thread actually released it.
///
/// An open-loop harness that silently falls behind its schedule compresses bursts and
/// under-reports queuing (the "tell-tale" harness pitfall): the pacing-error
/// distribution makes that skew observable instead.  Each pacing thread owns its own
/// recorder (no cross-thread synchronization on the issue path); recorders merge at
/// run end and the result is reported as the run's `pacing` summary.
#[derive(Debug, Clone)]
pub struct PacingRecorder {
    errors: LatencySummary,
}

impl Default for PacingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacingRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        PacingRecorder {
            errors: LatencySummary::new(),
        }
    }

    /// Records one issue: `actual_ns - scheduled_ns` (clamped at zero; the sleeper
    /// never releases early).
    pub fn record(&mut self, scheduled_ns: u64, actual_ns: u64) {
        self.errors.record(actual_ns.saturating_sub(scheduled_ns));
    }

    /// Merges another recorder (e.g. a per-connection pacing thread's) into this one.
    pub fn merge(&mut self, other: &PacingRecorder) {
        self.errors.merge(&other.errors);
    }

    /// Number of issues recorded.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.errors.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.errors.len() == 0
    }

    /// The pacing-error distribution as report statistics.
    #[must_use]
    pub fn stats(&self) -> LatencyStats {
        LatencyStats::from_summary(&self.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = RunClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_reaches_target() {
        let clock = RunClock::new();
        let target = clock.now_ns() + 2_000_000; // 2 ms
        let reached = clock.sleep_until_ns(target);
        assert!(reached >= target);
        // Should not overshoot by tens of milliseconds on an idle machine, but be very
        // lenient to avoid flakiness under CI load.
        assert!(reached < target + 200_000_000);
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let clock = RunClock::new();
        std::thread::sleep(Duration::from_millis(1));
        let reached = clock.sleep_until_ns(0);
        assert!(reached > 0);
    }

    #[test]
    fn pacing_recorder_tracks_issue_error_and_merges() {
        let mut a = PacingRecorder::new();
        a.record(1_000, 1_500); // 500 ns late
        a.record(2_000, 2_000); // on time
        a.record(3_000, 2_900); // "early" clamps to zero
        assert_eq!(a.len(), 3);
        let stats = a.stats();
        assert_eq!(stats.max_ns, 500);
        assert_eq!(stats.min_ns, 0);

        let mut b = PacingRecorder::default();
        assert!(b.is_empty());
        b.record(0, 10_000);
        b.merge(&a);
        assert_eq!(b.len(), 4);
        assert_eq!(b.stats().max_ns, 10_000);
    }
}
